//! A counting global allocator (feature `count-alloc`) for measuring the
//! allocation traffic of training steps.
//!
//! The wrapper delegates to the system allocator and bumps atomic counters
//! on every `alloc`/`realloc`. It is installed as `#[global_allocator]`
//! only by the `bench-alloc` binary so the normal benchmarks and tests run
//! on the untouched system allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts allocation events and bytes.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the counters do not affect layout
// or pointer validity.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Counts since process start (or the last delta baseline): `(allocations,
/// bytes)`.
pub fn counts() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Convenience: allocation events and bytes between two `counts()` calls.
pub fn delta(before: (u64, u64)) -> (u64, u64) {
    let (a, b) = counts();
    (a - before.0, b - before.1)
}

//! Regeneration of the paper's figures (2–7) as CSV series plus textual
//! summaries. Plot rendering is deliberately out of scope — the series are
//! the reproducible artifact (see DESIGN.md).

use crate::methods::Method;
use crate::results::{fmt4, load, save_csv};
use crate::runner::{evaluate_method, pot_config, HarnessConfig, RunResult};
use crate::tables::table2;
use tranad::Ablation;
use tranad_baselines::TranadDetector;
use tranad_baselines::{aggregate_scores, Detector};
use tranad_data::{generate, random_subsequence, DatasetKind};
use tranad_metrics::critical_difference;
use tranad_telemetry::Recorder;

/// Figure 2: anomaly-prediction visualization on an MBA-like trace —
/// series value, anomaly score, threshold and predicted/true labels per
/// timestamp.
pub fn figure2(cfg: &HarnessConfig) -> String {
    let ds = generate(DatasetKind::Mba, cfg.gen);
    let mut det = TranadDetector::new(cfg.tranad);
    det.fit(&ds.train, &Recorder::disabled()).expect("figure 2 training");
    let trained = det.trained().expect("just fitted");
    let detection = trained.detect(&ds.test, pot_config(&ds)).expect("figure 2 detection");
    let truth = ds.point_labels();
    let rows: Vec<String> = (0..ds.test.len())
        .map(|t| {
            format!(
                "{t},{:.6},{:.6},{:.6},{},{}",
                ds.test.get(t, 0),
                detection.aggregate[t],
                detection.thresholds[0],
                detection.labels[t] as u8,
                truth[t] as u8,
            )
        })
        .collect();
    let path = save_csv("figure2", "t,value,score,threshold,predicted,truth", &rows)
        .expect("write figure 2");
    let detected: usize = detection
        .labels
        .iter()
        .zip(&truth)
        .filter(|(&p, &g)| p && g)
        .count();
    format!(
        "Figure 2 series -> {}\n{} timestamps, {} true-positive points before adjustment\n",
        path.display(),
        ds.test.len(),
        detected
    )
}

/// Figure 3: attention and focus scores over the first dimensions of an
/// SMD-like trace.
pub fn figure3(cfg: &HarnessConfig) -> String {
    let ds = generate(DatasetKind::Smd, cfg.gen);
    let mut det = TranadDetector::new(cfg.tranad);
    det.fit(&ds.train, &Recorder::disabled()).expect("figure 3 training");
    let trained = det.trained().expect("just fitted");
    let intro = trained
        .introspect(&ds.test)
        .expect("full model has attention");
    let dims = ds.dims().min(6);
    let mut header = String::from("t,attention");
    for d in 0..dims {
        header.push_str(&format!(",value{d},focus{d}"));
    }
    let rows: Vec<String> = (0..ds.test.len())
        .map(|t| {
            let mut row = format!("{t},{:.6}", intro.attention[t]);
            for d in 0..dims {
                row.push_str(&format!(",{:.6},{:.6}", ds.test.get(t, d), intro.focus[t][d]));
            }
            row
        })
        .collect();
    let path = save_csv("figure3", &header, &rows).expect("write figure 3");
    // Correlation between focus scores and ground truth, the property the
    // paper's Figure 3 illustrates.
    let truth = ds.point_labels();
    let focus_mean: Vec<f64> = intro
        .focus
        .iter()
        .map(|f| f.iter().sum::<f64>() / f.len() as f64)
        .collect();
    let anom_focus = mean_where(&focus_mean, &truth, true);
    let norm_focus = mean_where(&focus_mean, &truth, false);
    format!(
        "Figure 3 series -> {}\nmean focus on anomalous timestamps {:.6} vs normal {:.6}\n",
        path.display(),
        anom_focus,
        norm_focus
    )
}

fn mean_where(values: &[f64], mask: &[bool], target: bool) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for (&v, &m) in values.iter().zip(mask) {
        if m == target {
            sum += v;
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Figure 4: critical-difference analysis over the Table 2 results (F1 and
/// AUC). Reuses cached Table 2 rows if present; otherwise recomputes.
pub fn figure4(cfg: &HarnessConfig) -> String {
    let results: Vec<RunResult> = load("table2")
        .unwrap_or_else(|| table2(cfg, &[], &[], |_| {}));
    let mut out = String::new();
    for (metric_name, metric) in [
        ("F1", Box::new(|r: &RunResult| r.f1) as Box<dyn Fn(&RunResult) -> f64>),
        ("AUC", Box::new(|r: &RunResult| r.auc)),
    ] {
        let (_datasets, methods, matrix) = crate::results::score_matrix(&results, &metric);
        let names: Vec<&str> = methods.iter().map(String::as_str).collect();
        let (entries, friedman, pvals) = critical_difference(&names, &matrix);
        out.push_str(&format!(
            "Critical difference on {metric_name}: Friedman chi2 = {:.3} (significant at 0.05: {})\n",
            friedman.chi_square, friedman.significant_05
        ));
        for e in &entries {
            out.push_str(&format!("  rank {:5.2}  {}\n", e.rank, e.name));
        }
        out.push_str("  Wilcoxon p-values vs the top-ranked method:\n");
        for (name, p) in &pvals {
            out.push_str(&format!("    {name}: p = {p:.4}\n"));
        }
        out.push('\n');
    }
    out
}

/// Figure 5: predicted vs. ground-truth per-dimension labels on MSDS.
pub fn figure5(cfg: &HarnessConfig) -> String {
    let ds = generate(DatasetKind::Msds, cfg.gen);
    let mut det = TranadDetector::new(cfg.tranad);
    det.fit(&ds.train, &Recorder::disabled()).expect("figure 5 training");
    let trained = det.trained().expect("just fitted");
    let detection = trained.detect(&ds.test, pot_config(&ds)).expect("figure 5 detection");
    let dims = ds.dims();
    let mut header = String::from("t");
    for d in 0..dims {
        header.push_str(&format!(",pred{d},true{d}"));
    }
    let rows: Vec<String> = (0..ds.test.len())
        .map(|t| {
            let mut row = t.to_string();
            for d in 0..dims {
                row.push_str(&format!(
                    ",{},{}",
                    detection.dim_labels[t][d] as u8,
                    ds.labels.at(t, d) as u8
                ));
            }
            row
        })
        .collect();
    let path = save_csv("figure5", &header, &rows).expect("write figure 5");
    // Per-dimension agreement summary.
    let mut agreements = Vec::new();
    for d in 0..dims {
        let agree = (0..ds.test.len())
            .filter(|&t| detection.dim_labels[t][d] == ds.labels.at(t, d))
            .count();
        agreements.push(agree as f64 / ds.test.len() as f64);
    }
    format!(
        "Figure 5 raster -> {}\nper-dimension label agreement: {}\n",
        path.display(),
        agreements.iter().map(|a| format!("{a:.3}")).collect::<Vec<_>>().join(" ")
    )
}

/// Figure 6: F1 / AUC / training time as the training-set fraction sweeps
/// 20–100 %. Sweeps TranAD plus a representative baseline set over a
/// dataset subset for tractability.
pub fn figure6(cfg: &HarnessConfig, dataset_filter: &[DatasetKind]) -> String {
    let kinds: Vec<DatasetKind> = if dataset_filter.is_empty() {
        vec![DatasetKind::Nab, DatasetKind::Smd, DatasetKind::Msds]
    } else {
        dataset_filter.to_vec()
    };
    let methods = [Method::Tranad, Method::Usad, Method::OmniAnomaly, Method::Dagmm];
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut rows = Vec::new();
    for kind in &kinds {
        let ds = generate(*kind, cfg.gen);
        for method in methods {
            for &frac in &fractions {
                let subset = random_subsequence(&ds.train, frac, 11);
                let mut det = method.build(cfg);
                let r = det
                    .fit(&subset, &Recorder::disabled())
                    .and_then(|fit| {
                        crate::runner::evaluate_fitted(det.as_ref(), &ds, fit.seconds_per_epoch)
                    })
                    .unwrap_or_else(|e| RunResult::failed(method.name(), kind.name(), &e));
                rows.push(format!(
                    "{},{},{:.2},{},{},{:.4}",
                    kind.name(),
                    method.name(),
                    frac,
                    fmt4(r.f1),
                    fmt4(r.auc),
                    r.secs_per_epoch
                ));
            }
        }
    }
    let path = save_csv("figure6", "dataset,method,fraction,f1,auc,secs_per_epoch", &rows)
        .expect("write figure 6");
    format!("Figure 6 sweep -> {}\n{}\n", path.display(), rows.join("\n"))
}

/// Figure 7: F1 / AUC / training time vs. window size for TranAD and its
/// ablations.
pub fn figure7(cfg: &HarnessConfig, dataset_filter: &[DatasetKind]) -> String {
    let kinds: Vec<DatasetKind> = if dataset_filter.is_empty() {
        vec![DatasetKind::Smd]
    } else {
        dataset_filter.to_vec()
    };
    let windows = [4usize, 8, 10, 16];
    let mut rows = Vec::new();
    for kind in &kinds {
        let ds = generate(*kind, cfg.gen);
        for ablation in Ablation::all() {
            for &w in &windows {
                let mut tcfg = ablation.apply(cfg.tranad);
                tcfg.window = w;
                tcfg.context = tcfg.context.max(w);
                let mut det = TranadDetector::ablation(ablation, tcfg);
                let r = evaluate_method(&mut det, &ds)
                    .unwrap_or_else(|e| RunResult::failed(ablation.name(), kind.name(), &e));
                rows.push(format!(
                    "{},{},{},{},{},{:.4}",
                    kind.name(),
                    ablation.name(),
                    w,
                    fmt4(r.f1),
                    fmt4(r.auc),
                    r.secs_per_epoch
                ));
            }
        }
    }
    let path = save_csv("figure7", "dataset,variant,window,f1,auc,secs_per_epoch", &rows)
        .expect("write figure 7");
    format!("Figure 7 sweep -> {}\n{}\n", path.display(), rows.join("\n"))
}

/// Helper reused by tests: score-then-threshold a fitted detector.
pub fn labels_of(
    det: &dyn Detector,
    ds: &tranad_data::Dataset,
) -> Result<Vec<bool>, tranad::DetectorError> {
    let scores = det.score(&ds.test)?;
    let _agg = aggregate_scores(&scores)?;
    tranad::detect_aggregate(det.train_scores()?, &scores, pot_config(ds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_data::GenConfig;

    fn tiny() -> HarnessConfig {
        let mut cfg = HarnessConfig::quick();
        cfg.gen = GenConfig { scale: 0.0005, min_len: 200, seed: 5 };
        cfg.tranad.epochs = 1;
        cfg.tranad.ff_hidden = 8;
        cfg
    }

    #[test]
    fn figure2_writes_series() {
        let out = figure2(&tiny());
        assert!(out.contains("figure2"));
        assert!(std::path::Path::new("target/figures/figure2.csv").exists());
    }

    #[test]
    fn figure4_reports_ranks() {
        // Build a fake cached table 2 to avoid a full run.
        let fake: Vec<RunResult> = ["TranAD", "USAD"]
            .iter()
            .flat_map(|m| {
                ["NAB", "SMD", "MSDS"].iter().map(move |d| RunResult {
                    method: m.to_string(),
                    dataset: d.to_string(),
                    precision: 0.9,
                    recall: 0.9,
                    auc: if *m == "TranAD" { 0.95 } else { 0.85 },
                    f1: if *m == "TranAD" { 0.9 } else { 0.8 },
                    secs_per_epoch: 1.0,
                    error: String::new(),
                })
            })
            .collect();
        crate::results::save("table2", &fake).unwrap();
        let out = figure4(&tiny());
        assert!(out.contains("rank"));
        assert!(out.contains("TranAD"));
    }
}

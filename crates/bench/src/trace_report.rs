//! Trace analysis for span-instrumented JSONL traces: per-phase/per-op
//! attribution tables, Chrome trace-event (Perfetto) export, self-contained
//! flamegraph SVGs, and perf-budget gating for CI.
//!
//! The input is the JSONL a [`tranad_telemetry::JsonlSink`] writes with
//! spans enabled: every `"span"` event is one completed region with `name`,
//! `id`, `parent` (0 for roots), `depth`, `start` (seconds) and `dur_us`.
//! Spans are emitted on guard *drop*, so children precede their parents in
//! the file; analysis therefore indexes the whole trace before attributing
//! time.
//!
//! Everything here is pure string/number processing on already-recorded
//! traces — no timers, no recorder, no filesystem access (the `trace-report`
//! binary owns I/O), so it is deterministic and unit-testable on fixtures.

use std::collections::BTreeMap;

use tranad_json::{Json, JsonError};
use tranad_telemetry::Histogram;

/// One completed span parsed back from a trace line.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Static span name (`op.matmul`, `train.step`, ...).
    pub name: String,
    /// 1-based per-recorder span id.
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Nesting depth (0 for roots).
    pub depth: u64,
    /// Start time, seconds on the recorder clock.
    pub start_s: f64,
    /// Wall-clock duration in microseconds.
    pub dur_us: f64,
}

/// A parsed trace: the spans plus a count of every non-span event family
/// (kept so reports can mention how much other telemetry rode along).
#[derive(Debug, Default)]
pub struct Trace {
    /// All spans in file (i.e. completion) order.
    pub spans: Vec<SpanRec>,
    /// Non-span event counts keyed by event name.
    pub other_events: BTreeMap<String, usize>,
}

/// Parses a JSONL trace. Fails on the first malformed line or span event
/// with missing fields; a trace that cannot be parsed completely should not
/// gate CI silently.
pub fn parse_trace(text: &str) -> Result<Trace, String> {
    let mut trace = Trace::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = tranad_json::parse(line)
            .map_err(|e| format!("line {}: malformed JSON: {e:?}", lineno + 1))?;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing event name", lineno + 1))?;
        if event != "span" {
            *trace.other_events.entry(event.to_string()).or_insert(0) += 1;
            continue;
        }
        let field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .filter(|x| x.is_finite())
                .ok_or_else(|| format!("line {}: span missing numeric {key:?}", lineno + 1))
        };
        trace.spans.push(SpanRec {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: span missing name", lineno + 1))?
                .to_string(),
            id: field("id")? as u64,
            parent: field("parent")? as u64,
            depth: field("depth")? as u64,
            start_s: field("start")?,
            dur_us: field("dur_us")?,
        });
    }
    Ok(trace)
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Total (cumulative) time across all spans, microseconds.
    pub total_us: f64,
    /// Self time: cumulative minus time spent in direct children.
    pub self_us: f64,
    /// Mean span duration, microseconds.
    pub mean_us: f64,
    /// Median span duration (log2-bucket estimate), microseconds.
    pub p50_us: f64,
    /// 99th-percentile span duration (log2-bucket estimate), microseconds.
    pub p99_us: f64,
}

/// Per-phase rollup: a phase is a *root* span name, and its row aggregates
/// the cumulative time of all root spans with that name.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Root span name (`train.run`, `detect.run`, ...).
    pub name: String,
    /// Number of root spans with this name.
    pub count: u64,
    /// Total time under these roots, microseconds.
    pub total_us: f64,
    /// Number of descendant spans (the roots themselves excluded).
    pub spans: u64,
}

/// The full analysis of one trace.
#[derive(Debug)]
pub struct Report {
    /// Per-op rows, sorted by total time descending.
    pub ops: Vec<OpStats>,
    /// Per-phase rows (root spans), sorted by total time descending.
    pub phases: Vec<PhaseStats>,
    /// Total span count.
    pub span_count: usize,
    /// Non-span event count.
    pub other_event_count: usize,
}

/// Analyzes a parsed trace: computes self time from the parent links, then
/// aggregates per name (ops) and per root name (phases).
pub fn analyze(trace: &Trace) -> Report {
    // id -> index, then subtract each span's duration from its parent's
    // remaining self time.
    let mut by_id = BTreeMap::<u64, usize>::new();
    for (i, s) in trace.spans.iter().enumerate() {
        by_id.insert(s.id, i);
    }
    let mut self_us: Vec<f64> = trace.spans.iter().map(|s| s.dur_us).collect();
    let mut root_of: Vec<usize> = (0..trace.spans.len()).collect();
    for (i, s) in trace.spans.iter().enumerate() {
        if s.parent != 0 {
            if let Some(&p) = by_id.get(&s.parent) {
                self_us[p] -= s.dur_us;
            }
        }
        // Resolve the root ancestor; parents complete after children, so
        // chains can be walked through the id map in one pass per span.
        let mut cur = i;
        while trace.spans[cur].parent != 0 {
            match by_id.get(&trace.spans[cur].parent) {
                Some(&p) => cur = p,
                None => break, // orphan: its opener outlived the trace
            }
        }
        root_of[i] = cur;
    }

    struct Acc {
        count: u64,
        total_us: f64,
        self_us: f64,
        hist: Histogram,
    }
    let mut ops = BTreeMap::<&str, Acc>::new();
    for (i, s) in trace.spans.iter().enumerate() {
        let acc = ops.entry(&s.name).or_insert_with(|| Acc {
            count: 0,
            total_us: 0.0,
            self_us: 0.0,
            hist: Histogram::default(),
        });
        acc.count += 1;
        acc.total_us += s.dur_us;
        // Clamped at zero: overlapping child spans (which the span model
        // does not produce) or clock quantization must not go negative.
        acc.self_us += self_us[i].max(0.0);
        acc.hist.record(s.dur_us);
    }
    let mut op_rows: Vec<OpStats> = ops
        .into_iter()
        .map(|(name, a)| OpStats {
            name: name.to_string(),
            count: a.count,
            total_us: a.total_us,
            self_us: a.self_us,
            mean_us: a.total_us / a.count.max(1) as f64,
            p50_us: a.hist.quantile(0.5),
            p99_us: a.hist.quantile(0.99),
        })
        .collect();
    op_rows.sort_by(|a, b| b.total_us.total_cmp(&a.total_us).then(a.name.cmp(&b.name)));

    let mut phases = BTreeMap::<&str, PhaseStats>::new();
    for (i, s) in trace.spans.iter().enumerate() {
        let root = &trace.spans[root_of[i]];
        let row = phases.entry(&root.name).or_insert_with(|| PhaseStats {
            name: root.name.clone(),
            count: 0,
            total_us: 0.0,
            spans: 0,
        });
        if root_of[i] == i {
            row.count += 1;
            row.total_us += s.dur_us;
        } else {
            row.spans += 1;
        }
    }
    let mut phase_rows: Vec<PhaseStats> = phases.into_values().collect();
    phase_rows.sort_by(|a, b| b.total_us.total_cmp(&a.total_us).then(a.name.cmp(&b.name)));

    Report {
        ops: op_rows,
        phases: phase_rows,
        span_count: trace.spans.len(),
        other_event_count: trace.other_events.values().sum(),
    }
}

/// Renders the report as a fixed-width text table (per-phase summary, then
/// the per-op attribution table).
pub fn render_table(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} spans, {} other events\n\n",
        report.span_count, report.other_event_count
    ));
    out.push_str("phases (root spans)\n");
    out.push_str(&format!(
        "{:<24} {:>8} {:>12} {:>10}\n",
        "phase", "count", "total_ms", "spans"
    ));
    for p in &report.phases {
        out.push_str(&format!(
            "{:<24} {:>8} {:>12.3} {:>10}\n",
            p.name,
            p.count,
            p.total_us / 1e3,
            p.spans
        ));
    }
    out.push_str("\nper-op attribution\n");
    out.push_str(&format!(
        "{:<24} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
        "span", "count", "total_ms", "self_ms", "mean_us", "p50_us", "p99_us"
    ));
    for o in &report.ops {
        out.push_str(&format!(
            "{:<24} {:>8} {:>12.3} {:>12.3} {:>10.1} {:>10.1} {:>10.1}\n",
            o.name,
            o.count,
            o.total_us / 1e3,
            o.self_us / 1e3,
            o.mean_us,
            o.p50_us,
            o.p99_us
        ));
    }
    out
}

/// Converts the trace to Chrome trace-event JSON (the `traceEvents` array
/// form), loadable in Perfetto / `chrome://tracing`. Every span becomes one
/// complete (`"ph": "X"`) event with microsecond `ts`/`dur`.
pub fn to_chrome_trace(trace: &Trace) -> Json {
    let events: Vec<Json> = trace
        .spans
        .iter()
        .map(|s| {
            Json::obj([
                ("name", Json::Str(s.name.clone())),
                ("ph", Json::Str("X".to_string())),
                ("ts", Json::Num(s.start_s * 1e6)),
                ("dur", Json::Num(s.dur_us)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(1.0)),
                (
                    "args",
                    Json::obj([
                        ("id", Json::Num(s.id as f64)),
                        ("parent", Json::Num(s.parent as f64)),
                        ("depth", Json::Num(s.depth as f64)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

/// A node of the merged flamegraph call tree: spans sharing the same
/// name-path are folded together.
struct FlameNode {
    total_us: f64,
    count: u64,
    children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    fn new() -> Self {
        FlameNode { total_us: 0.0, count: 0, children: BTreeMap::new() }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(FlameNode::depth).max().unwrap_or(0)
    }
}

/// Renders the trace as a self-contained flamegraph SVG: one rect per
/// name-path in the merged call tree, width proportional to cumulative
/// time, `<title>` tooltips with exact numbers. No external scripts or
/// fonts, so the file works offline in any browser.
pub fn to_flamegraph_svg(trace: &Trace) -> String {
    // Build each span's name-path by walking the parent chain, then fold
    // identical paths into one tree.
    let mut by_id = BTreeMap::<u64, usize>::new();
    for (i, s) in trace.spans.iter().enumerate() {
        by_id.insert(s.id, i);
    }
    let mut root = FlameNode::new();
    for s in &trace.spans {
        let mut path = vec![s.name.as_str()];
        let mut cur = s;
        while cur.parent != 0 {
            match by_id.get(&cur.parent) {
                Some(&p) => {
                    cur = &trace.spans[p];
                    path.push(cur.name.as_str());
                }
                None => break,
            }
        }
        path.reverse();
        let mut node = &mut root;
        for name in path {
            node = node.children.entry(name.to_string()).or_insert_with(FlameNode::new);
        }
        node.total_us += s.dur_us;
        node.count += 1;
    }
    // Only leaf contributions widen a node; propagate so every parent is at
    // least as wide as its children (folded spans keep their own time too).
    fn rollup(node: &mut FlameNode) -> f64 {
        let child_sum: f64 = node.children.values_mut().map(rollup).sum();
        node.total_us = node.total_us.max(child_sum);
        node.total_us
    }
    let grand_total: f64 = root.children.values_mut().map(rollup).sum::<f64>().max(1e-9);

    const WIDTH: f64 = 1200.0;
    const ROW: f64 = 18.0;
    const PAD: f64 = 2.0;
    let levels = root.depth().saturating_sub(1).max(1);
    let height = ROW * levels as f64 + 2.0 * PAD + 20.0;

    let mut rects = String::new();
    fn color(name: &str) -> String {
        // Deterministic warm palette from a simple string hash.
        let mut h = 2166136261u32;
        for b in name.bytes() {
            h = (h ^ b as u32).wrapping_mul(16777619);
        }
        let r = 200 + h % 56;
        let g = 80 + (h >> 8) % 120;
        let b = 30 + (h >> 16) % 50;
        format!("rgb({r},{g},{b})")
    }
    fn escape(s: &str) -> String {
        s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
    }
    #[allow(clippy::too_many_arguments)]
    fn draw(
        node: &FlameNode,
        name: &str,
        x: f64,
        y: f64,
        width: f64,
        out: &mut String,
        scale: f64,
    ) {
        if width < 0.5 {
            return;
        }
        let label = if width > 60.0 { escape(name) } else { String::new() };
        out.push_str(&format!(
            "<g><rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" height=\"16\" \
             fill=\"{}\" rx=\"2\"><title>{}: {:.1} us ({} spans)</title></rect>\
             <text x=\"{:.2}\" y=\"{:.2}\" font-size=\"11\" font-family=\"monospace\" \
             fill=\"#000\">{label}</text></g>\n",
            color(name),
            escape(name),
            node.total_us,
            node.count,
            x + 3.0,
            y + 12.0,
        ));
        let mut cx = x;
        for (cname, child) in &node.children {
            let cw = child.total_us * scale;
            draw(child, cname, cx, y + 18.0, cw.min(x + width - cx), out, scale);
            cx += cw;
        }
    }
    let scale = (WIDTH - 2.0 * PAD) / grand_total;
    let mut x = PAD;
    for (name, node) in &root.children {
        let w = node.total_us * scale;
        draw(node, name, x, PAD + 20.0, w, &mut rects, scale);
        x += w;
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {WIDTH} {height}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6e3\"/>\n\
         <text x=\"{PAD}\" y=\"14\" font-size=\"12\" font-family=\"monospace\">\
         flamegraph: {} spans, {:.1} ms total</text>\n{rects}</svg>\n",
        trace.spans.len(),
        grand_total / 1e3,
    )
}

/// One per-span perf-budget rule.
#[derive(Debug, Clone)]
pub struct BudgetRule {
    /// Span name the rule applies to.
    pub span: String,
    /// Minimum completed-span count: catches silently missing
    /// instrumentation, so the gate cannot pass vacuously.
    pub min_count: u64,
    /// Ceiling on the mean span duration, microseconds (absent = unchecked).
    pub max_mean_us: Option<f64>,
    /// Ceiling on the cumulative time, seconds (absent = unchecked).
    pub max_total_s: Option<f64>,
}

/// Parses `results/perf_budget.json`: `{"budgets": [{"span": ...,
/// "min_count": ..., "max_mean_us": ..., "max_total_s": ...}, ...]}`.
pub fn parse_budget(text: &str) -> Result<Vec<BudgetRule>, JsonError> {
    let v = tranad_json::parse(text)?;
    let rules = v
        .req("budgets")?
        .as_array()
        .ok_or_else(|| JsonError::new("budgets must be an array"))?;
    rules
        .iter()
        .map(|r| {
            Ok(BudgetRule {
                span: r
                    .req("span")?
                    .as_str()
                    .ok_or_else(|| JsonError::new("span must be a string"))?
                    .to_string(),
                min_count: r.get("min_count").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                max_mean_us: r.get("max_mean_us").and_then(Json::as_f64),
                max_total_s: r.get("max_total_s").and_then(Json::as_f64),
            })
        })
        .collect()
}

/// Checks the report against the budget. Returns one human-readable
/// violation per broken rule; empty means the gate passes.
pub fn check_budget(report: &Report, rules: &[BudgetRule]) -> Vec<String> {
    let mut violations = Vec::new();
    for rule in rules {
        let Some(op) = report.ops.iter().find(|o| o.name == rule.span) else {
            if rule.min_count > 0 {
                violations.push(format!(
                    "{}: no spans recorded (budget requires >= {})",
                    rule.span, rule.min_count
                ));
            }
            continue;
        };
        if op.count < rule.min_count {
            violations.push(format!(
                "{}: {} spans recorded, budget requires >= {}",
                rule.span, op.count, rule.min_count
            ));
        }
        if let Some(max) = rule.max_mean_us {
            if op.mean_us > max {
                violations.push(format!(
                    "{}: mean {:.1} us exceeds budget {:.1} us",
                    rule.span, op.mean_us, max
                ));
            }
        }
        if let Some(max) = rule.max_total_s {
            let total_s = op.total_us / 1e6;
            if total_s > max {
                violations.push(format!(
                    "{}: total {:.3} s exceeds budget {:.3} s",
                    rule.span, total_s, max
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, id: u64, parent: u64, depth: u64, start: f64, dur: f64) -> String {
        format!(
            r#"{{"t":{start},"event":"span","name":"{name}","id":{id},"parent":{parent},"depth":{depth},"start":{start},"dur_us":{dur}}}"#
        )
    }

    fn fixture() -> Trace {
        // train.run(1000us) -> train.step(600us) -> op.matmul(2 x 100us)
        // plus an unrelated root detect.run(300us).
        let lines = [
            span_line("op.matmul", 3, 2, 2, 0.0001, 100.0),
            span_line("op.matmul", 4, 2, 2, 0.0003, 100.0),
            span_line("train.step", 2, 1, 1, 0.0001, 600.0),
            span_line("train.run", 1, 0, 0, 0.0, 1000.0),
            span_line("detect.run", 5, 0, 0, 0.002, 300.0),
            r#"{"t":1.0,"event":"train.epoch","epoch":0}"#.to_string(),
        ]
        .join("\n");
        parse_trace(&lines).unwrap()
    }

    #[test]
    fn parse_splits_spans_from_other_events() {
        let t = fixture();
        assert_eq!(t.spans.len(), 5);
        assert_eq!(t.other_events.get("train.epoch"), Some(&1));
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let r = analyze(&fixture());
        let step = r.ops.iter().find(|o| o.name == "train.step").unwrap();
        assert_eq!(step.total_us, 600.0);
        assert_eq!(step.self_us, 400.0); // 600 - 2 x 100
        let run = r.ops.iter().find(|o| o.name == "train.run").unwrap();
        assert_eq!(run.self_us, 400.0); // 1000 - 600
        let mm = r.ops.iter().find(|o| o.name == "op.matmul").unwrap();
        assert_eq!(mm.count, 2);
        assert_eq!(mm.self_us, 200.0);
    }

    #[test]
    fn phases_aggregate_by_root() {
        let r = analyze(&fixture());
        assert_eq!(r.phases[0].name, "train.run");
        assert_eq!(r.phases[0].total_us, 1000.0);
        assert_eq!(r.phases[0].spans, 3); // step + 2 matmuls
        assert!(r.phases.iter().any(|p| p.name == "detect.run" && p.spans == 0));
    }

    #[test]
    fn budget_catches_missing_and_slow_spans() {
        let r = analyze(&fixture());
        let rules = parse_budget(
            r#"{"budgets": [
                {"span": "op.matmul", "min_count": 2, "max_mean_us": 1000.0},
                {"span": "train.step", "min_count": 1, "max_mean_us": 10.0},
                {"span": "op.missing", "min_count": 1}
            ]}"#,
        )
        .unwrap();
        let violations = check_budget(&r, &rules);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("train.step")));
        assert!(violations.iter().any(|v| v.contains("op.missing")));
    }
}

//! Regeneration of every table in the paper's evaluation (Tables 1–7).
//!
//! Each function computes the table's rows, prints a fixed-width rendering,
//! and persists the raw rows as JSON under `target/results/` for reuse by
//! the figures and EXPERIMENTS.md.

use crate::methods::Method;
use crate::results::{fmt4, render_table, save, score_matrix};
use crate::runner::{
    evaluate_fitted, evaluate_method, pot_config, HarnessConfig, RunResult,
};
use tranad::{detect_aggregate, DetectorError};
use tranad_baselines::{Detector, Merlin, MerlinConfig};
use tranad_data::{generate, limited_data_subsets, Dataset, DatasetKind};
use tranad_metrics::{diagnose, evaluate};
use tranad_telemetry::Recorder;
use tranad_tensor::pool;

/// Datasets used in a run (defaults to all nine).
pub fn datasets(cfg: &HarnessConfig, filter: &[DatasetKind]) -> Vec<Dataset> {
    let kinds: Vec<DatasetKind> = if filter.is_empty() {
        DatasetKind::all().to_vec()
    } else {
        filter.to_vec()
    };
    kinds.into_iter().map(|k| generate(k, cfg.gen)).collect()
}

/// Table 1: dataset statistics — paper values alongside the generated
/// synthetic counterparts.
pub fn table1(cfg: &HarnessConfig) -> String {
    let header: Vec<String> = [
        "Dataset", "Train", "Test", "Dims", "Anom% (paper)", "Train*", "Test*", "Anom%*",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let stats = kind.paper_stats();
        let ds = generate(kind, cfg.gen);
        rows.push(vec![
            kind.name().to_string(),
            stats.train.to_string(),
            stats.test.to_string(),
            format!("{} ({})", stats.dims, stats.traces),
            format!("{:.2}", stats.anomaly_pct),
            ds.train.len().to_string(),
            ds.test.len().to_string(),
            format!("{:.2}", ds.labels.anomaly_rate() * 100.0),
        ]);
    }
    render_table(&header, &rows)
}

/// Runs a methods × datasets grid with full training data (no caching).
///
/// Grid cells are independent (each builds its own detector), so they run
/// on the global thread pool; `progress` is replayed serially afterwards in
/// the same deterministic (dataset, method) order as a serial run.
pub fn run_grid(
    cfg: &HarnessConfig,
    dataset_filter: &[DatasetKind],
    methods: &[Method],
    mut progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let dss = datasets(cfg, dataset_filter);
    let cells: Vec<(usize, Method)> = (0..dss.len())
        .flat_map(|d| methods.iter().map(move |&m| (d, m)))
        .collect();
    let mut slots: Vec<Option<RunResult>> = cells.iter().map(|_| None).collect();
    pool::parallel_chunks_mut(&mut slots, 1, |i, slot| {
        let (d, method) = cells[i];
        let mut det = method.build(cfg);
        slot[0] = Some(match evaluate_method(det.as_mut(), &dss[d]) {
            Ok(r) => r,
            Err(e) => RunResult::failed(method.name(), dss[d].kind.name(), &e),
        });
    });
    let results: Vec<RunResult> = slots.into_iter().flatten().collect();
    record_cells(&results);
    for r in &results {
        progress(r);
    }
    results
}

/// Emits one `bench.cell` event per grid result on the process-global
/// recorder — serially, after the parallel region, so trace order is
/// deterministic.
fn record_cells(results: &[RunResult]) {
    let rec = tranad_telemetry::global();
    for r in results {
        rec.emit("bench.cell", |e| {
            e.str("method", r.method.clone())
                .str("dataset", r.dataset.clone())
                .bool("ok", r.is_ok())
                .f64("f1", r.f1)
                .f64("auc", r.auc)
                .f64("secs_per_epoch", r.secs_per_epoch)
                .str("error", r.error.clone());
        });
    }
}

/// Table 2: detection performance with the full training data.
pub fn table2(
    cfg: &HarnessConfig,
    dataset_filter: &[DatasetKind],
    method_filter: &[Method],
    progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let methods = if method_filter.is_empty() { Method::table2() } else { method_filter.to_vec() };
    let results = run_grid(cfg, dataset_filter, &methods, progress);
    crate::results::merge_and_save("table2", &results);
    results
}

/// Renders Table 2 rows in the paper's layout (one block per dataset).
pub fn render_table2(results: &[RunResult]) -> String {
    let header: Vec<String> = ["Dataset", "Method", "P", "R", "AUC", "F1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.method.clone(),
                fmt4(r.precision),
                fmt4(r.recall),
                fmt4(r.auc),
                fmt4(r.f1),
            ]
        })
        .collect();
    render_table(&header, &rows)
}

/// Table 3: AUC*/F1* with limited (20 %) training data, averaged over
/// `subsets` random subsets (the paper uses 5).
pub fn table3(
    cfg: &HarnessConfig,
    dataset_filter: &[DatasetKind],
    method_filter: &[Method],
    subsets: usize,
    progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let methods = if method_filter.is_empty() { Method::table2() } else { method_filter.to_vec() };
    let results = run_grid_limited(cfg, dataset_filter, &methods, subsets, progress);
    crate::results::merge_and_save("table3", &results);
    results
}

/// Runs the limited-data grid without caching. Cells run on the thread
/// pool like [`run_grid`]; the per-cell subset loop stays serial.
pub fn run_grid_limited(
    cfg: &HarnessConfig,
    dataset_filter: &[DatasetKind],
    methods: &[Method],
    subsets: usize,
    mut progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let dss = datasets(cfg, dataset_filter);
    let cells: Vec<(usize, Method)> = (0..dss.len())
        .flat_map(|d| methods.iter().map(move |&m| (d, m)))
        .collect();
    let mut slots: Vec<Option<RunResult>> = cells.iter().map(|_| None).collect();
    pool::parallel_chunks_mut(&mut slots, 1, |i, slot| {
        let (d, method) = cells[i];
        let ds = &dss[d];
        let subs = limited_data_subsets(&ds.train, 0.2, ds.kind as u64 + 1);
        let take = subsets.clamp(1, subs.len());
        let mut acc = RunResult {
            method: method.name().to_string(),
            dataset: ds.kind.name().to_string(),
            precision: 0.0,
            recall: 0.0,
            auc: 0.0,
            f1: 0.0,
            secs_per_epoch: 0.0,
            error: String::new(),
        };
        let cell = |acc: &mut RunResult| -> Result<(), DetectorError> {
            for subset in subs.iter().take(take) {
                let mut det = method.build(cfg);
                let fit = det.fit(subset, &Recorder::disabled())?;
                let r = evaluate_fitted(det.as_ref(), ds, fit.seconds_per_epoch)?;
                acc.precision += r.precision;
                acc.recall += r.recall;
                acc.auc += r.auc;
                acc.f1 += r.f1;
                acc.secs_per_epoch += r.secs_per_epoch;
            }
            Ok(())
        };
        slot[0] = Some(match cell(&mut acc) {
            Ok(()) => {
                let n = take as f64;
                acc.precision /= n;
                acc.recall /= n;
                acc.auc /= n;
                acc.f1 /= n;
                acc.secs_per_epoch /= n;
                acc
            }
            Err(e) => RunResult::failed(method.name(), ds.kind.name(), &e),
        });
    });
    let results: Vec<RunResult> = slots.into_iter().flatten().collect();
    record_cells(&results);
    for r in &results {
        progress(r);
    }
    results
}

/// Renders Table 3 (AUC*, F1*).
pub fn render_table3(results: &[RunResult]) -> String {
    let header: Vec<String> = ["Dataset", "Method", "AUC*", "F1*"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| vec![r.dataset.clone(), r.method.clone(), fmt4(r.auc), fmt4(r.f1)])
        .collect();
    render_table(&header, &rows)
}

/// One diagnosis row (Table 4).
#[derive(Debug, Clone)]
pub struct DiagnosisRow {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// HitRate@100%.
    pub hit100: f64,
    /// HitRate@150%.
    pub hit150: f64,
    /// NDCG@100%.
    pub ndcg100: f64,
    /// NDCG@150%.
    pub ndcg150: f64,
}

tranad_json::impl_json_struct!(DiagnosisRow {
    method,
    dataset,
    hit100,
    hit150,
    ndcg100,
    ndcg150,
});

/// Table 4: diagnosis performance (HitRate@P%, NDCG@P%) on the paper's two
/// multivariate diagnosis datasets, SMD and MSDS.
pub fn table4(
    cfg: &HarnessConfig,
    method_filter: &[Method],
    mut progress: impl FnMut(&DiagnosisRow),
) -> Vec<DiagnosisRow> {
    let methods = if method_filter.is_empty() { Method::table2() } else { method_filter.to_vec() };
    let mut rows = Vec::new();
    for kind in [DatasetKind::Smd, DatasetKind::Msds] {
        let ds = generate(kind, cfg.gen);
        let truth_dims: Vec<Vec<bool>> =
            (0..ds.labels.len()).map(|t| ds.labels.dim_labels(t)).collect();
        for &method in &methods {
            let mut det = method.build(cfg);
            let scores = det
                .fit(&ds.train, &Recorder::disabled())
                .and_then(|_| det.score(&ds.test));
            let row = match scores {
                Ok(scores) => {
                    let d = diagnose(&scores, &truth_dims);
                    DiagnosisRow {
                        method: method.name().to_string(),
                        dataset: kind.name().to_string(),
                        hit100: d.hit100,
                        hit150: d.hit150,
                        ndcg100: d.ndcg100,
                        ndcg150: d.ndcg150,
                    }
                }
                // A failed fit becomes a NaN row ("-" in the rendering)
                // rather than aborting the remaining grid.
                Err(_) => DiagnosisRow {
                    method: method.name().to_string(),
                    dataset: kind.name().to_string(),
                    hit100: f64::NAN,
                    hit150: f64::NAN,
                    ndcg100: f64::NAN,
                    ndcg150: f64::NAN,
                },
            };
            progress(&row);
            rows.push(row);
        }
    }
    let _ = save("table4", &rows);
    rows
}

/// Renders Table 4.
pub fn render_table4(rows: &[DiagnosisRow]) -> String {
    let header: Vec<String> = ["Dataset", "Method", "H@100%", "H@150%", "N@100%", "N@150%"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.method.clone(),
                fmt4(r.hit100),
                fmt4(r.hit150),
                fmt4(r.ndcg100),
                fmt4(r.ndcg150),
            ]
        })
        .collect();
    render_table(&header, &body)
}

/// Table 5: training times in seconds per epoch, from the Table 2 run
/// (recomputing if no cached results exist).
pub fn table5(cfg: &HarnessConfig, results: &[RunResult]) -> String {
    let _ = cfg;
    let (datasets, methods, matrix) = score_matrix(results, |r| r.secs_per_epoch);
    let mut header = vec!["Method".to_string()];
    header.extend(datasets.iter().cloned());
    let mut rows = Vec::new();
    for (mi, method) in methods.iter().enumerate() {
        let mut row = vec![method.clone()];
        for col in matrix.iter().take(datasets.len()) {
            row.push(format!("{:.3}", col[mi]));
        }
        rows.push(row);
    }
    render_table(&header, &rows)
}

/// Table 6: ablation study — F1 (full data) and F1* (20 % data).
pub fn table6(
    cfg: &HarnessConfig,
    dataset_filter: &[DatasetKind],
    subsets: usize,
    mut progress: impl FnMut(&RunResult),
) -> (Vec<RunResult>, Vec<RunResult>) {
    let methods = Method::table6();
    let full = run_grid(cfg, dataset_filter, &methods, &mut progress);
    let _ = save("table6_full", &full);
    let limited = run_grid_limited(cfg, dataset_filter, &methods, subsets, &mut progress);
    let _ = save("table6_limited", &limited);
    (full, limited)
}

/// Renders Table 6 rows from the full and limited runs.
pub fn render_table6(full: &[RunResult], limited: &[RunResult]) -> String {
    let header: Vec<String> = ["Dataset", "Method", "F1", "F1*"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for f in full {
        let star = limited
            .iter()
            .find(|l| l.method == f.method && l.dataset == f.dataset)
            .map(|l| l.f1)
            .unwrap_or(f64::NAN);
        rows.push(vec![f.dataset.clone(), f.method.clone(), fmt4(f.f1), fmt4(star)]);
    }
    render_table(&header, &rows)
}

/// One Table 7 row: MERLIN reference vs. optimized implementation.
#[derive(Debug, Clone)]
pub struct MerlinRow {
    /// Dataset name.
    pub dataset: String,
    /// Metric name (P/R/AUC/F1/Time).
    pub metric: String,
    /// The exhaustive "original" configuration's value.
    pub original: f64,
    /// The optimized reimplementation's value.
    pub ours: f64,
    /// Relative deviation `(ours - original) / original`.
    pub deviation: f64,
}

tranad_json::impl_json_struct!(MerlinRow {
    dataset,
    metric,
    original,
    ours,
    deviation,
});

/// Table 7: MERLIN original-vs-reimplementation comparison. The paper's
/// per-dataset (MinL, MaxL) grid-search values are reused directly.
pub fn table7(
    cfg: &HarnessConfig,
    dataset_filter: &[DatasetKind],
    mut progress: impl FnMut(&MerlinRow),
) -> Vec<MerlinRow> {
    // (MinL, MaxL) per dataset from the paper's Appendix A, scaled into our
    // shorter series where necessary.
    let paper_lengths = |kind: DatasetKind| -> (usize, usize) {
        match kind {
            DatasetKind::Nab => (10, 40),
            DatasetKind::Ucr => (50, 60),
            DatasetKind::Mba => (60, 100),
            DatasetKind::Smap => (70, 100),
            DatasetKind::Msl => (30, 60),
            DatasetKind::Swat => (10, 20),
            DatasetKind::Wadi => (60, 100),
            DatasetKind::Smd => (100, 140),
            DatasetKind::Msds => (5, 10),
        }
    };
    let mut rows = Vec::new();
    for ds in datasets(cfg, dataset_filter) {
        let (min_l, max_l) = paper_lengths(ds.kind);
        // Keep discord lengths feasible on the scaled series.
        let cap = (ds.test.len() / 4).max(8);
        let (min_l, max_l) = (min_l.min(cap).max(4), max_l.min(cap * 2).max(8));
        let truth = ds.point_labels();
        let run = |config: MerlinConfig| -> Result<(f64, f64, f64, f64, f64), DetectorError> {
            let mut det = Merlin::new(config);
            let fit = det.fit(&ds.train, &Recorder::disabled())?;
            let scores = det.score(&ds.test)?;
            let aggregate = tranad_baselines::aggregate_scores(&scores)?;
            let labels = detect_aggregate(det.train_scores()?, &scores, pot_config(&ds))?;
            let m = evaluate(&aggregate, &labels, &truth);
            Ok((m.precision, m.recall, m.auc, m.f1, fit.seconds_per_epoch))
        };
        let (orig, ours) = match (
            run(MerlinConfig::reference(min_l, max_l)),
            run(MerlinConfig::optimized(min_l, max_l)),
        ) {
            (Ok(o), Ok(u)) => (o, u),
            // Record the failure and move to the next dataset.
            (o, u) => {
                let err = o.err().or(u.err()).unwrap_or(DetectorError::NotFitted);
                tranad_telemetry::global().emit("bench.error", |e| {
                    e.str("table", "table7")
                        .str("dataset", ds.kind.name())
                        .str("error", err.to_string());
                });
                continue;
            }
        };
        for (metric, o, u) in [
            ("P", orig.0, ours.0),
            ("R", orig.1, ours.1),
            ("AUC", orig.2, ours.2),
            ("F1", orig.3, ours.3),
            ("Time", orig.4, ours.4),
        ] {
            let row = MerlinRow {
                dataset: ds.kind.name().to_string(),
                metric: metric.to_string(),
                original: o,
                ours: u,
                deviation: if o.abs() > 1e-12 { (u - o) / o } else { 0.0 },
            };
            progress(&row);
            rows.push(row);
        }
    }
    let _ = save("table7", &rows);
    rows
}

/// Renders Table 7.
pub fn render_table7(rows: &[MerlinRow]) -> String {
    let header: Vec<String> = ["Benchmark", "Metric", "Original", "Ours", "Deviation"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.metric.clone(),
                fmt4(r.original),
                fmt4(r.ours),
                fmt4(r.deviation),
            ]
        })
        .collect();
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_datasets() {
        let out = table1(&HarnessConfig::quick());
        for kind in DatasetKind::all() {
            assert!(out.contains(kind.name()), "missing {}", kind.name());
        }
    }

    #[test]
    fn table2_single_cell() {
        let cfg = HarnessConfig::quick();
        let rows = table2(&cfg, &[DatasetKind::Nab], &[Method::Merlin], |_| {});
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].method, "MERLIN");
        let rendered = render_table2(&rows);
        assert!(rendered.contains("NAB"));
    }

    #[test]
    fn table7_merlin_deviation_small_on_scores() {
        let cfg = HarnessConfig::quick();
        let rows = table7(&cfg, &[DatasetKind::Nab], |_| {});
        assert_eq!(rows.len(), 5);
        let f1 = rows.iter().find(|r| r.metric == "F1").unwrap();
        assert!(
            f1.deviation.abs() < 0.35,
            "score deviation too large: {}",
            f1.deviation
        );
        let time = rows.iter().find(|r| r.metric == "Time").unwrap();
        assert!(time.ours < time.original, "optimized must be faster");
    }
}

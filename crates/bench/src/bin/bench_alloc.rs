//! Reports allocator traffic per TranAD training step.
//!
//! Build with the counting allocator: `cargo run --release -p tranad-bench
//! --features count-alloc --bin bench-alloc`. A first training run warms the
//! buffer pool; the second run is measured, so the numbers reflect the
//! steady state a long training job sits in.

use tranad::config::TranadConfig;
use tranad::train::{train, train_with};
use tranad_bench::alloc_count::{self, CountingAlloc};
use tranad_data::{SignalRng, TimeSeries};
use tranad_telemetry::{MemorySink, Recorder};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| ((t as f64) / (10.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

/// Trains once under `rec` and returns `(allocations, bytes, steps)` where
/// a step is one optimizer update (two per batch: phase-1 and decoder-2).
fn measure(series: &TimeSeries, config: TranadConfig, rec: &Recorder) -> (u64, u64, u64) {
    let before = alloc_count::counts();
    let (_, report) = train_with(series, config, rec).expect("training");
    let (allocs, bytes) = alloc_count::delta(before);
    let batches = series.len().div_ceil(config.batch_size);
    let steps = (report.epochs_run * batches * 2).max(1) as u64;
    (allocs, bytes, steps)
}

fn main() {
    let series = toy_series(1500, 4, 1);
    let config = TranadConfig {
        epochs: 4,
        patience: 10,
        ..TranadConfig::default()
    };

    // Warm-up run: first-touch allocations fill the buffer pool.
    let _ = train(&series, config).expect("warm-up training");

    let (allocs, bytes, steps) = measure(&series, config, &Recorder::disabled());
    let stats = tranad_tensor::bufpool::stats();

    // Reference: same build with recycling switched off, so every tensor
    // buffer hits the system allocator (the pre-pool behavior).
    tranad_tensor::bufpool::set_enabled(false);
    tranad_tensor::bufpool::clear();
    let (allocs_off, bytes_off, steps_off) = measure(&series, config, &Recorder::disabled());
    tranad_tensor::bufpool::set_enabled(true);

    // Telemetry overhead: the disabled recorder must be invisible to the
    // allocator, and even a live in-memory sink should stay cheap.
    let (allocs_live, bytes_live, steps_live) =
        measure(&series, config, &Recorder::new(MemorySink::new(1 << 16)));

    println!("series: len={} dims=4; {} optimizer updates per run", series.len(), steps);
    println!(
        "pool on:  {} allocations/step, {} bytes/step",
        allocs / steps,
        bytes / steps
    );
    println!(
        "pool off: {} allocations/step, {} bytes/step",
        allocs_off / steps_off,
        bytes_off / steps_off
    );
    println!(
        "reduction: {:.1}x allocations, {:.1}x bytes",
        allocs_off as f64 / allocs.max(1) as f64,
        bytes_off as f64 / bytes.max(1) as f64
    );
    println!(
        "pool (main thread): {} hits, {} misses, {} recycled, {} dropped",
        stats.hits, stats.misses, stats.recycled, stats.dropped
    );
    println!(
        "telemetry off: {} allocations/step; live memory sink: {} allocations/step, {} bytes/step",
        allocs / steps,
        allocs_live / steps_live,
        bytes_live / steps_live
    );
    // Regression gate: disabled telemetry must not add allocator traffic to
    // the training step (PR2 pinned the instrumented-free hot path at 486
    // allocations/step on this exact workload).
    assert!(
        allocs / steps <= 486,
        "disabled telemetry leaks allocations into the hot path: {} allocs/step (budget 486)",
        allocs / steps
    );
}

//! Reports allocator traffic per TranAD training step and per online push.
//!
//! Build with the counting allocator: `cargo run --release -p tranad-bench
//! --features count-alloc --bin bench-alloc`. A first training run warms the
//! buffer pool; the second run is measured, so the numbers reflect the
//! steady state a long training job sits in. Budgets live in
//! `results/alloc_budget.json` so the gate and the recorded numbers evolve
//! together.

use tranad::config::TranadConfig;
use tranad::train::{train, train_with};
use tranad::{OnlineState, PotConfig};
use tranad_bench::alloc_count::{self, CountingAlloc};
use tranad_data::{SignalRng, TimeSeries, Windows};
use tranad_nn::Ctx;
use tranad_telemetry::{MemorySink, Recorder};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| ((t as f64) / (10.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

/// Trains once under `rec` and returns `(allocations, bytes, steps)` where
/// a step is one optimizer update (two per batch: phase-1 and decoder-2).
fn measure(series: &TimeSeries, config: TranadConfig, rec: &Recorder) -> (u64, u64, u64) {
    let before = alloc_count::counts();
    let (_, report) = train_with(series, config, rec).expect("training");
    let (allocs, bytes) = alloc_count::delta(before);
    let batches = series.len().div_ceil(config.batch_size);
    let steps = (report.epochs_run * batches * 2).max(1) as u64;
    (allocs, bytes, steps)
}

/// Reads one integer budget out of `results/alloc_budget.json`.
fn budget(doc: &tranad_json::Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(|j| j.as_f64())
        .unwrap_or_else(|| panic!("results/alloc_budget.json is missing `{key}`")) as u64
}

fn main() {
    let budget_text = std::fs::read_to_string("results/alloc_budget.json")
        .expect("run from the workspace root: results/alloc_budget.json not found");
    let budgets = tranad_json::parse(&budget_text).expect("invalid alloc_budget.json");
    let train_budget = budget(&budgets, "train_allocs_per_step");
    let push_budget = budget(&budgets, "online_allocs_per_push");

    let series = toy_series(1500, 4, 1);
    let config = TranadConfig {
        epochs: 4,
        patience: 10,
        ..TranadConfig::default()
    };

    // Warm-up run: first-touch allocations fill the buffer pool.
    let _ = train(&series, config).expect("warm-up training");

    let (allocs, bytes, steps) = measure(&series, config, &Recorder::disabled());
    let stats = tranad_tensor::bufpool::stats();

    // Reference: same build with recycling switched off, so every tensor
    // buffer hits the system allocator (the pre-pool behavior).
    tranad_tensor::bufpool::set_enabled(false);
    tranad_tensor::bufpool::clear();
    let (allocs_off, bytes_off, steps_off) = measure(&series, config, &Recorder::disabled());
    tranad_tensor::bufpool::set_enabled(true);

    // Telemetry overhead: the disabled recorder must be invisible to the
    // allocator, and even a live in-memory sink should stay cheap.
    let (allocs_live, bytes_live, steps_live) =
        measure(&series, config, &Recorder::new(MemorySink::new(1 << 16)));

    println!("series: len={} dims=4; {} optimizer updates per run", series.len(), steps);
    println!(
        "pool on:  {} allocations/step, {} bytes/step",
        allocs / steps,
        bytes / steps
    );
    println!(
        "pool off: {} allocations/step, {} bytes/step",
        allocs_off / steps_off,
        bytes_off / steps_off
    );
    println!(
        "reduction: {:.1}x allocations, {:.1}x bytes",
        allocs_off as f64 / allocs.max(1) as f64,
        bytes_off as f64 / bytes.max(1) as f64
    );
    println!(
        "pool (main thread): {} hits, {} misses, {} recycled, {} dropped",
        stats.hits, stats.misses, stats.recycled, stats.dropped
    );
    println!(
        "telemetry off: {} allocations/step; live memory sink: {} allocations/step, {} bytes/step",
        allocs / steps,
        allocs_live / steps_live,
        bytes_live / steps_live
    );
    // Regression gate: disabled telemetry must not add allocator traffic to
    // the training step (PR2 pinned the instrumented-free hot path at 486
    // allocations/step on this exact workload).
    assert!(
        allocs / steps <= train_budget,
        "disabled telemetry leaks allocations into the hot path: {} allocs/step (budget {})",
        allocs / steps,
        train_budget
    );

    // ---- Online serving: allocations per push on the tape-free path ----
    let online_series = toy_series(400, 4, 2);
    let online_config = TranadConfig { epochs: 2, patience: 10, ..TranadConfig::default() };
    let (trained, _) = train(&online_series, online_config).expect("online training");
    let stream = toy_series(576, 4, 3);

    let mut state = OnlineState::new(&trained, PotConfig::default()).expect("SPOT init");
    // Warm-up: fill the history ring and the thread-local buffer pool so
    // the measurement reflects the steady state a long-lived stream sits in.
    for t in 0..64 {
        state.push(&trained, stream.row(t)).expect("warm-up push");
    }
    let before = alloc_count::counts();
    for t in 64..stream.len() {
        state.push(&trained, stream.row(t)).expect("measured push");
    }
    let (push_allocs, push_bytes) = alloc_count::delta(before);
    let pushes = (stream.len() - 64) as u64;

    // Taped reference: the forward pass the pre-refactor push ran (tape
    // nodes, backward closures, a `Var` per op) on the same window shapes.
    let cfg = *trained.model.config();
    let normalized = trained.normalizer.transform(&stream);
    let windows = Windows::borrowed(&normalized, cfg.window);
    let n = windows.len();
    let w_t = windows.batch_range(n - 1, n);
    let c_t = windows.context_batch_range(n - 1, n, cfg.context);
    let before = alloc_count::counts();
    for _ in 0..pushes {
        let ctx = Ctx::eval(&trained.store);
        let w = ctx.input(w_t.clone());
        let c = ctx.input(c_t.clone());
        let out = trained.model.forward(&ctx, &w, &c);
        std::hint::black_box(out.o1.value().data()[0]);
    }
    let (taped_allocs, _) = alloc_count::delta(before);

    println!(
        "online push (tape-free): {} allocations/push, {} bytes/push; taped forward: {} allocations/push",
        push_allocs / pushes,
        push_bytes / pushes,
        taped_allocs / pushes
    );
    assert!(
        push_allocs / pushes <= push_budget,
        "tape-free online push regressed: {} allocs/push (budget {})",
        push_allocs / pushes,
        push_budget
    );
    assert!(
        push_allocs < taped_allocs,
        "tape-free push ({push_allocs} allocs) must stay below the taped forward ({taped_allocs} allocs)"
    );

    // ---- Serving engine: allocations per point on the batched path ----
    // Cross-stream batching amortizes the forward's allocator traffic over
    // every co-batched stream, and the push path copies into preallocated
    // row queues — so allocs/point must sit well below allocs/push.
    let serve_budget = budget(&budgets, "serve_allocs_per_point");
    let streams = 8usize;
    let rounds = 32usize;
    let mut engine = tranad_serve::Engine::new(
        trained,
        tranad_serve::EngineConfig::builder().max_queue(rounds).batch_max(rounds).build().unwrap(),
    )
    .expect("engine");
    let ids: Vec<_> = (0..streams)
        .map(|s| engine.stream_id(&format!("s{s}")).expect("stream id"))
        .collect();
    let feed = |engine: &mut tranad_serve::Engine, epoch: usize| {
        for t in 0..rounds {
            for (s, &id) in ids.iter().enumerate() {
                engine
                    .push_id(id, stream.row((epoch * rounds + t + s * 31) % stream.len()))
                    .expect("push");
            }
        }
        while engine.run_batch().expect("batch").processed > 0 {}
    };
    feed(&mut engine, 0); // warm-up: SPOT calibration, workspace growth
    let before = alloc_count::counts();
    feed(&mut engine, 1);
    let (serve_allocs, serve_bytes) = alloc_count::delta(before);
    let points = (streams * rounds) as u64;
    println!(
        "serve batched ({streams} streams): {} allocations/point, {} bytes/point",
        serve_allocs / points,
        serve_bytes / points
    );
    assert!(
        serve_allocs / points <= serve_budget,
        "batched serve path regressed: {} allocs/point (budget {})",
        serve_allocs / points,
        serve_budget
    );
}

//! Taped vs tape-free inference throughput.
//!
//! Scores the same trained model through the tape-backed `Ctx::eval` path
//! (what serving ran before the `Fwd`/`InferCtx` refactor) and the
//! tape-free path (what it runs now), for both batch scoring and
//! single-point online pushes. Prints windows/sec and pushes/sec for each
//! and, with `--out <path>`, records the comparison as JSON (the committed
//! copy lives at `results/infer_throughput.json`).
//!
//! Usage: `cargo run --release -p tranad-bench --bin bench-infer [-- --out results/infer_throughput.json]`

use std::time::Instant;
use tranad::config::TranadConfig;
use tranad::train::{train, TrainedTranad};
use tranad::{OnlineState, PotConfig};
use tranad_data::{SignalRng, TimeSeries, Windows};
use tranad_nn::Ctx;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| ((t as f64) / (10.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

/// Best-of-`reps` wall time for `f`, after one untimed warm-up call.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Batch scoring through the tape-backed path: identical batch boundaries
/// and score arithmetic to `TrainedTranad::score_normalized`, but every op
/// records a tape node with its backward closure.
fn taped_score(trained: &TrainedTranad, normalized: &TimeSeries) {
    let config = *trained.model.config();
    let windows = Windows::borrowed(normalized, config.window);
    let (k, m) = (config.window, normalized.dims());
    let n = windows.len();
    let bs = config.batch_size.max(1);
    for start in (0..n).step_by(bs) {
        let end = (start + bs).min(n);
        let ctx = Ctx::eval(&trained.store);
        let w = ctx.input(windows.batch_range(start, end));
        let c = ctx.input(windows.context_batch_range(start, end, config.context));
        let out = trained.model.forward(&ctx, &w, &c);
        let (o1, o2h, wv) = (out.o1.value(), out.o2_hat.value(), w.value());
        let mut acc = 0.0;
        for bi in 0..end - start {
            let base = (bi * k + (k - 1)) * m;
            for d in 0..m {
                let target = wv.data()[base + d];
                let e1 = o1.data()[base + d] - target;
                let e2 = o2h.data()[base + d] - target;
                acc += 0.5 * e1 * e1 + 0.5 * e2 * e2;
            }
        }
        std::hint::black_box(acc);
    }
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--out").map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--out requires a path");
                std::process::exit(2);
            })
        })
    };

    let train_series = toy_series(800, 4, 1);
    let config = TranadConfig { epochs: 3, patience: 10, ..TranadConfig::default() };
    let (trained, _) = train(&train_series, config).expect("training");

    // ---- Batch scoring ----
    let test = toy_series(4000, 4, 2);
    let normalized = trained.normalizer.transform(&test);
    let reps = 5;
    let taped_s = best_secs(reps, || taped_score(&trained, &normalized));
    let free_s = best_secs(reps, || {
        std::hint::black_box(trained.score_normalized(&normalized));
    });
    let windows = test.len() as f64;
    let batch_taped = windows / taped_s;
    let batch_free = windows / free_s;

    // ---- Online pushes ----
    let stream = toy_series(1024, 4, 3);
    let pushes = 512usize;
    let mut state = OnlineState::new(&trained, PotConfig::default()).expect("SPOT init");
    for t in 0..stream.len() - pushes {
        state.push(&trained, stream.row(t)).expect("warm-up push");
    }
    let start = Instant::now();
    for t in stream.len() - pushes..stream.len() {
        state.push(&trained, stream.row(t)).expect("measured push");
    }
    let online_free = pushes as f64 / start.elapsed().as_secs_f64();

    // Taped reference for one push's forward pass, on the same shapes.
    let cfg = *trained.model.config();
    let w_windows = Windows::borrowed(&normalized, cfg.window);
    let n = w_windows.len();
    let w_t = w_windows.batch_range(n - 1, n);
    let c_t = w_windows.context_batch_range(n - 1, n, cfg.context);
    let start = Instant::now();
    for _ in 0..pushes {
        let ctx = Ctx::eval(&trained.store);
        let w = ctx.input(w_t.clone());
        let c = ctx.input(c_t.clone());
        let out = trained.model.forward(&ctx, &w, &c);
        std::hint::black_box(out.o1.value().data()[0]);
    }
    let online_taped = pushes as f64 / start.elapsed().as_secs_f64();

    println!(
        "batch scoring: taped {batch_taped:.0} windows/s, tape-free {batch_free:.0} windows/s ({:.2}x)",
        batch_free / batch_taped
    );
    println!(
        "online push:   taped {online_taped:.0} pushes/s, tape-free {online_free:.0} pushes/s ({:.2}x)",
        online_free / online_taped
    );

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"comment\": \"Inference throughput, taped Ctx::eval vs tape-free InferCtx, from `bench-infer` (best of {reps} runs; {} windows batch, {pushes} online pushes, 4 dims). The online taped column times only the forward pass — the real pre-refactor push did strictly more work.\",\n  \"batch\": {{ \"taped_windows_per_s\": {batch_taped:.0}, \"tape_free_windows_per_s\": {batch_free:.0}, \"speedup\": {:.2} }},\n  \"online\": {{ \"taped_pushes_per_s\": {online_taped:.0}, \"tape_free_pushes_per_s\": {online_free:.0}, \"speedup\": {:.2} }}\n}}\n",
            test.len(),
            batch_free / batch_taped,
            online_free / online_taped,
        );
        std::fs::write(&path, json).expect("write --out file");
        println!("wrote {path}");
    }
}

//! End-to-end smoke test for the live observability stack: boots a real
//! serving engine with an enabled recorder and a `tranad-obs` exporter on
//! an ephemeral port, scrapes `/metrics`, `/healthz`, `/readyz` and
//! `/streams` over a raw `std::net::TcpStream`, and asserts the required
//! metric families plus the not-ready → ready transition across the first
//! batch. Exits non-zero on any failed check — scripts/verify.sh runs this
//! as the `obs-smoke` gate.
//!
//! Usage: `cargo run --release -p tranad-bench --bin obs-smoke`

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use tranad::config::TranadConfig;
use tranad::train::train;
use tranad_data::{SignalRng, TimeSeries};
use tranad_obs::Exporter;
use tranad_serve::{Engine, EngineConfig};
use tranad_telemetry::{MemorySink, Recorder};

const DIMS: usize = 3;
const STREAMS: usize = 4;
const POINTS: usize = 48;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| ((t as f64) / (9.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

fn point(s: usize, t: usize, dst: &mut [f64]) {
    for (d, v) in dst.iter_mut().enumerate() {
        let x = t as f64 + s as f64 * 0.41;
        *v = (x / (9.0 + d as f64)).sin()
            + 0.05 * (((x * 12.9898 + d as f64 * 78.233).sin() * 43758.5453).fract() - 0.5);
    }
}

/// One raw HTTP/1.0 GET; returns (status, body). The whole walkthrough is
/// curl-free on purpose: `std::net::TcpStream` is the only client needed.
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to exporter");
    conn.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn check(ok: bool, what: &str) {
    if ok {
        println!("ok: {what}");
    } else {
        eprintln!("FAIL: {what}");
        std::process::exit(1);
    }
}

fn main() {
    // A tiny but real model: the smoke test exercises the full stack, not
    // a mock.
    let config = TranadConfig {
        epochs: 2,
        patience: 10,
        window: 4,
        context: 8,
        ff_hidden: 8,
        ..TranadConfig::default()
    };
    let (trained, _) = train(&toy_series(400, DIMS, 3), config).expect("training");

    let rec = Recorder::new(MemorySink::new(4096));
    let mut engine = Engine::with_recorder(trained, EngineConfig::default(), rec.clone())
        .expect("engine");
    let ids: Vec<_> = (0..STREAMS)
        .map(|s| engine.stream_id(&format!("stream-{s}")).expect("stream id"))
        .collect();
    let exporter =
        Exporter::bind("127.0.0.1:0", rec, Some(engine.obs())).expect("bind exporter");
    let addr = exporter.addr();
    println!("exporter listening on {addr}");

    // Before the first batch: healthy but not ready.
    let (status, body) = get(addr, "/healthz");
    check(status == 200 && body.starts_with("ok"), "/healthz answers 200 before serving");
    let (status, body) = get(addr, "/readyz");
    check(
        status == 503 && body.starts_with("not ready"),
        "/readyz answers 503 before the first batch",
    );

    // Serve a little traffic.
    let mut row = [0.0; DIMS];
    for t in 0..POINTS {
        for (s, &id) in ids.iter().enumerate() {
            point(s, t, &mut row);
            engine.push_id(id, &row).expect("push");
        }
        if t % 16 == 15 {
            engine.run_batch().expect("batch");
        }
    }
    engine.run_batch().expect("final batch");

    // After serving: ready, and every required family is exported.
    let (status, body) = get(addr, "/readyz");
    check(status == 200 && body.starts_with("ready"), "/readyz flips to 200 after a batch");
    let (status, _) = get(addr, "/healthz");
    check(status == 200, "/healthz stays 200 under load");

    let (status, metrics) = get(addr, "/metrics");
    check(status == 200, "/metrics answers 200");
    let expected_processed = (STREAMS * POINTS) as u64;
    for family in [
        // Recorder metrics from the serving hot path.
        "# TYPE tranad_serve_push_us histogram",
        "tranad_serve_push_us_bucket{le=\"+Inf\"}",
        "# TYPE tranad_serve_queue_depth gauge",
        "# TYPE tranad_serve_batch_occupancy gauge",
        // Engine health and counters.
        "tranad_engine_ready 1",
        "tranad_engine_healthy 1",
        "tranad_engine_streams 4",
        &format!("tranad_engine_processed_total {expected_processed}"),
        "tranad_engine_shed_total 0",
        "tranad_engine_health_ok{condition=\"queue_saturation\"} 1",
        // Per-stream families with stream labels.
        &format!("tranad_stream_seen_total{{stream=\"stream-0\"}} {POINTS}"),
        "tranad_stream_spot_threshold{stream=\"stream-3\"}",
        "tranad_stream_last_score{stream=\"stream-1\"}",
    ] {
        check(metrics.contains(family), &format!("/metrics exports {family:?}"));
    }

    let (status, table) = get(addr, "/streams");
    check(status == 200, "/streams answers 200");
    check(
        table.lines().next()
            == Some("stream seen queued queue_hwm shed anomalies last_score threshold"),
        "/streams has the stats-table header",
    );
    check(
        (0..STREAMS).all(|s| table.contains(&format!("stream-{s} {POINTS} 0 "))),
        "/streams lists every stream with its seen count and an empty queue",
    );

    exporter.shutdown();
    println!("obs-smoke OK: exporter served metrics, health and streams for a live engine");
}

//! Regenerates the paper's Tables 1–7.
//!
//! ```text
//! tables --table 2 [--scale 0.004] [--dataset SMD --dataset NAB]
//!        [--method TranAD] [--subsets 2] [--quick]
//! tables --all
//! ```

use tranad_bench::tables::{
    render_table2, render_table3, render_table4, render_table6, render_table7, table1, table2,
    table3, table4, table5, table6, table7,
};
use tranad_bench::{HarnessConfig, Method};
use tranad_data::{DatasetKind, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tables: Vec<u32> = Vec::new();
    let mut cfg = HarnessConfig::default();
    let mut datasets: Vec<DatasetKind> = Vec::new();
    let mut methods: Vec<Method> = Vec::new();
    let mut subsets = 2usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" => {
                i += 1;
                tables.push(args[i].parse().expect("--table takes a number 1-7"));
            }
            "--all" => tables.extend(1..=7),
            "--quick" => cfg = HarnessConfig::quick(),
            "--scale" => {
                i += 1;
                let scale: f64 = args[i].parse().expect("--scale takes a float");
                cfg.gen = GenConfig { scale, ..cfg.gen };
            }
            "--seed" => {
                i += 1;
                let seed: u64 = args[i].parse().expect("--seed takes an integer");
                cfg.gen.seed = seed;
            }
            "--subsets" => {
                i += 1;
                subsets = args[i].parse().expect("--subsets takes an integer");
            }
            "--dataset" => {
                i += 1;
                datasets.push(
                    DatasetKind::parse(&args[i])
                        .unwrap_or_else(|| panic!("unknown dataset {}", args[i])),
                );
            }
            "--method" => {
                i += 1;
                let name = &args[i];
                let m = Method::table2()
                    .into_iter()
                    .find(|m| m.name().eq_ignore_ascii_case(name))
                    .unwrap_or_else(|| panic!("unknown method {name}"));
                methods.push(m);
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    if tables.is_empty() {
        tables.push(2);
    }

    let progress = |label: &str| {
        let label = label.to_string();
        move |r: &tranad_bench::RunResult| {
            eprintln!(
                "[{label}] {} / {}: F1={:.4} AUC={:.4} ({:.2}s/epoch)",
                r.dataset, r.method, r.f1, r.auc, r.secs_per_epoch
            );
        }
    };

    for t in tables {
        println!("==== Table {t} ====");
        match t {
            1 => println!("{}", table1(&cfg)),
            2 => {
                let rows = table2(&cfg, &datasets, &methods, progress("T2"));
                println!("{}", render_table2(&rows));
            }
            3 => {
                let rows = table3(&cfg, &datasets, &methods, subsets, progress("T3"));
                println!("{}", render_table3(&rows));
            }
            4 => {
                let rows = table4(&cfg, &methods, |r| {
                    eprintln!("[T4] {} / {}: H@100={:.4}", r.dataset, r.method, r.hit100)
                });
                println!("{}", render_table4(&rows));
            }
            5 => {
                let rows = tranad_bench::results::load("table2")
                    .unwrap_or_else(|| table2(&cfg, &datasets, &methods, progress("T5")));
                println!("{}", table5(&cfg, &rows));
            }
            6 => {
                let (full, limited) = table6(&cfg, &datasets, subsets, progress("T6"));
                println!("{}", render_table6(&full, &limited));
            }
            7 => {
                let rows = table7(&cfg, &datasets, |r| {
                    eprintln!(
                        "[T7] {} {}: orig={:.4} ours={:.4}",
                        r.dataset, r.metric, r.original, r.ours
                    )
                });
                println!("{}", render_table7(&rows));
            }
            other => panic!("no table {other} in the paper"),
        }
    }
    // Summarize accumulated metrics into the TRANAD_TRACE file, if any.
    tranad_telemetry::global().flush_metrics();
}

//! Regenerates the paper's Figures 2–7 as CSV series + textual summaries.
//!
//! ```text
//! figures --figure 4 [--scale 0.004] [--dataset SMD] [--quick]
//! figures --all
//! ```

use tranad_bench::figures::{figure2, figure3, figure4, figure5, figure6, figure7};
use tranad_bench::HarnessConfig;
use tranad_data::{DatasetKind, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<u32> = Vec::new();
    let mut cfg = HarnessConfig::default();
    let mut datasets: Vec<DatasetKind> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                i += 1;
                figures.push(args[i].parse().expect("--figure takes a number 2-7"));
            }
            "--all" => figures.extend(2..=7),
            "--quick" => cfg = HarnessConfig::quick(),
            "--scale" => {
                i += 1;
                let scale: f64 = args[i].parse().expect("--scale takes a float");
                cfg.gen = GenConfig { scale, ..cfg.gen };
            }
            "--dataset" => {
                i += 1;
                datasets.push(
                    DatasetKind::parse(&args[i])
                        .unwrap_or_else(|| panic!("unknown dataset {}", args[i])),
                );
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    if figures.is_empty() {
        figures.push(4);
    }

    for f in figures {
        println!("==== Figure {f} ====");
        let out = match f {
            2 => figure2(&cfg),
            3 => figure3(&cfg),
            4 => figure4(&cfg),
            5 => figure5(&cfg),
            6 => figure6(&cfg, &datasets),
            7 => figure7(&cfg, &datasets),
            other => panic!("no figure {other} in the paper's evaluation"),
        };
        println!("{out}");
    }
    // Summarize accumulated metrics into the TRANAD_TRACE file, if any.
    tranad_telemetry::global().flush_metrics();
}

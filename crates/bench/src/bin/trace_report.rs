//! `trace-report`: analyzes a span-instrumented JSONL trace.
//!
//! ```text
//! trace-report <trace.jsonl> [--table <out|->] [--chrome <out.json>]
//!              [--flamegraph <out.svg>] [--check <budget.json>]
//! ```
//!
//! With no output flags the per-phase/per-op table prints to stdout.
//! `--chrome` writes Chrome trace-event JSON (open in Perfetto or
//! `chrome://tracing`), `--flamegraph` a self-contained SVG. `--check`
//! verifies the trace against a perf-budget file and exits non-zero on any
//! violation, which is how `scripts/verify.sh` gates regressions.

use tranad_bench::trace_report::{
    analyze, check_budget, parse_budget, parse_trace, render_table, to_chrome_trace,
    to_flamegraph_svg,
};

fn usage() -> ! {
    eprintln!(
        "usage: trace-report <trace.jsonl> [--table <out|->] [--chrome <out.json>] \
         [--flamegraph <out.svg>] [--check <budget.json>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut table_out = None;
    let mut chrome_out = None;
    let mut flame_out = None;
    let mut budget_path = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--table" => table_out = Some(value("--table")),
            "--chrome" => chrome_out = Some(value("--chrome")),
            "--flamegraph" => flame_out = Some(value("--flamegraph")),
            "--check" => budget_path = Some(value("--check")),
            "--help" | "-h" => usage(),
            _ if trace_path.is_none() && !arg.starts_with("--") => {
                trace_path = Some(arg.clone());
            }
            _ => usage(),
        }
    }
    let Some(trace_path) = trace_path else { usage() };

    let text = std::fs::read_to_string(&trace_path).unwrap_or_else(|e| {
        eprintln!("cannot read {trace_path}: {e}");
        std::process::exit(2);
    });
    let trace = parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {trace_path}: {e}");
        std::process::exit(2);
    });
    if trace.spans.is_empty() {
        eprintln!(
            "{trace_path} contains no span events — was the run traced with spans enabled?"
        );
        std::process::exit(2);
    }
    let report = analyze(&trace);

    // Default action: table to stdout.
    if table_out.is_none() && chrome_out.is_none() && flame_out.is_none() && budget_path.is_none()
    {
        table_out = Some("-".to_string());
    }
    if let Some(out) = table_out {
        let table = render_table(&report);
        if out == "-" {
            print!("{table}");
        } else {
            write_file(&out, &table);
        }
    }
    if let Some(out) = chrome_out {
        write_file(&out, &to_chrome_trace(&trace).to_string());
    }
    if let Some(out) = flame_out {
        write_file(&out, &to_flamegraph_svg(&trace));
    }
    if let Some(path) = budget_path {
        let budget_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read budget {path}: {e}");
            std::process::exit(2);
        });
        let rules = parse_budget(&budget_text).unwrap_or_else(|e| {
            eprintln!("cannot parse budget {path}: {e:?}");
            std::process::exit(2);
        });
        let violations = check_budget(&report, &rules);
        if violations.is_empty() {
            println!("perf budget OK: {} rules checked against {} spans", rules.len(), report.span_count);
        } else {
            eprintln!("perf budget violations:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}

fn write_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {path}");
}

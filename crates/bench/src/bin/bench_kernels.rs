//! Per-shape matmul kernel throughput: packed/register-tiled vs reference.
//!
//! Measures single-core GFLOP/s of the `tranad_tensor::kernels` family
//! against the retained naive `reference_*` kernels on the three shape
//! classes the system actually runs:
//!
//! - `train`: the training step's `[batch * window, d] @ [d, ff]` products
//!   (packed + tiled; this is the shape the verify gate checks).
//! - `attention`: `q @ k^T` score products (the nt kernel).
//! - `grad`: the tape backward's `a^T @ g` products (the tn kernel).
//! - `serve`: the small batched-serving forward shapes.
//!
//! Kernels are invoked directly on slices — no thread pool — so the
//! numbers compare code generation and memory behavior, not scheduling.
//! The tiled timings include panel packing where the dispatch would pack.
//!
//! Usage:
//!   cargo run --release -p tranad-bench --bin bench-kernels -- \
//!     [--out results/kernel_throughput.json] [--bench-out BENCH_kernels.json] \
//!     [--min-speedup 1.3]
//!
//! `--min-speedup` gates on the `train` shape and exits non-zero below it.
//! `--bench-out` also folds in the current headline numbers from
//! `results/infer_throughput.json` / `results/serve_throughput.json`,
//! starting the machine-readable perf trajectory future PRs diff against.

use std::time::Instant;
use tranad_tensor::kernels::{self, Epilogue};
use tranad_tensor::Rng;

/// Best-of-`reps` wall time for `f`, after one untimed warm-up call.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct ShapeResult {
    name: &'static str,
    n: usize,
    k: usize,
    m: usize,
    tiled_gflops: f64,
    reference_gflops: f64,
}

impl ShapeResult {
    fn speedup(&self) -> f64 {
        self.tiled_gflops / self.reference_gflops
    }
}

/// GFLOP/s for `iters` back-to-back `2 * n * k * m`-flop products taking
/// `secs` seconds total.
fn gflops((n, k, m): (usize, usize, usize), iters: usize, secs: f64) -> f64 {
    (2 * n * k * m * iters) as f64 / secs / 1e9
}

fn filled(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.normal()).collect()
}

/// Reads `path` and pulls `keys` (a dotted path) as f64, if present.
fn headline(path: &str, keys: &[&str]) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = tranad_json::parse(&text).ok()?;
    let mut node = &doc;
    for key in keys {
        node = node.get(key)?;
    }
    node.as_f64()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = flag_value(&args, "--out");
    let bench_out = flag_value(&args, "--bench-out");
    let min_speedup: Option<f64> = flag_value(&args, "--min-speedup").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--min-speedup must be a number, got {v:?}");
            std::process::exit(2);
        })
    });

    let mut rng = Rng::new(42);
    let reps = 7;
    let mut results = Vec::new();

    // Training shape: one epoch-batch of windows through a feed-forward
    // weight — [batch * window, d_model] @ [d_model, ff_hidden]. Big
    // enough that the dispatch packs the rhs; the tiled timing includes
    // that pack on every call, exactly like the real dispatch.
    {
        let shape = (1280usize, 64usize, 64usize);
        let (n, k, m) = shape;
        let iters = 4;
        let a = filled(&mut rng, n * k);
        let b = filled(&mut rng, k * m);
        let mut out = vec![0.0; n * m];
        assert!(kernels::should_pack(n, k, m), "train shape must exercise the packed path");
        let tiled_s = best_secs(reps, || {
            for _ in 0..iters {
                kernels::with_pack_scratch(k * m, |bp| {
                    kernels::pack_rhs(&b, k, m, bp);
                    kernels::matmul_tiled_packed(&a, bp, &mut out, n, k, m, Epilogue::NONE);
                });
            }
        });
        let ref_s = best_secs(reps, || {
            for _ in 0..iters {
                out.fill(0.0);
                kernels::reference_matmul(&a, &b, &mut out, n, k, m);
            }
        });
        results.push(ShapeResult {
            name: "train",
            n,
            k,
            m,
            tiled_gflops: gflops(shape, iters, tiled_s),
            reference_gflops: gflops(shape, iters, ref_s),
        });
    }

    // Attention shape: q @ k^T scores over a long sequence plane.
    {
        let shape = (256usize, 64usize, 256usize);
        let (n, k, m) = shape;
        let iters = 4;
        let a = filled(&mut rng, n * k);
        let b = filled(&mut rng, m * k);
        let mut out = vec![0.0; n * m];
        let scale = 0.125;
        let tiled_s = best_secs(reps, || {
            for _ in 0..iters {
                kernels::matmul_nt_tiled(&a, &b, &mut out, n, k, m, scale);
            }
        });
        let ref_s = best_secs(reps, || {
            for _ in 0..iters {
                kernels::reference_matmul_nt(&a, &b, &mut out, n, k, m, scale);
            }
        });
        results.push(ShapeResult {
            name: "attention",
            n,
            k,
            m,
            tiled_gflops: gflops(shape, iters, tiled_s),
            reference_gflops: gflops(shape, iters, ref_s),
        });
    }

    // Grad shape: the tape backward's a^T @ g on the training activations.
    {
        let shape = (1280usize, 64usize, 64usize);
        let (n, k, m) = shape;
        let iters = 4;
        let a = filled(&mut rng, n * k);
        let g = filled(&mut rng, n * m);
        let mut out = vec![0.0; k * m];
        let tiled_s = best_secs(reps, || {
            for _ in 0..iters {
                kernels::matmul_tn_tiled(&a, k, &g, &mut out, n, k, m);
            }
        });
        let ref_s = best_secs(reps, || {
            for _ in 0..iters {
                out.fill(0.0);
                kernels::reference_matmul_tn(&a, k, &g, &mut out, n, k, m);
            }
        });
        results.push(ShapeResult {
            name: "grad",
            n,
            k,
            m,
            tiled_gflops: gflops(shape, iters, tiled_s),
            reference_gflops: gflops(shape, iters, ref_s),
        });
    }

    // Serving shape: a cross-stream batched forward's stacked rows through
    // a small projection — far below the packing and parallel cutoffs.
    {
        let shape = (96usize, 10usize, 24usize);
        let (n, k, m) = shape;
        let iters = 512;
        let a = filled(&mut rng, n * k);
        let b = filled(&mut rng, k * m);
        let mut out = vec![0.0; n * m];
        let tiled_s = best_secs(reps, || {
            for _ in 0..iters {
                kernels::matmul_tiled_direct(&a, &b, &mut out, n, k, m, Epilogue::NONE);
            }
        });
        let ref_s = best_secs(reps, || {
            for _ in 0..iters {
                out.fill(0.0);
                kernels::reference_matmul(&a, &b, &mut out, n, k, m);
            }
        });
        results.push(ShapeResult {
            name: "serve",
            n,
            k,
            m,
            tiled_gflops: gflops(shape, iters, tiled_s),
            reference_gflops: gflops(shape, iters, ref_s),
        });
    }

    for r in &results {
        println!(
            "{:<9} [{:>4} x {:>2} x {:>3}]: tiled {:6.2} GFLOP/s, reference {:6.2} GFLOP/s ({:.2}x)",
            r.name,
            r.n,
            r.k,
            r.m,
            r.tiled_gflops,
            r.reference_gflops,
            r.speedup()
        );
    }

    let shapes_json = results
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{ \"n\": {}, \"k\": {}, \"m\": {}, \"tiled_gflops\": {:.2}, \"reference_gflops\": {:.2}, \"speedup\": {:.2} }}",
                r.name, r.n, r.k, r.m, r.tiled_gflops, r.reference_gflops, r.speedup()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    if let Some(path) = &out_path {
        let json = format!(
            "{{\n  \"comment\": \"Single-core matmul kernel throughput, packed/register-tiled vs the retained reference kernels, from `bench-kernels` (best of {reps} runs per shape). train/serve are NN products (train includes per-call panel packing), attention is the nt scores kernel, grad the tn grad-matmul kernel.\",\n  \"shapes\": {{\n{shapes_json}\n  }}\n}}\n"
        );
        std::fs::write(path, json).expect("write --out file");
        println!("wrote {path}");
    }

    if let Some(path) = &bench_out {
        let infer_batch = headline(
            "results/infer_throughput.json",
            &["batch", "tape_free_windows_per_s"],
        );
        let infer_online = headline(
            "results/infer_throughput.json",
            &["online", "tape_free_pushes_per_s"],
        );
        let serve_batched = headline("results/serve_throughput.json", &["batched", "points_per_s"]);
        let serve_speedup = headline("results/serve_throughput.json", &["speedup"]);
        let fmt = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.2}"));
        let json = format!(
            "{{\n  \"comment\": \"Machine-readable perf trajectory snapshot from `bench-kernels --bench-out`: kernel GFLOP/s (tiled vs reference) plus the current end-to-end headline numbers copied from results/infer_throughput.json and results/serve_throughput.json. Future PRs diff against this file.\",\n  \"kernels\": {{\n{shapes_json}\n  }},\n  \"headline\": {{\n    \"infer_batch_windows_per_s\": {},\n    \"infer_online_pushes_per_s\": {},\n    \"serve_batched_points_per_s\": {},\n    \"serve_batched_speedup\": {}\n  }}\n}}\n",
            fmt(infer_batch),
            fmt(infer_online),
            fmt(serve_batched),
            fmt(serve_speedup),
        );
        std::fs::write(path, json).expect("write --bench-out file");
        println!("wrote {path}");
    }

    if let Some(min) = min_speedup {
        let train = results.iter().find(|r| r.name == "train").expect("train shape present");
        assert!(
            train.speedup() >= min,
            "tiled kernel too slow on the training shape: {:.2}x < required {min:.2}x",
            train.speedup()
        );
        println!("kernel gate OK: train speedup {:.2}x >= {min:.2}x", train.speedup());
    }
}

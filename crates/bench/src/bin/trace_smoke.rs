//! Trace smoke test for CI: runs a tiny train + detect + serve with
//! whatever recorder `TRANAD_TRACE` configures, then (when the variable is
//! set) re-reads the trace file and proves every line is well-formed JSONL
//! with the expected core events.
//!
//! Run with: `TRANAD_TRACE=/tmp/trace.jsonl cargo run --release -p
//! tranad-bench --bin trace-smoke`. Without `TRANAD_TRACE` it still runs
//! the pipeline (exercising the disabled-recorder path) and prints a note.

use tranad::{train, PotConfig, TranadConfig};
use tranad_data::{generate, DatasetKind, GenConfig};

fn main() {
    let rec = tranad_telemetry::global();
    let gen = GenConfig { scale: 0.001, min_len: 400, seed: 23 };
    let ds = generate(DatasetKind::Ucr, gen);
    let config = TranadConfig::builder()
        .epochs(2)
        .window(6)
        .context(12)
        .ff_hidden(8)
        .build()
        .expect("valid config");
    let (trained, report) = train(&ds.train, config).expect("training");
    let detection = trained.detect(&ds.test, PotConfig::default()).expect("detection");

    // Exercise both serving paths so serve.* events, the batched
    // serve.batch_forward span, and the per-stream reference path's
    // infer.forward spans all land in the same smoke trace.
    let serve_config = tranad_serve::EngineConfig::builder()
        .batch_max(16) // one per-stream call leaves points for the batched drain
        .build()
        .expect("serve config");
    let mut engine = tranad_serve::Engine::new(trained, serve_config).expect("serve engine");
    for t in 0..ds.test.len().min(64) {
        engine.push("smoke", ds.test.row(t)).expect("serve push");
    }
    let reference = engine.run_batch_per_stream().expect("per-stream batch");
    let mut served = engine.drain().expect("serve drain");
    for sv in reference.verdicts {
        let name = engine.stream_name(sv.stream).expect("own stream").to_string();
        let tail = served.entry(name).or_default();
        tail.splice(0..0, sv.verdicts);
    }

    rec.flush_metrics();
    rec.flush();
    println!(
        "trained {} epochs, {} test points, {} flagged, {} served",
        report.epochs_run,
        detection.labels.len(),
        detection.labels.iter().filter(|&&b| b).count(),
        served.get("smoke").map_or(0, |v| v.len())
    );

    let Ok(path) = std::env::var(tranad_telemetry::TRACE_ENV) else {
        println!("{} unset; ran with telemetry disabled", tranad_telemetry::TRACE_ENV);
        return;
    };
    assert!(rec.enabled(), "{} is set but the recorder is disabled", tranad_telemetry::TRACE_ENV);
    let text = std::fs::read_to_string(&path).expect("read trace file");
    let mut seen = std::collections::BTreeMap::<String, usize>::new();
    for (lineno, line) in text.lines().enumerate() {
        let v = tranad_json::parse(line)
            .unwrap_or_else(|e| panic!("trace line {} is malformed: {e:?}", lineno + 1));
        let name = v
            .get("event")
            .and_then(|e| e.as_str())
            .unwrap_or_else(|| panic!("trace line {} lacks an event name", lineno + 1));
        *seen.entry(name.to_string()).or_insert(0) += 1;
    }

    // Every event family the train+detect pipeline must produce. A missing
    // family means instrumentation silently fell out of a code path, so the
    // smoke test names exactly what disappeared and fails the build.
    const EXPECTED: &[&str] = &[
        "train.epoch",
        "train.done",
        "detect.score",
        "pot.dim",
        "serve.batch",
        "metric.gauge",
        "span",
        "pool.buffers",
        "pool.threads",
        "metric.counter",
        "metric.histogram",
    ];
    let missing: Vec<&str> = EXPECTED
        .iter()
        .filter(|name| !seen.contains_key(**name))
        .copied()
        .collect();
    if !missing.is_empty() {
        eprintln!("trace at {path} is missing expected event families:");
        for name in &missing {
            eprintln!("  - {name}");
        }
        eprintln!("families present: {:?}", seen.keys().collect::<Vec<_>>());
        std::process::exit(1);
    }
    let epochs = seen.get("train.epoch").copied().unwrap_or(0);
    assert_eq!(epochs, 2, "expected one train.epoch event per epoch");
    let events: usize = seen.values().sum();
    let spans = seen.get("span").copied().unwrap_or(0);
    println!(
        "trace OK: {events} well-formed events across {} families ({spans} spans) in {path}",
        seen.len()
    );
}

//! Cross-stream batched vs per-stream serving throughput.
//!
//! Serves the same 32 deterministic streams through both engine paths —
//! [`Engine::run_batch_per_stream`] (one batch-1 forward per point, the
//! pre-batching design and today's reference implementation) and
//! [`Engine::run_batch`] (one stacked forward per cross-stream round) —
//! and reports points/sec for each. On a single core the win is pure
//! amortization: every per-op overhead (shape checks, pool dispatch,
//! workspace staging) is paid once per 32-row round instead of 32 times.
//!
//! A third engine runs the batched path with a live `tranad-obs` exporter
//! attached and a scraper thread hitting its `/metrics` endpoint every
//! millisecond mid-run — the "observed in production" configuration. Its
//! throughput is compared against the unobserved batched engine from the
//! same run (interleaved reps, so clock drift cancels), which keeps the
//! exporter-overhead gate meaningful across machines.
//!
//! With `--out <path>` the comparison is recorded as JSON (the committed
//! copy lives at `results/serve_throughput.json`); with `--min-speedup
//! <x>` the run fails (exit 1) if batched serving is not at least `x`
//! times the per-stream throughput — scripts/verify.sh gates at 1.5x.
//! With `--max-obs-overhead <frac>` the run fails if the exporter-attached
//! engine's throughput falls more than that fraction below the unobserved
//! batched engine — scripts/verify.sh gates at 0.05 (5%).
//!
//! Usage: `cargo run --release -p tranad-bench --bin bench-serve [-- --out results/serve_throughput.json --min-speedup 1.5 --max-obs-overhead 0.05]`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tranad::config::TranadConfig;
use tranad::train::{train, TrainedTranad};
use tranad_data::{SignalRng, TimeSeries};
use tranad_obs::Exporter;
use tranad_serve::{BatchReport, Engine, EngineConfig, ServeError, StreamId};

const DIMS: usize = 4;
const STREAMS: usize = 32;
const POINTS_PER_STREAM: usize = 64;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| ((t as f64) / (10.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

/// The `t`-th point of stream `s`: a pure function of its coordinates.
fn point(s: usize, t: usize, dst: &mut [f64]) {
    for (d, v) in dst.iter_mut().enumerate() {
        let x = t as f64 + s as f64 * 0.37;
        *v = (x / (10.0 + d as f64)).sin()
            + 0.05 * (((x * 12.9898 + d as f64 * 78.233).sin() * 43758.5453).fract() - 0.5);
    }
}

/// Builds a fresh engine over `STREAMS` interned streams.
fn build_engine(model_path: &std::path::Path) -> (Engine, Vec<StreamId>) {
    let trained = TrainedTranad::load(model_path).expect("load model");
    let config = EngineConfig::builder()
        .max_queue(POINTS_PER_STREAM)
        .batch_max(POINTS_PER_STREAM)
        .build()
        .expect("valid serve config");
    let mut engine = Engine::new(trained, config).expect("engine");
    let ids = (0..STREAMS)
        .map(|s| engine.stream_id(&format!("stream-{s:02}")).expect("stream id"))
        .collect();
    (engine, ids)
}

/// One measured cycle: push `POINTS_PER_STREAM` points into every stream,
/// then drain them all through `run`. Returns the points scored.
fn cycle(
    engine: &mut Engine,
    ids: &[StreamId],
    epoch: usize,
    run: impl Fn(&mut Engine) -> Result<BatchReport, ServeError>,
) -> usize {
    let mut row = [0.0; DIMS];
    for t in 0..POINTS_PER_STREAM {
        for (s, &id) in ids.iter().enumerate() {
            point(s, epoch * POINTS_PER_STREAM + t, &mut row);
            assert!(
                matches!(
                    engine.push_id(id, &row).expect("push"),
                    tranad_serve::PushOutcome::Enqueued { .. }
                ),
                "bench must not shed"
            );
        }
    }
    let mut scored = 0;
    loop {
        let report = run(engine).expect("batch");
        if report.processed == 0 {
            return scored;
        }
        scored += report.processed;
    }
}

/// One timed cycle (after an untimed warm-up elsewhere); asserts no
/// points were lost and returns seconds.
fn timed_cycle(
    engine: &mut Engine,
    ids: &[StreamId],
    epoch: usize,
    run: impl Fn(&mut Engine) -> Result<BatchReport, ServeError>,
) -> f64 {
    let start = Instant::now();
    let scored = cycle(engine, ids, epoch, &run);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(scored, STREAMS * POINTS_PER_STREAM, "measured cycle lost points");
    secs
}

/// Scrapes `/metrics` in a loop every ~1ms until told to stop — the
/// adversarial-but-realistic load the exporter-overhead gate measures
/// under. Each scrape is a full connect / request / read cycle.
fn spawn_scraper(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut scrapes = 0u64;
        let mut buf = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            if let Ok(mut conn) = TcpStream::connect(addr) {
                let _ = conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                buf.clear();
                if conn.read_to_end(&mut buf).is_ok() && !buf.is_empty() {
                    scrapes += 1;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        scrapes
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        })
    };
    let parse_f64 = |name: &'static str| {
        flag(name).map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("{name} requires a number, got {v:?}");
                std::process::exit(2);
            })
        })
    };
    let out_path = flag("--out");
    let min_speedup = parse_f64("--min-speedup");
    let max_obs_overhead = parse_f64("--max-obs-overhead");

    let train_series = toy_series(800, DIMS, 1);
    // A lean low-latency serving model (the paper's defaults are sized for
    // offline scoring; streaming deployments trade window/ff size for
    // latency). The smaller the per-row compute, the more the fixed per-op
    // overhead matters — exactly the regime cross-stream batching targets.
    let config = TranadConfig {
        epochs: 3,
        patience: 10,
        window: 3,
        context: 6,
        ff_hidden: 8,
        ..TranadConfig::default()
    };
    let (trained, _) = train(&train_series, config).expect("training");
    let model_path = std::env::temp_dir()
        .join(format!("tranad_bench_serve_model_{}.json", std::process::id()));
    trained.save(&model_path).expect("save model");

    let reps = 7;
    // TrainedTranad is not Clone: each path serves its own load of the
    // same saved model (identical parameters bit for bit). Cycles are
    // interleaved — per-stream then batched, rep by rep — so clock-speed
    // drift over the run hits both paths alike; best-of-`reps` each.
    let (mut ref_engine, ref_ids) = build_engine(&model_path);
    let (mut bat_engine, bat_ids) = build_engine(&model_path);
    let (mut obs_engine, obs_ids) = build_engine(&model_path);
    std::fs::remove_file(&model_path).ok();

    // The observed engine serves a live exporter that a scraper thread
    // hammers for the whole measurement window.
    let exporter = Exporter::bind(
        "127.0.0.1:0",
        tranad_telemetry::global().clone(),
        Some(obs_engine.obs()),
    )
    .expect("bind exporter");
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = spawn_scraper(exporter.addr(), stop.clone());

    let expected = STREAMS * POINTS_PER_STREAM;
    let warm = cycle(&mut ref_engine, &ref_ids, 0, Engine::run_batch_per_stream);
    assert_eq!(warm, expected, "warm-up lost points");
    let warm = cycle(&mut bat_engine, &bat_ids, 0, Engine::run_batch);
    assert_eq!(warm, expected, "warm-up lost points");
    let warm = cycle(&mut obs_engine, &obs_ids, 0, Engine::run_batch);
    assert_eq!(warm, expected, "warm-up lost points");
    let mut per_stream_s = f64::INFINITY;
    let mut batched_s = f64::INFINITY;
    let mut obs_s = f64::INFINITY;
    for rep in 0..reps {
        per_stream_s = per_stream_s
            .min(timed_cycle(&mut ref_engine, &ref_ids, rep + 1, Engine::run_batch_per_stream));
        batched_s =
            batched_s.min(timed_cycle(&mut bat_engine, &bat_ids, rep + 1, Engine::run_batch));
        obs_s = obs_s.min(timed_cycle(&mut obs_engine, &obs_ids, rep + 1, Engine::run_batch));
    }
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    exporter.shutdown();
    assert!(scrapes > 0, "the scraper never completed a scrape — the overhead number is vacuous");

    let points = expected as f64;
    let per_stream_pps = points / per_stream_s;
    let batched_pps = points / batched_s;
    let obs_pps = points / obs_s;
    let speedup = batched_pps / per_stream_pps;
    let overhead = 1.0 - obs_pps / batched_pps;
    println!(
        "per-stream: {per_stream_pps:.0} points/s ({:.1} us/point)",
        1e6 * per_stream_s / points
    );
    println!(
        "batched:    {batched_pps:.0} points/s ({:.1} us/point) — {speedup:.2}x",
        1e6 * batched_s / points
    );
    println!(
        "observed:   {obs_pps:.0} points/s ({:.1} us/point) — {:.1}% exporter overhead, {scrapes} scrapes",
        1e6 * obs_s / points,
        100.0 * overhead,
    );

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"comment\": \"Serving throughput, per-stream batch-1 forwards vs cross-stream batched forwards, from `bench-serve` (best of {reps} cycles; {STREAMS} streams x {POINTS_PER_STREAM} points, {DIMS} dims, single engine thread). Both paths produce bitwise-identical verdicts (tests/batch_parity.rs). `batched_with_exporter` is the batched path with a live tranad-obs exporter attached and /metrics scraped every ~1ms; `exporter_overhead` is its fractional throughput loss vs the unobserved batched engine in the same run.\",\n  \"streams\": {STREAMS},\n  \"points_per_stream\": {POINTS_PER_STREAM},\n  \"per_stream\": {{ \"points_per_s\": {per_stream_pps:.0}, \"us_per_point\": {:.1} }},\n  \"batched\": {{ \"points_per_s\": {batched_pps:.0}, \"us_per_point\": {:.1} }},\n  \"batched_with_exporter\": {{ \"points_per_s\": {obs_pps:.0}, \"us_per_point\": {:.1}, \"scrapes\": {scrapes} }},\n  \"speedup\": {speedup:.2},\n  \"exporter_overhead\": {overhead:.3}\n}}\n",
            1e6 * per_stream_s / points,
            1e6 * batched_s / points,
            1e6 * obs_s / points,
        );
        std::fs::write(&path, json).expect("write --out file");
        println!("wrote {path}");
    }
    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!("FAIL: batched serving speedup {speedup:.2}x is below the {min:.2}x gate");
            std::process::exit(1);
        }
        println!("speedup gate OK ({speedup:.2}x >= {min:.2}x)");
    }
    if let Some(max) = max_obs_overhead {
        if overhead > max {
            eprintln!(
                "FAIL: exporter overhead {:.1}% exceeds the {:.1}% gate",
                100.0 * overhead,
                100.0 * max
            );
            std::process::exit(1);
        }
        println!("exporter overhead gate OK ({:.1}% <= {:.1}%)", 100.0 * overhead, 100.0 * max);
    }
}

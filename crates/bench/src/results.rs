//! Result persistence: each table/figure run writes its rows as JSON under
//! `target/results/`, so later figures (e.g. the Figure 4 critical
//! difference diagram) can reuse Table 2's numbers, and EXPERIMENTS.md can
//! be regenerated from disk.

use crate::runner::RunResult;
use std::fs;
use tranad_json::{FromJson, ToJson};
use std::path::PathBuf;

/// Directory for persisted results (workspace-relative).
pub fn results_dir() -> PathBuf {
    PathBuf::from("target/results")
}

/// Writes `rows` to `target/results/<name>.json` (pretty-printed).
pub fn save<T: ToJson>(name: &str, rows: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, rows.to_json().to_string_pretty())?;
    Ok(path)
}

/// Loads previously saved rows, or `None` if the file is absent or stale
/// (unparsable, or written by an incompatible schema).
pub fn load<T: FromJson>(name: &str) -> Option<T> {
    let path = results_dir().join(format!("{name}.json"));
    let text = fs::read_to_string(path).ok()?;
    T::from_json(&tranad_json::parse(&text).ok()?).ok()
}

/// Merges freshly computed rows into the cached rows for `name`: new rows
/// replace cached rows with the same (method, dataset) key, so partial
/// reruns (e.g. `--dataset SMAP`) update the cache incrementally.
pub fn merge_and_save(name: &str, fresh: &[RunResult]) -> Vec<RunResult> {
    let mut merged: Vec<RunResult> = load(name).unwrap_or_default();
    for row in fresh {
        if let Some(existing) = merged
            .iter_mut()
            .find(|r| r.method == row.method && r.dataset == row.dataset)
        {
            *existing = row.clone();
        } else {
            merged.push(row.clone());
        }
    }
    let _ = save(name, &merged);
    merged
}

/// Groups flat results into a `[dataset][method]` score matrix for the
/// ranking analyses. Returns `(dataset_names, method_names, matrix)` where
/// `matrix[d][m]` is the metric picked by `metric`.
pub fn score_matrix(
    rows: &[RunResult],
    metric: impl Fn(&RunResult) -> f64,
) -> (Vec<String>, Vec<String>, Vec<Vec<f64>>) {
    let mut datasets: Vec<String> = Vec::new();
    let mut methods: Vec<String> = Vec::new();
    for r in rows {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
        if !methods.contains(&r.method) {
            methods.push(r.method.clone());
        }
    }
    let mut matrix = vec![vec![f64::NAN; methods.len()]; datasets.len()];
    for r in rows {
        let d = datasets.iter().position(|x| x == &r.dataset).expect("known dataset");
        let m = methods.iter().position(|x| x == &r.method).expect("known method");
        matrix[d][m] = metric(r);
    }
    (datasets, methods, matrix)
}

/// Renders a fixed-width text table.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Formats a metric to the paper's 4-decimal convention.
pub fn fmt4(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.4}")
    }
}

/// Writes figure series as CSV under `target/figures/`.
pub fn save_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(method: &str, dataset: &str, f1: f64) -> RunResult {
        RunResult {
            method: method.into(),
            dataset: dataset.into(),
            precision: 0.0,
            recall: 0.0,
            auc: 0.5,
            f1,
            secs_per_epoch: 1.0,
            error: String::new(),
        }
    }

    #[test]
    fn score_matrix_layout() {
        let rows = vec![
            result("A", "ds1", 0.9),
            result("B", "ds1", 0.5),
            result("A", "ds2", 0.8),
            result("B", "ds2", 0.6),
        ];
        let (ds, ms, m) = score_matrix(&rows, |r| r.f1);
        assert_eq!(ds, vec!["ds1", "ds2"]);
        assert_eq!(ms, vec!["A", "B"]);
        assert_eq!(m[0], vec![0.9, 0.5]);
        assert_eq!(m[1], vec![0.8, 0.6]);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["Method".into(), "F1".into()],
            &[vec!["TranAD".into(), "0.9605".into()]],
        );
        assert!(t.contains("Method"));
        assert!(t.contains("TranAD"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn fmt4_handles_nan() {
        assert_eq!(fmt4(f64::NAN), "-");
        assert_eq!(fmt4(0.12341), "0.1234");
    }
}

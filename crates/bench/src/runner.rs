//! Shared experiment runner: fits a detector on a dataset, applies the
//! paper's POT decision procedure, and computes the Table 2/3 metrics.

use tranad::{detect_aggregate_with, DetectorError, TranadConfig};
use tranad_baselines::{aggregate_scores, Detector, NeuralConfig};
use tranad_data::{limited_data_subsets, Dataset, DatasetKind, GenConfig, TimeSeries};
use tranad_evt::PotConfig;
use tranad_metrics::{evaluate, point_adjust, Confusion};
use tranad_telemetry::Recorder;

/// One (method, dataset) evaluation outcome.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Point-adjusted precision.
    pub precision: f64,
    /// Point-adjusted recall.
    pub recall: f64,
    /// ROC-AUC of the aggregate score.
    pub auc: f64,
    /// Point-adjusted F1.
    pub f1: f64,
    /// Mean training seconds per epoch.
    pub secs_per_epoch: f64,
    /// Why the cell failed (empty for a successful run). Failed cells
    /// carry NaN metrics so downstream tables render them as "-".
    pub error: String,
}

impl RunResult {
    /// A failed grid cell: NaN metrics plus the error message, so one bad
    /// (method, dataset) combination no longer aborts the whole grid.
    pub fn failed(method: &str, dataset: &str, err: &DetectorError) -> RunResult {
        RunResult {
            method: method.to_string(),
            dataset: dataset.to_string(),
            precision: f64::NAN,
            recall: f64::NAN,
            auc: f64::NAN,
            f1: f64::NAN,
            secs_per_epoch: f64::NAN,
            error: err.to_string(),
        }
    }

    /// True when the cell ran to completion.
    pub fn is_ok(&self) -> bool {
        self.error.is_empty()
    }
}

tranad_json::impl_json_struct!(RunResult {
    method,
    dataset,
    precision,
    recall,
    auc,
    f1,
    secs_per_epoch,
    error,
});

/// The harness-wide experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Dataset generation (scale, seed).
    pub gen: GenConfig,
    /// Neural baseline hyperparameters.
    pub neural: NeuralConfig,
    /// TranAD hyperparameters.
    pub tranad: TranadConfig,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            gen: GenConfig { scale: 0.0015, min_len: 500, seed: 42 },
            neural: NeuralConfig {
                epochs: 4,
                max_windows: 1024,
                ..NeuralConfig::default()
            },
            tranad: TranadConfig {
                epochs: 5,
                context: 10,
                patience: 5,
                max_windows_per_epoch: 768,
                ..TranadConfig::default()
            },
        }
    }
}

impl HarnessConfig {
    /// A fast smoke-test profile.
    pub fn quick() -> Self {
        let mut c = HarnessConfig {
            gen: GenConfig { scale: 0.001, min_len: 300, seed: 42 },
            ..HarnessConfig::default()
        };
        c.neural.epochs = 2;
        c.tranad.epochs = 2;
        c
    }

    /// Starts a validating builder from the defaults.
    pub fn builder() -> HarnessConfigBuilder {
        HarnessConfigBuilder { config: HarnessConfig::default() }
    }

    /// Checks the nested method configurations.
    pub fn validate(&self) -> Result<(), DetectorError> {
        self.neural.validate()?;
        self.tranad.validate()
    }
}

/// Validating builder for [`HarnessConfig`]; `build` rejects out-of-range
/// nested configurations with [`DetectorError::InvalidConfig`].
#[derive(Debug, Clone)]
pub struct HarnessConfigBuilder {
    config: HarnessConfig,
}

impl HarnessConfigBuilder {
    /// Dataset generation (scale, seed).
    pub fn gen(mut self, gen: GenConfig) -> Self {
        self.config.gen = gen;
        self
    }

    /// Neural baseline hyperparameters.
    pub fn neural(mut self, neural: NeuralConfig) -> Self {
        self.config.neural = neural;
        self
    }

    /// TranAD hyperparameters.
    pub fn tranad(mut self, tranad: TranadConfig) -> Self {
        self.config.tranad = tranad;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<HarnessConfig, DetectorError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Fits `det` on the dataset's training series, scores the test series,
/// thresholds with the paper's POT settings (falling back to a method's
/// native labeling if it has one), point-adjusts, and summarizes.
pub fn evaluate_method(det: &mut dyn Detector, ds: &Dataset) -> Result<RunResult, DetectorError> {
    evaluate_method_with(det, ds, &Recorder::disabled())
}

/// [`evaluate_method`] tracing `fit` progress to `rec`.
pub fn evaluate_method_with(
    det: &mut dyn Detector,
    ds: &Dataset,
    rec: &Recorder,
) -> Result<RunResult, DetectorError> {
    let fit = det.fit(&ds.train, rec)?;
    evaluate_fitted_with(det, ds, fit.seconds_per_epoch, rec)
}

/// Evaluates an already-fitted detector.
///
/// Scores are exponentially smoothed before thresholding (and scoring the
/// AUC), standard practice in the TSAD evaluation lineage: isolated
/// single-step reconstruction misses in the calibration data otherwise
/// dominate the tail fit, while genuine anomaly segments (tens of points)
/// survive smoothing untouched.
pub fn evaluate_fitted(
    det: &dyn Detector,
    ds: &Dataset,
    secs_per_epoch: f64,
) -> Result<RunResult, DetectorError> {
    evaluate_fitted_with(det, ds, secs_per_epoch, &Recorder::disabled())
}

/// [`evaluate_fitted`] tracing the POT decision procedure to `rec`.
pub fn evaluate_fitted_with(
    det: &dyn Detector,
    ds: &Dataset,
    secs_per_epoch: f64,
    rec: &Recorder,
) -> Result<RunResult, DetectorError> {
    let truth = ds.point_labels();
    let width = smoothing_width(ds.kind);
    let test_scores = smooth(det.score(&ds.test)?, width);
    let aggregate = aggregate_scores(&test_scores)?;
    let labels = match det.native_labels(&ds.test) {
        Some(native) => native,
        None => detect_aggregate_with(
            &smooth(det.train_scores()?.to_vec(), width),
            &test_scores,
            pot_config(ds),
            rec,
        )?,
    };
    let m = evaluate(&aggregate, &labels, &truth);
    Ok(RunResult {
        method: det.name().to_string(),
        dataset: ds.kind.name().to_string(),
        precision: m.precision,
        recall: m.recall,
        auc: m.auc,
        f1: m.f1,
        secs_per_epoch,
        error: String::new(),
    })
}

/// Score-smoothing width per dataset: datasets whose anomalies are single
/// points (NAB's sensor spikes) must not be smeared; segment-anomaly
/// datasets benefit from taming isolated calibration-tail spikes.
pub fn smoothing_width(kind: DatasetKind) -> usize {
    match kind {
        DatasetKind::Nab => 1,
        _ => 3,
    }
}

/// Smooths per-dimension score columns with a centered moving average of
/// the given (odd) width — wide enough to tame isolated single-step
/// reconstruction misses in the calibration tail, narrow enough not to
/// smear anomaly segments into their neighborhoods. Width 1 is a no-op.
pub fn smooth(scores: Vec<Vec<f64>>, width: usize) -> Vec<Vec<f64>> {
    let half = width / 2;
    if half == 0 || scores.len() < width || scores[0].is_empty() {
        return scores;
    }
    let n = scores.len();
    let m = scores[0].len();
    let mut out = scores.clone();
    for d in 0..m {
        for (t, row) in out.iter_mut().enumerate() {
            let lo = t.saturating_sub(half);
            let hi = (t + half).min(n - 1);
            let sum: f64 = (lo..=hi).map(|i| scores[i][d]).sum();
            row[d] = sum / (hi - lo + 1) as f64;
        }
    }
    out
}

/// POT low quantile per dataset. The paper's values (§4) are tuned to the
/// real benchmark sizes; on the scaled synthetic data we widen the tail
/// slightly so the GPD fit has enough exceedances, keeping the paper's
/// ordering (SMAP loosest, MSL middle, rest tight).
pub fn pot_level(kind: DatasetKind) -> f64 {
    (kind.pot_low_quantile() * 10.0).clamp(0.05, 0.2)
}

/// The POT configuration for a dataset: risk `q = 1e-3` (one order looser
/// than the paper's `1e-4` to reflect the ~100× shorter scaled test sets —
/// the expected alarm budget `q·N` stays comparable) with the paper's
/// per-dataset low quantile.
pub fn pot_config(ds: &Dataset) -> PotConfig {
    // ECG-like scores (UCR, MBA) have the heaviest calibration tails and
    // need the loosest risk, mirroring the paper's per-dataset EVT tuning.
    let q = match ds.kind {
        DatasetKind::Mba | DatasetKind::Ucr => 1e-2,
        _ => 1e-3,
    };
    PotConfig { q, level: pot_level(ds.kind) }
}

/// Table 3: trains on five random 20 % subsets and averages F1/AUC.
pub fn evaluate_limited(
    make_detector: &mut dyn FnMut() -> Box<dyn Detector>,
    ds: &Dataset,
    fraction: f64,
) -> Result<RunResult, DetectorError> {
    let subsets = limited_data_subsets(&ds.train, fraction, ds.kind as u64 + 1);
    let mut acc: Option<RunResult> = None;
    let n = subsets.len() as f64;
    for subset in &subsets {
        let mut det = make_detector();
        let r = run_on_subset(det.as_mut(), ds, subset)?;
        acc = Some(match acc {
            None => r,
            Some(mut a) => {
                a.precision += r.precision;
                a.recall += r.recall;
                a.auc += r.auc;
                a.f1 += r.f1;
                a.secs_per_epoch += r.secs_per_epoch;
                a
            }
        });
    }
    let mut out = acc.ok_or(DetectorError::EmptySeries)?;
    out.precision /= n;
    out.recall /= n;
    out.auc /= n;
    out.f1 /= n;
    out.secs_per_epoch /= n;
    Ok(out)
}

/// Fits on an arbitrary training subset, evaluates on the full test set.
pub fn run_on_subset(
    det: &mut dyn Detector,
    ds: &Dataset,
    train: &TimeSeries,
) -> Result<RunResult, DetectorError> {
    let fit = det.fit(train, &Recorder::disabled())?;
    evaluate_fitted(det, ds, fit.seconds_per_epoch)
}

/// The Confusion matrix of a labeling after point adjustment (used by
/// tests and the MERLIN comparison table).
pub fn adjusted_confusion(pred: &[bool], truth: &[bool]) -> Confusion {
    Confusion::from_labels(&point_adjust(pred, truth), truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_baselines::{Merlin, MerlinConfig};
    use tranad_data::generate;

    #[test]
    fn merlin_on_tiny_nab() {
        let ds = generate(DatasetKind::Nab, GenConfig { scale: 0.001, min_len: 300, seed: 1 });
        let mut det = Merlin::new(MerlinConfig::optimized(8, 16));
        let r = evaluate_method(&mut det, &ds).unwrap();
        assert_eq!(r.method, "MERLIN");
        assert_eq!(r.dataset, "NAB");
        assert!(r.auc >= 0.0 && r.auc <= 1.0);
        assert!(r.f1 >= 0.0 && r.f1 <= 1.0);
        assert!(r.secs_per_epoch > 0.0);
    }

    #[test]
    fn failed_cell_records_error_and_round_trips_as_json() {
        use tranad_json::{FromJson, ToJson};
        // A series shorter than the window makes any neural fit fail.
        let tiny = TimeSeries::from_columns(&[vec![0.0; 3]]);
        let mut det = tranad_baselines::usad::Usad::new(NeuralConfig::fast());
        let err = det.fit(&tiny, &Recorder::disabled()).unwrap_err();
        let r = RunResult::failed("USAD", "SMD", &err);
        assert!(!r.is_ok());
        assert!(r.f1.is_nan() && r.auc.is_nan());
        let back =
            RunResult::from_json(&tranad_json::parse(&r.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.error, err.to_string());
        assert!(back.f1.is_nan(), "NaN must survive the results JSON");
    }

    #[test]
    fn pot_levels_preserve_paper_order() {
        assert!(pot_level(DatasetKind::Smap) > pot_level(DatasetKind::Msl));
        assert!(pot_level(DatasetKind::Msl) > pot_level(DatasetKind::Smd));
    }
}

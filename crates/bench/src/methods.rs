//! The method roster: every detector the paper's tables cover, buildable
//! fresh for each run (Table 3 retrains on five subsets).

use crate::runner::HarnessConfig;
use tranad::Ablation;
use tranad_baselines::{
    caem::CaeM, dagmm::Dagmm, gdn::Gdn, iforest::IForestConfig, iforest::IsolationForest,
    lstm_ndt::LstmNdt, madgan::MadGan, mscred::Mscred, mtad_gat::MtadGat, omni::OmniAnomaly,
    usad::Usad, Detector, Merlin, MerlinConfig, TranadDetector,
};

/// The Table 2 method roster (paper order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Discord discovery (classical baseline).
    Merlin,
    /// LSTM forecaster + NDT.
    LstmNdt,
    /// Autoencoder + GMM energy.
    Dagmm,
    /// GRU-VAE.
    OmniAnomaly,
    /// Signature-matrix autoencoder.
    Mscred,
    /// LSTM GAN.
    MadGan,
    /// Two-decoder adversarial AE.
    Usad,
    /// Graph attention + GRU forecaster.
    MtadGat,
    /// AE + bidirectional LSTM memory.
    CaeM,
    /// Graph deviation network.
    Gdn,
    /// The paper's contribution.
    Tranad,
    /// Extra baseline the paper tested and dropped.
    IsolationForest,
    /// Table 6 ablations.
    TranadAblation(Ablation),
}

impl Method {
    /// The Table 2 roster in paper order (Isolation Forest excluded, as in
    /// the paper).
    pub fn table2() -> Vec<Method> {
        vec![
            Method::Merlin,
            Method::LstmNdt,
            Method::Dagmm,
            Method::OmniAnomaly,
            Method::Mscred,
            Method::MadGan,
            Method::Usad,
            Method::MtadGat,
            Method::CaeM,
            Method::Gdn,
            Method::Tranad,
        ]
    }

    /// The Table 6 roster: TranAD plus its four ablations.
    pub fn table6() -> Vec<Method> {
        Ablation::all()
            .into_iter()
            .map(Method::TranadAblation)
            .collect()
    }

    /// Display name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Method::Merlin => "MERLIN",
            Method::LstmNdt => "LSTM-NDT",
            Method::Dagmm => "DAGMM",
            Method::OmniAnomaly => "OmniAnomaly",
            Method::Mscred => "MSCRED",
            Method::MadGan => "MAD-GAN",
            Method::Usad => "USAD",
            Method::MtadGat => "MTAD-GAT",
            Method::CaeM => "CAE-M",
            Method::Gdn => "GDN",
            Method::Tranad => "TranAD",
            Method::IsolationForest => "IsolationForest",
            Method::TranadAblation(a) => a.name(),
        }
    }

    /// Builds a fresh, unfitted detector for this method.
    pub fn build(self, cfg: &HarnessConfig) -> Box<dyn Detector> {
        let n = cfg.neural;
        match self {
            Method::Merlin => Box::new(Merlin::new(MerlinConfig::optimized(10, 40))),
            Method::LstmNdt => Box::new(LstmNdt::new(n)),
            Method::Dagmm => Box::new(Dagmm::new(n)),
            Method::OmniAnomaly => Box::new(OmniAnomaly::new(n)),
            Method::Mscred => Box::new(Mscred::new(n)),
            Method::MadGan => Box::new(MadGan::new(n)),
            Method::Usad => Box::new(Usad::new(n)),
            Method::MtadGat => Box::new(MtadGat::new(n)),
            Method::CaeM => Box::new(CaeM::new(n)),
            Method::Gdn => Box::new(Gdn::new(n)),
            Method::Tranad => Box::new(TranadDetector::new(cfg.tranad)),
            Method::IsolationForest => {
                Box::new(IsolationForest::new(IForestConfig { seed: n.seed, ..Default::default() }))
            }
            Method::TranadAblation(a) => Box::new(TranadDetector::ablation(a, cfg.tranad)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_roster() {
        let names: Vec<&str> = Method::table2().into_iter().map(Method::name).collect();
        assert_eq!(
            names,
            vec![
                "MERLIN", "LSTM-NDT", "DAGMM", "OmniAnomaly", "MSCRED", "MAD-GAN", "USAD",
                "MTAD-GAT", "CAE-M", "GDN", "TranAD"
            ]
        );
    }

    #[test]
    fn table6_has_five_rows() {
        let rows = Method::table6();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].name(), "TranAD");
    }

    #[test]
    fn all_methods_build() {
        let cfg = HarnessConfig::quick();
        for m in Method::table2() {
            let det = m.build(&cfg);
            assert_eq!(det.name(), m.name());
        }
    }
}

//! # tranad-bench
//!
//! The benchmark harness regenerating every table and figure of the TranAD
//! paper's evaluation. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured numbers.
//!
//! Binaries:
//! - `tables --table N [--scale S] [--dataset D]...` — Tables 1–7;
//! - `figures --figure N [--scale S]` — Figures 2–7 (CSV series + summary).

#[cfg(feature = "count-alloc")]
pub mod alloc_count;
pub mod figures;
pub mod methods;
pub mod results;
pub mod runner;
pub mod tables;
pub mod trace_report;

pub use methods::Method;
pub use runner::{evaluate_method, HarnessConfig, RunResult};

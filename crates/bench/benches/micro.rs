//! Criterion microbenchmarks for the substrate layers, including the
//! DESIGN.md ablation: tape-based autograd overhead vs. a hand-fused
//! forward pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tranad_baselines::{Merlin, MerlinConfig};
use tranad_baselines::detector::Detector;
use tranad_data::{generate, DatasetKind, GenConfig, SignalRng, TimeSeries, Windows};
use tranad_evt::{Pot, PotConfig};
use tranad_nn::attention::{causal_mask, scaled_dot_attention};
use tranad_nn::{Ctx, Init, ParamStore};
use tranad_tensor::{Tape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_fn([64, 64], |i| (i as f64 * 0.1).sin());
    let b = Tensor::from_fn([64, 64], |i| (i as f64 * 0.2).cos());
    c.bench_function("tensor/matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))))
    });
    let batched = Tensor::from_fn([32, 10, 64], |i| (i as f64 * 0.05).sin());
    c.bench_function("tensor/matmul_batched_32x10x64", |bench| {
        bench.iter(|| black_box(batched.matmul(black_box(&b))))
    });
}

fn bench_autograd_overhead(c: &mut Criterion) {
    // Ablation: the tape's bookkeeping cost vs. the raw fused computation.
    let x = Tensor::from_fn([32, 64], |i| (i as f64 * 0.01).sin());
    let w = Tensor::from_fn([64, 64], |i| (i as f64 * 0.02).cos());
    c.bench_function("autograd/fused_forward_only", |bench| {
        bench.iter(|| {
            let y = x.matmul(&w).map(|v| 1.0 / (1.0 + (-v).exp()));
            black_box(y.mean())
        })
    });
    c.bench_function("autograd/tape_forward", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            black_box(xv.matmul(&wv).sigmoid().mean_all().value().item())
        })
    });
    c.bench_function("autograd/tape_forward_backward", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            let loss = xv.matmul(&wv).sigmoid().mean_all();
            loss.backward();
            black_box(wv.grad().data()[0])
        })
    });
}

fn bench_attention(c: &mut Criterion) {
    let tape = Tape::new();
    let q = tape.leaf(Tensor::from_fn([16, 10, 32], |i| (i as f64 * 0.03).sin()));
    let mask = tape.leaf(causal_mask(10));
    c.bench_function("nn/causal_self_attention_16x10x32", |bench| {
        bench.iter(|| {
            black_box(scaled_dot_attention(&q, &q, &q, Some(&mask)).value())
        })
    });
}

fn bench_pot(c: &mut Criterion) {
    let mut rng = SignalRng::new(7);
    let scores: Vec<f64> = (0..20_000).map(|_| rng.normal().abs()).collect();
    c.bench_function("evt/pot_fit_20k", |bench| {
        bench.iter(|| black_box(Pot::fit(&scores, PotConfig { q: 1e-4, level: 0.02 })))
    });
}

fn bench_merlin(c: &mut Criterion) {
    let mut rng = SignalRng::new(8);
    let col: Vec<f64> = (0..600).map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal()).collect();
    let series = TimeSeries::from_columns(&[col]);
    c.bench_function("merlin/profile_600_early_abandon", |bench| {
        bench.iter(|| {
            let mut det = Merlin::new(MerlinConfig::optimized(8, 16));
            black_box(det.fit(black_box(&series)))
        })
    });
    c.bench_function("merlin/profile_600_exhaustive", |bench| {
        bench.iter(|| {
            let mut det = Merlin::new(MerlinConfig::reference(8, 16));
            black_box(det.fit(black_box(&series)))
        })
    });
}

fn bench_windows(c: &mut Criterion) {
    let ds = generate(DatasetKind::Smd, GenConfig { scale: 0.001, min_len: 500, seed: 1 });
    let windows = Windows::new(ds.train.clone(), 10);
    let idx: Vec<usize> = (0..128).collect();
    c.bench_function("data/window_batch_128x10", |bench| {
        bench.iter(|| black_box(windows.batch(black_box(&idx))))
    });
}

fn bench_tranad_step(c: &mut Criterion) {
    use tranad::{TranadConfig, TranadModel};
    let cfg = TranadConfig { dropout: 0.0, ..TranadConfig::default() };
    let mut store = ParamStore::new();
    let mut init = Init::with_seed(0);
    let model = TranadModel::new(&mut store, &mut init, 8, cfg);
    let w = Tensor::from_fn([32, cfg.window, 8], |i| ((i % 13) as f64) / 13.0);
    let cx = Tensor::from_fn([32, cfg.context, 8], |i| ((i % 11) as f64) / 11.0);
    c.bench_function("tranad/two_phase_forward_backward_b32_m8", |bench| {
        bench.iter(|| {
            let ctx = Ctx::train(&store, 0);
            let wv = ctx.input(w.clone());
            let cv = ctx.input(cx.clone());
            let out = model.forward(&ctx, &wv, &cv);
            let loss = out.o1.mse(&wv).add(&out.o2_hat.mse(&wv));
            loss.backward();
            black_box(ctx.grad_norm_sq())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul,
        bench_autograd_overhead,
        bench_attention,
        bench_pot,
        bench_merlin,
        bench_windows,
        bench_tranad_step
}
criterion_main!(benches);

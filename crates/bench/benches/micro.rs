//! Microbenchmarks for the substrate layers, including the DESIGN.md
//! ablation (tape-based autograd overhead vs. a hand-fused forward pass)
//! and the thread-pool matmul sizes.
//!
//! Hand-rolled harness (no `criterion` — the workspace builds with zero
//! external crates): each subject is warmed up, then timed over adaptively
//! chosen iteration counts, reporting the median per-iteration time.
//! Run with `cargo bench -p tranad-bench`; set `TRANAD_THREADS=1` to time
//! the serial baseline.

use std::hint::black_box;
use std::time::Instant;
use tranad_baselines::detector::Detector;
use tranad_baselines::{Merlin, MerlinConfig};
use tranad_data::{generate, DatasetKind, GenConfig, SignalRng, TimeSeries, Windows};
use tranad_evt::{Pot, PotConfig};
use tranad_nn::attention::{causal_mask, scaled_dot_attention};
use tranad_nn::{Ctx, Init, ParamStore};
use tranad_tensor::{pool, Tape, Tensor};

/// Times `f`, printing the median per-iteration wall-clock time.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up, and a first estimate of the per-call cost.
    let start = Instant::now();
    f();
    let first = start.elapsed().as_secs_f64().max(1e-9);
    // Aim each sample at ~50 ms, capped so a whole subject stays ~1 s.
    let iters = ((0.05 / first) as usize).clamp(1, 10_000);
    let samples = 7;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[samples / 2];
    let unit = if median >= 1.0 {
        format!("{median:.3} s")
    } else if median >= 1e-3 {
        format!("{:.3} ms", median * 1e3)
    } else {
        format!("{:.3} µs", median * 1e6)
    };
    println!("{name:<44} {unit:>12}  ({iters} iters/sample)");
}

fn bench_matmul() {
    let a = Tensor::from_fn([64, 64], |i| (i as f64 * 0.1).sin());
    let b = Tensor::from_fn([64, 64], |i| (i as f64 * 0.2).cos());
    bench("tensor/matmul_64x64", || {
        black_box(a.matmul(black_box(&b)));
    });
    let batched = Tensor::from_fn([32, 10, 64], |i| (i as f64 * 0.05).sin());
    bench("tensor/matmul_batched_32x10x64", || {
        black_box(batched.matmul(black_box(&b)));
    });
    // The thread-pool acceptance sizes: a large 2-D product and a batched
    // product with the same flop count, both far above MATMUL_CUTOFF.
    let big_a = Tensor::from_fn([256, 256], |i| (i as f64 * 0.01).sin());
    let big_b = Tensor::from_fn([256, 256], |i| (i as f64 * 0.02).cos());
    bench("tensor/matmul_256x256", || {
        black_box(big_a.matmul(black_box(&big_b)));
    });
    let big_batched = Tensor::from_fn([256, 256, 256], |i| ((i % 97) as f64) / 97.0);
    bench("tensor/matmul_batched_256x256x256", || {
        black_box(big_batched.matmul(black_box(&big_b)));
    });
}

fn bench_autograd_overhead() {
    // Ablation: the tape's bookkeeping cost vs. the raw fused computation.
    let x = Tensor::from_fn([32, 64], |i| (i as f64 * 0.01).sin());
    let w = Tensor::from_fn([64, 64], |i| (i as f64 * 0.02).cos());
    bench("autograd/fused_forward_only", || {
        let y = x.matmul(&w).map(|v| 1.0 / (1.0 + (-v).exp()));
        black_box(y.mean());
    });
    bench("autograd/tape_forward", || {
        let tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let wv = tape.leaf(w.clone());
        black_box(xv.matmul(&wv).sigmoid().mean_all().value().item());
    });
    bench("autograd/tape_forward_backward", || {
        let tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let wv = tape.leaf(w.clone());
        let loss = xv.matmul(&wv).sigmoid().mean_all();
        loss.backward();
        black_box(wv.grad().data()[0]);
    });
}

fn bench_attention() {
    let qt = Tensor::from_fn([16, 10, 32], |i| (i as f64 * 0.03).sin());
    let mask_t = causal_mask(10);
    // Fresh tape per iteration: a shared tape would accumulate every
    // iteration's nodes (and their tensors), so later samples would time
    // allocator growth instead of the attention forward.
    bench("nn/causal_self_attention_16x10x32", || {
        let tape = Tape::new();
        let q = tape.leaf(qt.clone());
        let mask = tape.leaf(mask_t.clone());
        black_box(scaled_dot_attention(&q, &q, &q, Some(&mask)).value());
    });
}

fn bench_pot() {
    let mut rng = SignalRng::new(7);
    let scores: Vec<f64> = (0..20_000).map(|_| rng.normal().abs()).collect();
    bench("evt/pot_fit_20k", || {
        black_box(Pot::fit(&scores, PotConfig { q: 1e-4, level: 0.02 }));
    });
}

fn bench_merlin() {
    let mut rng = SignalRng::new(8);
    let col: Vec<f64> =
        (0..600).map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal()).collect();
    let series = TimeSeries::from_columns(&[col]);
    bench("merlin/profile_600_early_abandon", || {
        let mut det = Merlin::new(MerlinConfig::optimized(8, 16));
        black_box(det.fit(black_box(&series), &tranad_telemetry::Recorder::disabled()).unwrap());
    });
    bench("merlin/profile_600_exhaustive", || {
        let mut det = Merlin::new(MerlinConfig::reference(8, 16));
        black_box(det.fit(black_box(&series), &tranad_telemetry::Recorder::disabled()).unwrap());
    });
}

fn bench_windows() {
    let ds = generate(DatasetKind::Smd, GenConfig { scale: 0.001, min_len: 500, seed: 1 });
    let windows = Windows::new(ds.train.clone(), 10);
    let idx: Vec<usize> = (0..128).collect();
    bench("data/window_batch_128x10", || {
        black_box(windows.batch(black_box(&idx)));
    });
}

fn bench_tranad_step() {
    use tranad::{TranadConfig, TranadModel};
    let cfg = TranadConfig { dropout: 0.0, ..TranadConfig::default() };
    let mut store = ParamStore::new();
    let mut init = Init::with_seed(0);
    let model = TranadModel::new(&mut store, &mut init, 8, cfg);
    let w = Tensor::from_fn([32, cfg.window, 8], |i| ((i % 13) as f64) / 13.0);
    let cx = Tensor::from_fn([32, cfg.context, 8], |i| ((i % 11) as f64) / 11.0);
    bench("tranad/two_phase_forward_backward_b32_m8", || {
        let ctx = Ctx::train(&store, 0);
        let wv = ctx.input(w.clone());
        let cv = ctx.input(cx.clone());
        let out = model.forward(&ctx, &wv, &cv);
        let loss = out.o1.mse(&wv).add(&out.o2_hat.mse(&wv));
        loss.backward();
        black_box(ctx.grad_norm_sq());
    });
}

fn main() {
    println!("threads: {}", pool::current_threads());
    bench_matmul();
    bench_autograd_overhead();
    bench_attention();
    bench_pot();
    bench_merlin();
    bench_windows();
    bench_tranad_step();
}

//! End-to-end trace-report coverage on a real recorded fixture: train a
//! tiny model through a faketime JSONL recorder, then check the per-op
//! table, the Chrome trace-event JSON and the flamegraph SVG produced from
//! that trace. Faketime makes the recorded durations (and therefore the
//! analysis) deterministic across machines.

use std::sync::Arc;

use tranad::{train_with, PotConfig, TranadConfig};
use tranad_bench::trace_report::{
    analyze, check_budget, parse_budget, parse_trace, render_table, to_chrome_trace,
    to_flamegraph_svg, Trace,
};
use tranad_json::Json;
use tranad_telemetry::{JsonlSink, Recorder};

fn recorded_fixture(tag: &str) -> Trace {
    let dir = std::env::temp_dir()
        .join(format!("tranad_trace_report_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fixture.jsonl");
    {
        let rec = Recorder::with_sink_faketime(Arc::new(JsonlSink::create(&path).unwrap()));
        let gen = tranad_data::GenConfig { scale: 0.001, min_len: 300, seed: 29 };
        let ds = tranad_data::generate(tranad_data::DatasetKind::Ucr, gen);
        let config = TranadConfig::builder()
            .epochs(2)
            .window(6)
            .context(12)
            .ff_hidden(8)
            .build()
            .unwrap();
        let (trained, _) = train_with(&ds.train, config, &rec).unwrap();
        trained.detect_with(&ds.test, PotConfig::default(), &rec).unwrap();
        rec.flush_metrics();
        rec.flush();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    parse_trace(&text).unwrap()
}

#[test]
fn report_covers_the_span_taxonomy_on_a_recorded_run() {
    let trace = recorded_fixture("taxonomy");
    assert!(!trace.spans.is_empty(), "fixture recorded no spans");
    let report = analyze(&trace);

    // Roots: training and detection each install their own scope.
    let phase_names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert!(phase_names.contains(&"train.run"), "phases: {phase_names:?}");
    assert!(phase_names.contains(&"detect.run"), "phases: {phase_names:?}");

    // The golden per-op rows: every layer of the stack shows up.
    for expected in [
        "train.run",
        "train.epoch",
        "train.step",
        "train.phase1",
        "train.phase2",
        "train.maml",
        "train.validate",
        "tape.backward",
        "op.matmul",
        "nn.attention",
        "nn.encoder_layer",
        "optim.step",
        "maml.step",
        "pool.run",
        "detect.run",
        "detect.score_windows",
        "pot.calibrate",
        "spot.refit",
    ] {
        assert!(
            report.ops.iter().any(|o| o.name == expected && o.count > 0),
            "per-op table lacks {expected}; has {:?}",
            report.ops.iter().map(|o| &o.name).collect::<Vec<_>>()
        );
    }
    // Structural invariants: two epochs, one run; self <= total everywhere;
    // quantiles bracket the mean's scale.
    let epoch = report.ops.iter().find(|o| o.name == "train.epoch").unwrap();
    assert_eq!(epoch.count, 2);
    let run = report.ops.iter().find(|o| o.name == "train.run").unwrap();
    assert_eq!(run.count, 1);
    for o in &report.ops {
        assert!(o.self_us <= o.total_us + 1e-9, "{}: self > total", o.name);
        assert!(o.p50_us <= o.p99_us + 1e-9, "{}: p50 > p99", o.name);
        assert!(o.mean_us > 0.0, "{}: non-positive mean", o.name);
    }

    // The rendered table mentions the headline columns and the top op.
    let table = render_table(&report);
    for needle in ["per-op attribution", "total_ms", "self_ms", "p99_us", "train.step"] {
        assert!(table.contains(needle), "table lacks {needle:?}:\n{table}");
    }
}

#[test]
fn chrome_trace_round_trips_with_the_expected_schema() {
    let trace = recorded_fixture("chrome");
    let chrome = to_chrome_trace(&trace).to_string();
    let v = tranad_json::parse(&chrome).expect("chrome trace must be valid JSON");
    let events = v
        .req("traceEvents")
        .unwrap()
        .as_array()
        .expect("traceEvents must be an array");
    assert_eq!(events.len(), trace.spans.len());
    for e in events {
        assert_eq!(e.req("ph").unwrap().as_str(), Some("X"));
        assert!(e.req("name").unwrap().as_str().is_some());
        for key in ["ts", "dur", "pid", "tid"] {
            let n = e.req(key).unwrap().as_f64().unwrap();
            assert!(n.is_finite() && n >= 0.0, "{key} must be a non-negative number");
        }
        let args = e.req("args").unwrap();
        assert!(args.get("depth").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn flamegraph_svg_is_well_formed_and_labelled() {
    let trace = recorded_fixture("svg");
    let svg = to_flamegraph_svg(&trace);
    assert!(svg.starts_with("<svg "), "must start with an svg root");
    assert!(svg.trim_end().ends_with("</svg>"), "must close the svg root");
    assert!(svg.contains("xmlns=\"http://www.w3.org/2000/svg\""));
    // Every opened tag family is balanced.
    for tag in ["g", "rect", "text", "title"] {
        let opens = svg.matches(&format!("<{tag}")).count();
        let closes =
            svg.matches(&format!("</{tag}>")).count() + svg.matches("/>").count();
        assert!(opens <= closes, "unbalanced <{tag}>: {opens} opens, {closes} closes");
    }
    assert!(svg.matches("<title>").count() == svg.matches("</title>").count());
    // Tooltips carry the span names.
    assert!(svg.contains("<title>train.run:"), "root tooltip missing");
}

#[test]
fn budget_gate_passes_on_generous_rules_and_fails_on_tight_ones() {
    let trace = recorded_fixture("budget");
    let report = analyze(&trace);
    let generous = parse_budget(
        r#"{"budgets": [
            {"span": "train.step", "min_count": 1, "max_mean_us": 1e9},
            {"span": "op.matmul", "min_count": 1, "max_total_s": 1e6}
        ]}"#,
    )
    .unwrap();
    assert!(check_budget(&report, &generous).is_empty());

    let impossible = parse_budget(
        r#"{"budgets": [{"span": "train.step", "min_count": 1, "max_mean_us": 0.0}]}"#,
    )
    .unwrap();
    assert_eq!(check_budget(&report, &impossible).len(), 1);
}

//! Golden trace test: run training, detection and one baseline fit through
//! a live JSONL sink, then parse the whole trace back with `tranad-json`
//! and check the event taxonomy DESIGN.md documents actually shows up.

use std::sync::Arc;

use tranad::{detect_from_scores_with, train_with, PotConfig, TranadConfig};
use tranad_baselines::iforest::{IForestConfig, IsolationForest};
use tranad_baselines::Detector;
use tranad_data::{generate, DatasetKind, GenConfig};
use tranad_telemetry::{JsonlSink, Recorder};

#[test]
fn golden_trace_covers_the_event_taxonomy() {
    let dir = std::env::temp_dir().join(format!("tranad_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden.jsonl");
    let rec = Recorder::with_sink(Arc::new(JsonlSink::create(&path).unwrap()));
    assert!(rec.enabled());

    let gen = GenConfig { scale: 0.001, min_len: 400, seed: 17 };
    let ds = generate(DatasetKind::Ucr, gen);
    let config = TranadConfig::builder()
        .epochs(2)
        .window(6)
        .context(12)
        .ff_hidden(8)
        .build()
        .unwrap();

    let (trained, report) = train_with(&ds.train, config, &rec).unwrap();
    assert_eq!(report.epochs_run, 2);
    let detection = trained.detect_with(&ds.test, PotConfig::default(), &rec).unwrap();
    // Exercise the per-dimension POT path explicitly too.
    let _ = detect_from_scores_with(
        &detection.scores,
        &detection.scores,
        PotConfig::default(),
        &rec,
    )
    .unwrap();

    // Batch POT calibration with its GPD fit diagnostics.
    let _ = tranad_evt::Pot::fit_with(&detection.aggregate, PotConfig::default(), &rec).unwrap();

    let mut baseline = IsolationForest::new(IForestConfig { trees: 10, ..Default::default() });
    baseline.fit(&ds.train, &rec).unwrap();

    rec.flush_metrics();
    rec.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let mut seen = std::collections::BTreeMap::<String, usize>::new();
    for (lineno, line) in text.lines().enumerate() {
        let v = tranad_json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e:?}", lineno + 1));
        let name = v
            .get("event")
            .and_then(|e| e.as_str())
            .unwrap_or_else(|| panic!("line {} lacks an event name", lineno + 1))
            .to_string();
        assert!(
            v.get("t").and_then(|t| t.as_f64()).is_some_and(|t| t >= 0.0),
            "line {} lacks a timestamp",
            lineno + 1
        );
        *seen.entry(name).or_insert(0) += 1;
    }

    // Training: one event per epoch plus the run summary.
    assert_eq!(seen.get("train.epoch"), Some(&2), "events seen: {seen:?}");
    assert_eq!(seen.get("train.done"), Some(&1), "events seen: {seen:?}");
    // Detection: the batch-score event plus one POT event per dimension
    // (detect on a 1-dim UCR series, then the explicit per-dim call).
    assert!(seen.get("detect.score").is_some_and(|&n| n >= 1), "events seen: {seen:?}");
    assert!(seen.get("pot.dim").is_some_and(|&n| n >= 2), "events seen: {seen:?}");
    assert!(seen.get("pot.fit").is_some_and(|&n| n >= 1), "events seen: {seen:?}");
    // Buffer pool and thread pool report after training.
    assert_eq!(seen.get("pool.buffers"), Some(&1), "events seen: {seen:?}");
    assert_eq!(seen.get("pool.threads"), Some(&1), "events seen: {seen:?}");
    // The baseline fit reports through the same recorder.
    assert_eq!(seen.get("baseline.fit"), Some(&1), "events seen: {seen:?}");
    // Metric summaries flushed at the end.
    assert!(seen.get("metric.histogram").is_some_and(|&n| n >= 1), "events seen: {seen:?}");
    assert!(seen.get("metric.counter").is_some_and(|&n| n >= 1), "events seen: {seen:?}");
    // Spans: the run is hierarchically profiled end to end (train roots,
    // per-op tape spans, POT calibration), so a live sink sees far more
    // span events than anything else.
    assert!(seen.get("span").is_some_and(|&n| n >= 100), "events seen: {seen:?}");

    std::fs::remove_dir_all(&dir).ok();
}

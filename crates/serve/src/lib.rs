//! # tranad-serve
//!
//! Crash-safe streaming serving for TranAD — the production shell around
//! the paper's Algorithm 2 deployment mode.
//!
//! An [`Engine`] owns one trained model and fans incoming datapoints across
//! per-stream [`tranad::OnlineState`]s (bounded history ring + streaming
//! SPOT thresholds per stream). The design targets the ROADMAP's
//! heavy-traffic serving story:
//!
//! - **Micro-batching**: producers enqueue points with [`Engine::push`]
//!   (cheap — validation plus a bounded-queue append); [`Engine::run_batch`]
//!   drains up to `batch_max` points per stream and scores the streams in
//!   parallel over the `tranad-tensor` thread pool. Each stream is scored
//!   serially within one pool task and touches only its own state, so
//!   verdicts are bitwise-identical for any `TRANAD_THREADS` value.
//! - **Bounded queues with explicit backpressure**: a full queue sheds the
//!   point ([`PushOutcome::Shed`]) instead of blocking the producer or
//!   growing without bound; shed totals are counted and traced.
//! - **Crash safety**: [`Engine::checkpoint_now`] (and the automatic
//!   `checkpoint_every` policy) atomically persists every stream's full
//!   streaming state; [`Engine::resume`] restarts from the latest
//!   checkpoint and continues with bitwise-identical verdicts. Points that
//!   were processed after the last checkpoint are simply re-scored on
//!   replay — determinism makes the replay exact.
//! - **Observability**: `serve.batch` spans/events, `serve.push_us`
//!   latency histograms, `serve.queue_depth`/`serve.state_rows` gauges and
//!   `serve.shed`/`serve.checkpoints` counters flow through
//!   `tranad-telemetry`, so `trace-report` attributes serving time like any
//!   other pipeline phase.
//!
//! ```no_run
//! use tranad::TrainedTranad;
//! use tranad_serve::{Engine, ServeConfig};
//!
//! let trained = TrainedTranad::load("model.json").unwrap();
//! let config = ServeConfig { checkpoint_every: 256, ..ServeConfig::default() };
//! // Resumes from the latest checkpoint under ./ckpts, if any.
//! let mut engine = Engine::resume(trained, config, "ckpts").unwrap();
//! engine.push("web-frontend", &[0.3, 0.7]).unwrap();
//! let report = engine.run_batch().unwrap();
//! for sv in &report.verdicts {
//!     for v in &sv.verdicts {
//!         if v.anomalous { println!("{}: anomaly!", sv.stream); }
//!     }
//! }
//! ```

mod checkpoint;
mod engine;

pub use checkpoint::{ServeCheckpoint, StreamState};
pub use engine::{BatchReport, Engine, PushOutcome, StreamVerdicts};

use std::fmt;
use tranad::{DetectorError, PersistError};
use tranad_evt::PotConfig;

/// Serving-layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// SPOT calibration used when a new stream is first seen.
    pub pot: PotConfig,
    /// Per-stream bounded queue capacity; a push beyond it is shed.
    pub max_queue: usize,
    /// Maximum points drained per stream per [`Engine::run_batch`] call.
    pub batch_max: usize,
    /// Automatically checkpoint after this many processed points
    /// (`0` disables the automatic policy; [`Engine::checkpoint_now`]
    /// still works).
    pub checkpoint_every: u64,
    /// Checkpoint files retained on disk (older ones are pruned).
    pub keep_checkpoints: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pot: PotConfig::default(),
            max_queue: 256,
            batch_max: 64,
            checkpoint_every: 0,
            keep_checkpoints: 2,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    pub fn check(&self) -> Result<(), ServeError> {
        if self.max_queue == 0 {
            return Err(ServeError::InvalidConfig("max_queue must be >= 1".to_string()));
        }
        if self.batch_max == 0 {
            return Err(ServeError::InvalidConfig("batch_max must be >= 1".to_string()));
        }
        if self.keep_checkpoints == 0 {
            return Err(ServeError::InvalidConfig("keep_checkpoints must be >= 1".to_string()));
        }
        self.pot.check().map_err(|e| ServeError::InvalidConfig(e.to_string()))
    }
}

/// Why the serving layer could not accept, score or persist work.
#[derive(Debug)]
pub enum ServeError {
    /// The detection layer rejected the work (bad input, SPOT failure, ...).
    Detector(DetectorError),
    /// Checkpoint I/O or decoding failed.
    Persist(PersistError),
    /// The serving configuration is out of range.
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Detector(e) => write!(f, "detector error: {e}"),
            ServeError::Persist(e) => write!(f, "checkpoint error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Detector(e) => Some(e),
            ServeError::Persist(e) => Some(e),
            ServeError::InvalidConfig(_) => None,
        }
    }
}

impl From<DetectorError> for ServeError {
    fn from(e: DetectorError) -> Self {
        ServeError::Detector(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

//! # tranad-serve
//!
//! Crash-safe streaming serving for TranAD — the production shell around
//! the paper's Algorithm 2 deployment mode.
//!
//! An [`Engine`] owns one trained model and fans incoming datapoints across
//! per-stream [`tranad::OnlineState`]s (bounded history ring + streaming
//! SPOT thresholds per stream). The design targets the ROADMAP's
//! heavy-traffic serving story:
//!
//! - **Cross-stream batched inference**: producers enqueue points with
//!   [`Engine::push`] / [`Engine::push_id`] (cheap — validation plus a
//!   copy into pooled row storage); [`Engine::run_batch`] gathers one
//!   pending point from every active stream per round, stacks their
//!   windows and contexts into a single `[n, window, m]` / `[n, context,
//!   m]` batch and runs **one** tape-free forward through the shared model
//!   for all of them, then scatters the per-row outputs back into each
//!   stream's SPOT state. Every kernel in the stack reduces per row, so
//!   the batched forward is bitwise-identical to per-stream forwards —
//!   [`Engine::run_batch_per_stream`] remains as the reference
//!   implementation the parity gate compares against.
//! - **Handle-based stream API**: [`Engine::stream_id`] interns a stream
//!   name into a copyable [`StreamId`]; the hot path ([`Engine::push_id`],
//!   [`StreamVerdicts::stream`]) deals only in ids, with
//!   [`Engine::stream_name`] as the resolver, so no per-batch name clones.
//! - **Bounded queues with explicit backpressure**: a full queue sheds the
//!   point ([`PushOutcome::Shed`]) instead of blocking the producer or
//!   growing without bound; shed totals are counted and traced.
//! - **Crash safety**: [`Engine::checkpoint_now`] (and the automatic
//!   `checkpoint_every` policy) atomically persists every stream's full
//!   streaming state; [`Engine::resume`] restarts from the latest
//!   checkpoint and continues with bitwise-identical verdicts. Points that
//!   were processed after the last checkpoint are simply re-scored on
//!   replay — determinism makes the replay exact.
//! - **Observability**: `serve.batch` / `serve.batch_forward` spans,
//!   `serve.push_us` latency histograms, queue-depth / state-rows /
//!   batch-occupancy gauges and `serve.shed`/`serve.checkpoints` counters
//!   flow through `tranad-telemetry`, so `trace-report` attributes serving
//!   time like any other pipeline phase.
//!
//! This crate is the one-stop import for serving: the `tranad` core types
//! its API surface exposes ([`TrainedTranad`], [`OnlineVerdict`],
//! [`OnlineSnapshot`], [`DetectorError`], [`PersistError`], [`PotConfig`])
//! are re-exported here. (The re-export points this way — serve → tranad —
//! because `tranad-serve` depends on the `tranad` facade, not the other
//! way around.)
//!
//! ```no_run
//! use tranad_serve::{Engine, EngineConfig, TrainedTranad};
//!
//! let trained = TrainedTranad::load("model.json").unwrap();
//! let config = EngineConfig::builder().checkpoint_every(256).build().unwrap();
//! // Resumes from the latest checkpoint under ./ckpts, if any.
//! let mut engine = Engine::resume(trained, config, "ckpts").unwrap();
//! let web = engine.stream_id("web-frontend").unwrap();
//! engine.push_id(web, &[0.3, 0.7]).unwrap();
//! let report = engine.run_batch().unwrap();
//! for sv in &report.verdicts {
//!     for v in &sv.verdicts {
//!         if v.anomalous {
//!             println!("{}: anomaly!", engine.stream_name(sv.stream).unwrap());
//!         }
//!     }
//! }
//! ```

mod checkpoint;
mod engine;

pub use checkpoint::{ServeCheckpoint, StreamState};
pub use engine::{BatchReport, Engine, PushOutcome, StreamId, StreamVerdicts};

// One import path for serving callers: the `tranad` core types that appear
// in this crate's API surface.
pub use tranad::{
    DetectorError, OnlineSnapshot, OnlineState, OnlineVerdict, PersistError, TrainedTranad,
};
pub use tranad_evt::PotConfig;
// The observability types the engine's API surfaces: [`Engine::obs`] hands
// out an `Arc<EngineObs>` and `EngineConfig.health` carries thresholds.
pub use tranad_obs::{EngineObs, EngineStatus, HealthConfig, HealthReport, StreamStats};

use std::fmt;

/// Serving-engine configuration. Construct through
/// [`EngineConfig::builder`] for up-front validation, consistent with
/// `TranadConfig` and friends; direct struct construction remains possible
/// (the [`Engine`] constructors re-run [`EngineConfig::check`]).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// SPOT calibration used when a new stream is first seen.
    pub pot: PotConfig,
    /// Per-stream bounded queue capacity; a push beyond it is shed.
    pub max_queue: usize,
    /// Maximum points drained per stream per [`Engine::run_batch`] call.
    pub batch_max: usize,
    /// Automatically checkpoint after this many processed points
    /// (`0` disables the automatic policy; [`Engine::checkpoint_now`]
    /// still works).
    pub checkpoint_every: u64,
    /// Checkpoint files retained on disk (older ones are pruned).
    pub keep_checkpoints: usize,
    /// Health thresholds published with the engine's observability state
    /// and evaluated by `/healthz` / `/readyz` (see [`Engine::obs`]).
    pub health: HealthConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pot: PotConfig::default(),
            max_queue: 256,
            batch_max: 64,
            checkpoint_every: 0,
            keep_checkpoints: 2,
            health: HealthConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Starts a validating builder seeded with the defaults:
    /// `EngineConfig::builder().batch_max(32).build()?`.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { config: EngineConfig::default() }
    }

    /// Validates the configuration. Prefer constructing through
    /// [`EngineConfig::builder`], which calls this for you.
    pub fn check(&self) -> Result<(), ServeError> {
        if self.max_queue == 0 {
            return Err(ServeError::InvalidConfig("max_queue must be >= 1".to_string()));
        }
        if self.batch_max == 0 {
            return Err(ServeError::InvalidConfig("batch_max must be >= 1".to_string()));
        }
        if self.keep_checkpoints == 0 {
            return Err(ServeError::InvalidConfig("keep_checkpoints must be >= 1".to_string()));
        }
        self.health.check().map_err(ServeError::InvalidConfig)?;
        self.pot.check().map_err(|e| ServeError::InvalidConfig(e.to_string()))
    }
}

/// Validating builder for [`EngineConfig`]. Every setter overrides one
/// default field; [`EngineConfigBuilder::build`] rejects out-of-range
/// combinations (`batch_max == 0`, `max_queue == 0`,
/// `keep_checkpoints == 0`, bad POT parameters) up front instead of
/// misbehaving at runtime.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// SPOT calibration used when a new stream is first seen.
    pub fn pot(mut self, pot: PotConfig) -> Self {
        self.config.pot = pot;
        self
    }

    /// Per-stream bounded queue capacity; a push beyond it is shed.
    pub fn max_queue(mut self, max_queue: usize) -> Self {
        self.config.max_queue = max_queue;
        self
    }

    /// Maximum points drained per stream per [`Engine::run_batch`] call.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.config.batch_max = batch_max;
        self
    }

    /// Automatic checkpoint cadence in processed points (`0` disables).
    pub fn checkpoint_every(mut self, checkpoint_every: u64) -> Self {
        self.config.checkpoint_every = checkpoint_every;
        self
    }

    /// Checkpoint files retained on disk (older ones are pruned).
    pub fn keep_checkpoints(mut self, keep_checkpoints: usize) -> Self {
        self.config.keep_checkpoints = keep_checkpoints;
        self
    }

    /// Health thresholds published with the engine's observability state.
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.config.health = health;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EngineConfig, ServeError> {
        self.config.check()?;
        Ok(self.config)
    }
}

/// Why the serving layer could not accept, score or persist work.
#[derive(Debug)]
pub enum ServeError {
    /// The detection layer rejected the work (bad input, SPOT failure, ...).
    Detector(DetectorError),
    /// Checkpoint I/O or decoding failed.
    Persist(PersistError),
    /// The serving configuration is out of range.
    InvalidConfig(String),
    /// A [`StreamId`] that this engine never issued (stale or from another
    /// engine) was passed to an id-based method.
    UnknownStream(StreamId),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Detector(e) => write!(f, "detector error: {e}"),
            ServeError::Persist(e) => write!(f, "checkpoint error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::UnknownStream(id) => {
                write!(f, "unknown stream handle {id:?} (not issued by this engine)")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Detector(e) => Some(e),
            ServeError::Persist(e) => Some(e),
            ServeError::InvalidConfig(_) | ServeError::UnknownStream(_) => None,
        }
    }
}

impl From<DetectorError> for ServeError {
    fn from(e: DetectorError) -> Self {
        ServeError::Detector(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_overrides_and_validates() {
        let c = EngineConfig::builder()
            .max_queue(512)
            .batch_max(16)
            .checkpoint_every(40)
            .keep_checkpoints(3)
            .build()
            .unwrap();
        assert_eq!(c.max_queue, 512);
        assert_eq!(c.batch_max, 16);
        assert_eq!(c.checkpoint_every, 40);
        assert_eq!(c.keep_checkpoints, 3);

        assert!(matches!(
            EngineConfig::builder().batch_max(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            EngineConfig::builder().max_queue(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            EngineConfig::builder().keep_checkpoints(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        let bad_pot = PotConfig { q: 2.0, ..PotConfig::default() };
        assert!(matches!(
            EngineConfig::builder().pot(bad_pot).build(),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn checkpoint_every_zero_is_valid() {
        // 0 means "no automatic checkpoints", not an error.
        assert_eq!(EngineConfig::builder().build().unwrap().checkpoint_every, 0);
    }
}

//! Serving checkpoints: the on-disk format and its directory management.
//!
//! A checkpoint is one JSON file `ckpt-<seq>.json` holding the full
//! streaming state of every stream the engine serves (see
//! [`tranad::OnlineSnapshot`]), written atomically via
//! [`tranad::atomic_write`] so a crash can never leave a torn file. The
//! zero-padded, monotonically increasing sequence number makes
//! lexicographic order equal recovery order; resume scans newest-to-oldest
//! and skips unreadable files (counting them on `serve.checkpoint_skipped`)
//! so one damaged checkpoint never bricks the service while older good
//! state exists.

use crate::ServeError;
use std::path::{Path, PathBuf};
use tranad::{OnlineSnapshot, PersistError};
use tranad_json::{FromJson, ToJson};
use tranad_telemetry::Recorder;

/// On-disk format version of serving checkpoints.
pub(crate) const CHECKPOINT_VERSION: u32 = 1;

/// One stream's entry in a serving checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// Caller-chosen stream name.
    pub name: String,
    /// The stream's full streaming state.
    pub snapshot: OnlineSnapshot,
}

tranad_json::impl_json_struct!(StreamState { name, snapshot });

/// A complete serving checkpoint: every stream's state plus the engine's
/// lifetime counters, so a resumed engine reports continuous totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCheckpoint {
    /// On-disk format version.
    pub format_version: u32,
    /// Monotonic checkpoint sequence number (also in the file name).
    pub seq: u64,
    /// Points processed by the engine when the checkpoint was taken.
    pub processed: u64,
    /// Points shed by the engine when the checkpoint was taken.
    pub shed: u64,
    /// Per-stream state, sorted by stream name.
    pub streams: Vec<StreamState>,
}

tranad_json::impl_json_struct!(ServeCheckpoint { format_version, seq, processed, shed, streams });

/// The checkpoint file path for a sequence number. Zero-padding keeps
/// lexicographic directory order equal to numeric order.
pub(crate) fn path_for(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:012}.json"))
}

/// All checkpoint files in `dir`, as `(seq, path)` sorted ascending.
fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(PersistError::Io(e).into()),
    };
    for entry in entries {
        let entry = entry.map_err(PersistError::Io)?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".json")) else {
            continue; // temp files, foreign files
        };
        let Ok(seq) = stem.parse::<u64>() else { continue };
        found.push((seq, entry.path()));
    }
    found.sort();
    Ok(found)
}

/// Writes `ck` atomically into `dir` (creating it if needed) and prunes all
/// but the newest `keep` checkpoints. Returns the new file's path.
pub(crate) fn write(dir: &Path, ck: &ServeCheckpoint, keep: usize) -> Result<PathBuf, ServeError> {
    std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
    let path = path_for(dir, ck.seq);
    tranad::atomic_write(&path, &ck.to_json().to_string())?;
    let existing = list(dir)?;
    if existing.len() > keep {
        for (_, old) in &existing[..existing.len() - keep] {
            // Best-effort: a stale file only wastes disk, never correctness.
            std::fs::remove_file(old).ok();
        }
    }
    Ok(path)
}

/// Loads the newest readable checkpoint from `dir`, or `None` when the
/// directory holds none. Unreadable or corrupt files are skipped (newest
/// first, counted on `serve.checkpoint_skipped`); if every candidate is
/// corrupt the last error is returned — silently starting from scratch
/// when state *should* exist would discard stream history.
pub(crate) fn latest(dir: &Path, rec: &Recorder) -> Result<Option<ServeCheckpoint>, ServeError> {
    let files = list(dir)?;
    let mut last_err: Option<ServeError> = None;
    for (_, path) in files.iter().rev() {
        match read(path) {
            Ok(ck) => return Ok(Some(ck)),
            Err(e) => {
                rec.add("serve.checkpoint_skipped", 1);
                last_err = Some(e);
            }
        }
    }
    match last_err {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

/// Reads and validates one checkpoint file.
fn read(path: &Path) -> Result<ServeCheckpoint, ServeError> {
    let text = std::fs::read_to_string(path).map_err(PersistError::Io)?;
    let json = tranad_json::parse(&text).map_err(PersistError::Json)?;
    let ck = ServeCheckpoint::from_json(&json).map_err(PersistError::Json)?;
    if ck.format_version != CHECKPOINT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "serve checkpoint format version {} (expected {CHECKPOINT_VERSION})",
            ck.format_version
        ))
        .into());
    }
    Ok(ck)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_checkpoint(seq: u64) -> ServeCheckpoint {
        ServeCheckpoint {
            format_version: CHECKPOINT_VERSION,
            seq,
            processed: seq * 10,
            shed: 1,
            streams: vec![StreamState {
                name: "s0".to_string(),
                snapshot: OnlineSnapshot {
                    dims: 1,
                    seen: seq * 10,
                    rows: vec![vec![0.5]],
                    spots: Vec::new(),
                },
            }],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tranad_serve_ckpt_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn write_prune_and_latest() {
        let dir = tmp_dir("wpl");
        let rec = Recorder::disabled();
        for seq in 1..=5 {
            write(&dir, &toy_checkpoint(seq), 2).unwrap();
        }
        let files = list(&dir).unwrap();
        assert_eq!(files.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![4, 5]);
        let ck = latest(&dir, &rec).unwrap().unwrap();
        assert_eq!(ck.seq, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_skips_corrupt_newest_and_falls_back() {
        let dir = tmp_dir("fallback");
        let rec = Recorder::disabled();
        write(&dir, &toy_checkpoint(1), 4).unwrap();
        write(&dir, &toy_checkpoint(2), 4).unwrap();
        std::fs::write(path_for(&dir, 3), "{torn").unwrap();
        let ck = latest(&dir, &rec).unwrap().unwrap();
        assert_eq!(ck.seq, 2, "must fall back to the newest readable checkpoint");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_errors_when_only_corrupt_checkpoints_exist() {
        let dir = tmp_dir("allbad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(path_for(&dir, 1), "{torn").unwrap();
        assert!(latest(&dir, &Recorder::disabled()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_or_missing_dir_is_a_fresh_start() {
        let dir = tmp_dir("missing");
        assert!(latest(&dir, &Recorder::disabled()).unwrap().is_none());
    }

    #[test]
    fn json_roundtrip() {
        let ck = toy_checkpoint(7);
        let text = ck.to_json().to_string();
        let back = ServeCheckpoint::from_json(&tranad_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ck);
    }
}

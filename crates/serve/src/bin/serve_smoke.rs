//! Crash-safe serving smoke test for CI: proves the kill-and-resume
//! acceptance criterion end to end.
//!
//! 1. Trains a tiny 2-dimensional model and saves it (atomic v2 format).
//! 2. Run A: serves two deterministic streams uninterrupted, recording
//!    every verdict.
//! 3. Run B: serves the same streams with periodic checkpointing, is
//!    "killed" mid-stream (the engine is dropped — state after the last
//!    checkpoint and all queued points are lost), resumed from the latest
//!    checkpoint, and fed the remainder of each stream from where the
//!    resumed engine says it stopped.
//! 4. Asserts Run B's verdicts are bitwise-identical to Run A's from the
//!    resume point on, and that resident streaming state stays bounded.
//!
//! Run with `TRANAD_THREADS=1` and `=8` (scripts/verify.sh does both): the
//! engine cross-batches streams through shared forwards, and the verdicts
//! must not depend on the thread count.

use tranad::{train, OnlineVerdict, TrainedTranad, TranadConfig};
use tranad_data::TimeSeries;
use tranad_serve::{Engine, EngineConfig};

const DIMS: usize = 2;
const STREAMS: [&str; 2] = ["web", "db"];
const POINTS: usize = 240;
const KILL_AT: usize = 140;

/// Deterministic pseudo-noise in [-0.5, 0.5): a pure function of the
/// coordinates, so both runs regenerate exactly the same stream.
fn jitter(stream: usize, t: usize, d: usize) -> f64 {
    let x = t as f64 * 12.9898 + stream as f64 * 78.233 + d as f64 * 37.719;
    (x.sin() * 43758.5453).fract() - 0.5
}

/// The `t`-th datapoint of a stream. Stream "db" develops a stuck sensor
/// from t = 180 so the resumed engine must also flag anomalies correctly.
fn point(stream: usize, t: usize) -> Vec<f64> {
    let x = t as f64;
    let mut p = vec![
        (x / 11.0 + stream as f64).sin() + 0.05 * jitter(stream, t, 0),
        (x / 7.0).cos() * 0.5 + 0.04 * jitter(stream, t, 1),
    ];
    if stream == 1 && t >= 180 {
        p[1] = 3.0;
    }
    p
}

fn train_and_save(path: &std::path::Path) {
    let rows: Vec<f64> = (0..500)
        .flat_map(|t| {
            vec![
                (t as f64 / 11.0).sin() + 0.05 * jitter(7, t, 0),
                (t as f64 / 7.0).cos() * 0.5 + 0.04 * jitter(7, t, 1),
            ]
        })
        .collect();
    let series = TimeSeries::from_rows(rows, 500, DIMS);
    let config = TranadConfig::builder()
        .epochs(2)
        .window(6)
        .context(12)
        .ff_hidden(16)
        .dropout(0.0)
        .build()
        .expect("valid config");
    let (trained, _) = train(&series, config).expect("training");
    trained.save(path).expect("save model");
}

fn serve_config() -> EngineConfig {
    EngineConfig::builder()
        .max_queue(512)
        .batch_max(16)
        .checkpoint_every(40)
        .build()
        .expect("valid serve config")
}

/// Feeds `range` of every stream, running a batch every 16 pushes.
fn feed(engine: &mut Engine, range: std::ops::Range<usize>) -> Vec<Vec<OnlineVerdict>> {
    let mut verdicts = vec![Vec::new(); STREAMS.len()];
    for (i, t) in range.enumerate() {
        for (s, name) in STREAMS.iter().enumerate() {
            engine.push(name, &point(s, t)).expect("push");
        }
        if i % 16 == 15 {
            let batch = engine.run_batch().expect("batch").verdicts;
            collect(engine, batch, &mut verdicts);
        }
    }
    let tail = engine.drain().expect("drain");
    for (name, vs) in tail {
        let s = STREAMS.iter().position(|n| *n == name).expect("known stream");
        verdicts[s].extend(vs);
    }
    verdicts
}

fn collect(
    engine: &Engine,
    batch: Vec<tranad_serve::StreamVerdicts>,
    into: &mut [Vec<OnlineVerdict>],
) {
    for sv in batch {
        let name = engine.stream_name(sv.stream).expect("known stream");
        let s = STREAMS.iter().position(|n| *n == name).expect("known stream");
        into[s].extend(sv.verdicts);
    }
}

fn main() {
    let pid = std::process::id();
    let model_path = std::env::temp_dir().join(format!("tranad_serve_smoke_model_{pid}.json"));
    let ckpt_dir = std::env::temp_dir().join(format!("tranad_serve_smoke_ckpts_{pid}"));
    std::fs::remove_dir_all(&ckpt_dir).ok();

    println!("==> training + saving the model");
    train_and_save(&model_path);

    // Run A: uninterrupted reference run.
    println!("==> run A: uninterrupted serve of {POINTS} points x {} streams", STREAMS.len());
    let trained_a = TrainedTranad::load(&model_path).expect("load model");
    let mut engine_a = Engine::new(trained_a, serve_config()).expect("engine A");
    let reference = feed(&mut engine_a, 0..POINTS);
    for (s, name) in STREAMS.iter().enumerate() {
        assert_eq!(reference[s].len(), POINTS, "stream {name}: reference run lost verdicts");
    }
    let cap = {
        let c = engine_a.trained().model.config();
        c.window.max(c.context)
    };
    assert!(
        engine_a.state_rows() <= STREAMS.len() * cap,
        "resident state {} rows exceeds the {} bound",
        engine_a.state_rows(),
        STREAMS.len() * cap
    );

    // Run B, phase 1: checkpointing run, killed mid-stream.
    println!("==> run B: serve with checkpoints, kill at t={KILL_AT}");
    let trained_b = TrainedTranad::load(&model_path).expect("load model");
    let mut engine_b =
        Engine::resume(trained_b, serve_config(), &ckpt_dir).expect("engine B");
    for t in 0..KILL_AT {
        for (s, name) in STREAMS.iter().enumerate() {
            engine_b.push(name, &point(s, t)).expect("push");
        }
        if t % 16 == 15 {
            engine_b.run_batch().expect("batch");
        }
    }
    drop(engine_b); // the "crash": queued points and post-checkpoint state are gone

    // Run B, phase 2: resume from the latest checkpoint and finish.
    let trained_b2 = TrainedTranad::load(&model_path).expect("load model");
    let mut resumed =
        Engine::resume(trained_b2, serve_config(), &ckpt_dir).expect("resume engine");
    let consumed = STREAMS
        .map(|name| resumed.stream_seen(name).expect("stream in checkpoint") as usize);
    println!(
        "==> resumed from checkpoint: consumed {:?} of {KILL_AT} fed points per stream",
        consumed
    );
    for (s, name) in STREAMS.iter().enumerate() {
        assert!(consumed[s] > 0, "stream {name}: checkpoint recorded no progress");
        assert!(consumed[s] <= KILL_AT, "stream {name}: checkpoint is from the future");
    }

    let mut resumed_verdicts = vec![Vec::new(); STREAMS.len()];
    for t in consumed[0].min(consumed[1])..POINTS {
        for (s, name) in STREAMS.iter().enumerate() {
            if t >= consumed[s] {
                resumed.push(name, &point(s, t)).expect("push");
            }
        }
        if t % 16 == 15 {
            let batch = resumed.run_batch().expect("batch").verdicts;
            collect(&resumed, batch, &mut resumed_verdicts);
        }
    }
    let tail = resumed.drain().expect("drain");
    for (name, vs) in tail {
        let s = STREAMS.iter().position(|n| *n == name).expect("known stream");
        resumed_verdicts[s].extend(vs);
    }

    // The acceptance criterion: bitwise-identical verdicts from the resume
    // point on.
    let mut compared = 0usize;
    for (s, name) in STREAMS.iter().enumerate() {
        let expected = &reference[s][consumed[s]..];
        let got = &resumed_verdicts[s];
        assert_eq!(
            expected.len(),
            got.len(),
            "stream {name}: resumed run produced {} verdicts, expected {}",
            got.len(),
            expected.len()
        );
        for (i, (a, b)) in expected.iter().zip(got).enumerate() {
            let t = consumed[s] + i;
            assert_eq!(a.dim_labels, b.dim_labels, "stream {name} t={t}: labels diverged");
            assert_eq!(a.anomalous, b.anomalous, "stream {name} t={t}: verdict diverged");
            for (d, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "stream {name} t={t} dim {d}: scores diverged ({x} vs {y})"
                );
            }
            compared += 1;
        }
    }
    // The injected fault must be flagged by the *resumed* engine.
    let fault_alarms = resumed_verdicts[1]
        .iter()
        .skip(180usize.saturating_sub(consumed[1]))
        .filter(|v| v.anomalous)
        .count();
    assert!(fault_alarms >= 30, "stuck sensor under-flagged after resume: {fault_alarms}");
    assert!(
        resumed.state_rows() <= STREAMS.len() * cap,
        "resumed resident state exceeds bound"
    );

    println!(
        "serve smoke OK: {compared} post-resume verdicts bitwise-identical, \
         {fault_alarms} fault alarms, state bounded at {} rows",
        resumed.state_rows()
    );
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_dir_all(&ckpt_dir).ok();
}

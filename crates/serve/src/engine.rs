//! The micro-batching serving engine.
//!
//! Producers call [`Engine::push`] (validate + enqueue, never blocking);
//! a driver loop calls [`Engine::run_batch`], which drains up to
//! `batch_max` points per stream and scores all streams in parallel over
//! the `tranad-tensor` pool. Each stream is scored serially inside one
//! pool task and owns its state exclusively, so results are
//! bitwise-identical at any `TRANAD_THREADS` — the pool only changes *who*
//! computes a stream, never *what* is computed. Telemetry from the
//! parallel region is emitted serially afterwards, keeping live traces
//! deterministic too.

use crate::checkpoint::{self, ServeCheckpoint, StreamState, CHECKPOINT_VERSION};
use crate::{ServeConfig, ServeError};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::time::Instant;
use tranad::{DetectorError, OnlineState, OnlineVerdict, TrainedTranad};
use tranad_telemetry::Recorder;
use tranad_tensor::pool;

/// The outcome of enqueueing one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted; `depth` is the stream queue's depth after the append.
    Enqueued {
        /// Queue depth including this point.
        depth: usize,
    },
    /// The stream's bounded queue is full: the point was dropped (explicit
    /// load-shedding — the producer sees backpressure instead of blocking,
    /// and the drop is counted on `serve.shed`).
    Shed {
        /// Queue depth at the time of the drop (= `max_queue`).
        depth: usize,
    },
}

/// The verdicts one [`Engine::run_batch`] produced for one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamVerdicts {
    /// Stream name.
    pub stream: String,
    /// Stream-local sequence number of `verdicts[0]` (0-based count of
    /// points the stream had consumed before this batch).
    pub first_seq: u64,
    /// One verdict per processed point, in arrival order.
    pub verdicts: Vec<OnlineVerdict>,
}

/// What one [`Engine::run_batch`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Points scored across all streams.
    pub processed: usize,
    /// Per-stream verdicts (streams with work this batch, in registration
    /// order).
    pub verdicts: Vec<StreamVerdicts>,
    /// Path of the checkpoint written by the automatic policy, if any.
    pub checkpoint: Option<PathBuf>,
}

/// One served stream: its bounded input queue and streaming state. The
/// [`OnlineState`] owns the stream's reusable forward workspace (window and
/// context staging tensors), so scoring a stream across many batches runs
/// tape-free with no per-point staging allocations — the slot IS the
/// per-stream workspace, kept alive for the engine's lifetime.
struct StreamSlot {
    name: String,
    state: OnlineState,
    queue: VecDeque<Vec<f64>>,
    /// Points drained from `queue` for the in-flight batch.
    pending: Vec<Vec<f64>>,
    /// Verdicts produced by the in-flight batch.
    out: Vec<OnlineVerdict>,
    /// `state.seen()` when the in-flight batch started.
    first_seq: u64,
    /// First scoring error of the in-flight batch, surfaced after the
    /// parallel region (deterministically, by slot order).
    error: Option<DetectorError>,
}

/// A multi-stream, micro-batching, crash-safe serving engine. See the
/// crate docs for the design.
pub struct Engine {
    trained: TrainedTranad,
    config: ServeConfig,
    streams: Vec<StreamSlot>,
    /// Stream name → slot index. BTreeMap so checkpoints list streams in a
    /// deterministic (sorted) order.
    index: BTreeMap<String, usize>,
    dims: usize,
    /// Lifetime points scored (survives resume via the checkpoint).
    processed: u64,
    /// Lifetime points shed (survives resume via the checkpoint).
    shed: u64,
    /// Points processed since the last checkpoint.
    since_ckpt: u64,
    ckpt_dir: Option<PathBuf>,
    ckpt_seq: u64,
    rec: Recorder,
}

impl Engine {
    /// Creates an engine with no checkpoint directory (in-memory only).
    /// Traces to the process-global recorder.
    pub fn new(trained: TrainedTranad, config: ServeConfig) -> Result<Engine, ServeError> {
        Self::with_recorder(trained, config, tranad_telemetry::global().clone())
    }

    /// [`Engine::new`] with an explicit recorder.
    pub fn with_recorder(
        trained: TrainedTranad,
        config: ServeConfig,
        rec: Recorder,
    ) -> Result<Engine, ServeError> {
        config.check()?;
        let dims = trained.model.dims();
        Ok(Engine {
            trained,
            config,
            streams: Vec::new(),
            index: BTreeMap::new(),
            dims,
            processed: 0,
            shed: 0,
            since_ckpt: 0,
            ckpt_dir: None,
            ckpt_seq: 0,
            rec,
        })
    }

    /// Creates an engine that checkpoints into `dir` and, if `dir` already
    /// holds a checkpoint, resumes every stream from the newest readable
    /// one — the resumed engine's future verdicts are bitwise-identical to
    /// an uninterrupted run's. Traces to the process-global recorder.
    pub fn resume(
        trained: TrainedTranad,
        config: ServeConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Engine, ServeError> {
        Self::resume_with_recorder(trained, config, dir, tranad_telemetry::global().clone())
    }

    /// [`Engine::resume`] with an explicit recorder.
    pub fn resume_with_recorder(
        trained: TrainedTranad,
        config: ServeConfig,
        dir: impl AsRef<Path>,
        rec: Recorder,
    ) -> Result<Engine, ServeError> {
        let dir = dir.as_ref().to_path_buf();
        let loaded = checkpoint::latest(&dir, &rec)?;
        let mut engine = Self::with_recorder(trained, config, rec)?;
        engine.ckpt_dir = Some(dir);
        if let Some(ck) = loaded {
            for entry in &ck.streams {
                if engine.index.contains_key(&entry.name) {
                    return Err(ServeError::Persist(tranad::PersistError::Corrupt(format!(
                        "checkpoint lists stream {:?} twice",
                        entry.name
                    ))));
                }
                let state = OnlineState::restore(&engine.trained, &entry.snapshot)?;
                engine.register(entry.name.clone(), state);
            }
            engine.processed = ck.processed;
            engine.shed = ck.shed;
            engine.ckpt_seq = ck.seq;
            engine.rec.emit("serve.resume", |e| {
                e.u64("seq", ck.seq)
                    .u64("streams", ck.streams.len() as u64)
                    .u64("processed", ck.processed);
            });
        }
        Ok(engine)
    }

    /// Validates and enqueues one raw datapoint for `stream`, creating the
    /// stream on first sight. Never blocks: when the stream's bounded
    /// queue is full the point is shed and the caller is told. Malformed
    /// input (wrong width, NaN/±Inf) is rejected up front with an error —
    /// it never reaches the queue, so it can never poison stream state.
    pub fn push(&mut self, stream: &str, point: &[f64]) -> Result<PushOutcome, ServeError> {
        let started = self.rec.enabled().then(Instant::now);
        if point.len() != self.dims {
            return Err(DetectorError::DimensionMismatch {
                expected: self.dims,
                got: point.len(),
            }
            .into());
        }
        if let Some(dim) = point.iter().position(|v| !v.is_finite()) {
            return Err(DetectorError::NonFiniteInput { dim }.into());
        }
        let max_queue = self.config.max_queue;
        let i = self.ensure_stream(stream)?;
        let slot = &mut self.streams[i];
        let outcome = if slot.queue.len() >= max_queue {
            self.shed += 1;
            self.rec.add("serve.shed", 1);
            PushOutcome::Shed { depth: slot.queue.len() }
        } else {
            slot.queue.push_back(point.to_vec());
            PushOutcome::Enqueued { depth: slot.queue.len() }
        };
        if let Some(started) = started {
            self.rec.observe("serve.push_us", 1e6 * started.elapsed().as_secs_f64());
        }
        Ok(outcome)
    }

    /// Drains up to `batch_max` queued points per stream and scores all
    /// streams in parallel over the `tranad-tensor` pool. Scoring runs
    /// tape-free (`InferCtx`) into each stream's resident workspace, with
    /// bitwise-identical verdicts to the taped path. Returns the verdicts
    /// plus what the automatic checkpoint policy did. Verdict values are
    /// independent of the thread count.
    pub fn run_batch(&mut self) -> Result<BatchReport, ServeError> {
        let _scope = self.rec.span_scope();
        let _span = tranad_telemetry::span::enter("serve.batch");
        let batch_max = self.config.batch_max;
        for slot in &mut self.streams {
            let take = slot.queue.len().min(batch_max);
            slot.first_seq = slot.state.seen();
            slot.out.clear();
            slot.error = None;
            slot.pending.clear();
            slot.pending.extend(slot.queue.drain(..take));
        }

        // Parallel fan-out: one pool task per stream; each task mutates
        // only its own slot and reads the shared model. Workers run
        // span-suppressed (see pool::run), so the trace stays identical
        // across thread counts.
        let trained = &self.trained;
        pool::parallel_chunks_mut(&mut self.streams, 1, |_, chunk| {
            for slot in chunk.iter_mut() {
                for point in slot.pending.drain(..) {
                    match slot.state.push(trained, &point) {
                        Ok(v) => slot.out.push(v),
                        Err(e) => {
                            slot.error = Some(e);
                            break;
                        }
                    }
                }
            }
        });

        // Surface the first failure deterministically (slot order). Inputs
        // are validated at push time, so this only fires on internal bugs.
        if let Some(slot) = self.streams.iter_mut().find(|s| s.error.is_some()) {
            return Err(slot.error.take().expect("just matched").into());
        }

        let mut verdicts = Vec::new();
        let mut processed = 0usize;
        for slot in &mut self.streams {
            if slot.out.is_empty() {
                continue;
            }
            processed += slot.out.len();
            verdicts.push(StreamVerdicts {
                stream: slot.name.clone(),
                first_seq: slot.first_seq,
                verdicts: std::mem::take(&mut slot.out),
            });
        }
        self.processed += processed as u64;
        self.since_ckpt += processed as u64;

        // Telemetry, serially, after the parallel region.
        if self.rec.enabled() {
            let max_depth = self.streams.iter().map(|s| s.queue.len()).max().unwrap_or(0);
            let state_rows: usize = self.streams.iter().map(|s| s.state.buffered_rows()).sum();
            self.rec.gauge("serve.queue_depth", max_depth as f64);
            self.rec.gauge("serve.state_rows", state_rows as f64);
            self.rec.gauge("serve.streams", self.streams.len() as f64);
            let (total_processed, total_shed) = (self.processed, self.shed);
            let n_streams = verdicts.len() as u64;
            self.rec.emit("serve.batch", |e| {
                e.u64("streams", n_streams)
                    .u64("points", processed as u64)
                    .u64("processed_total", total_processed)
                    .u64("shed_total", total_shed);
            });
        }

        let checkpoint = if self.ckpt_dir.is_some()
            && self.config.checkpoint_every > 0
            && self.since_ckpt >= self.config.checkpoint_every
        {
            self.checkpoint_now()?
        } else {
            None
        };
        Ok(BatchReport { processed, verdicts, checkpoint })
    }

    /// Runs batches until every queue is empty, concatenating the verdicts
    /// per stream.
    pub fn drain(&mut self) -> Result<BTreeMap<String, Vec<OnlineVerdict>>, ServeError> {
        let mut all: BTreeMap<String, Vec<OnlineVerdict>> = BTreeMap::new();
        loop {
            let report = self.run_batch()?;
            if report.processed == 0 {
                return Ok(all);
            }
            for sv in report.verdicts {
                all.entry(sv.stream).or_default().extend(sv.verdicts);
            }
        }
    }

    /// Atomically writes a checkpoint of every stream's full streaming
    /// state (plus engine counters) into the checkpoint directory, pruning
    /// old files beyond `keep_checkpoints`. Returns `None` when the engine
    /// has no checkpoint directory. Queued-but-unscored points are *not*
    /// checkpointed: on crash they are the producer's to retry, while every
    /// scored point's effect on stream state is recoverable.
    pub fn checkpoint_now(&mut self) -> Result<Option<PathBuf>, ServeError> {
        let Some(dir) = self.ckpt_dir.clone() else {
            return Ok(None);
        };
        self.ckpt_seq += 1;
        let ck = ServeCheckpoint {
            format_version: CHECKPOINT_VERSION,
            seq: self.ckpt_seq,
            processed: self.processed,
            shed: self.shed,
            streams: self
                .index
                .iter()
                .map(|(name, &i)| StreamState {
                    name: name.clone(),
                    snapshot: self.streams[i].state.snapshot(),
                })
                .collect(),
        };
        let path = checkpoint::write(&dir, &ck, self.config.keep_checkpoints)?;
        self.since_ckpt = 0;
        self.rec.add("serve.checkpoints", 1);
        Ok(Some(path))
    }

    /// Stream names in registration order.
    pub fn streams(&self) -> Vec<&str> {
        self.streams.iter().map(|s| s.name.as_str()).collect()
    }

    /// Points a stream has consumed (scored) so far, or `None` for an
    /// unknown stream. After a resume this tells the producer where to
    /// continue feeding.
    pub fn stream_seen(&self, stream: &str) -> Option<u64> {
        self.index.get(stream).map(|&i| self.streams[i].state.seen())
    }

    /// Points currently queued (accepted but not yet scored) for a stream.
    pub fn queued(&self, stream: &str) -> Option<usize> {
        self.index.get(stream).map(|&i| self.streams[i].queue.len())
    }

    /// Lifetime points scored (continues across resume).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Lifetime points shed by backpressure (continues across resume).
    pub fn shed_total(&self) -> u64 {
        self.shed
    }

    /// Total history rows resident across all streams — bounded by
    /// `streams × max(window, context)` regardless of stream length.
    pub fn state_rows(&self) -> usize {
        self.streams.iter().map(|s| s.state.buffered_rows()).sum()
    }

    /// The served model.
    pub fn trained(&self) -> &TrainedTranad {
        &self.trained
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    fn ensure_stream(&mut self, name: &str) -> Result<usize, ServeError> {
        if let Some(&i) = self.index.get(name) {
            return Ok(i);
        }
        let state = OnlineState::new(&self.trained, self.config.pot)?;
        Ok(self.register(name.to_string(), state))
    }

    fn register(&mut self, name: String, state: OnlineState) -> usize {
        let i = self.streams.len();
        self.index.insert(name.clone(), i);
        self.streams.push(StreamSlot {
            name,
            state,
            queue: VecDeque::new(),
            pending: Vec::new(),
            out: Vec::new(),
            first_seq: 0,
            error: None,
        });
        i
    }
}

//! The cross-stream batching serving engine.
//!
//! Producers call [`Engine::push_id`] (validate + copy into pooled row
//! storage, never blocking); a driver loop calls [`Engine::run_batch`],
//! which gathers one pending point from **every** active stream per round,
//! stacks their replication-padded windows and contexts into a single
//! `[n, window, m]` / `[n, context, m]` batch, runs one tape-free forward
//! through the shared model for all of them, and scatters the per-row
//! outputs back into each stream's SPOT/verdict state. Streams with deeper
//! queues simply stay active for more rounds (ragged batching), so uneven
//! producers never stall each other.
//!
//! Batching is bitwise-safe: every kernel in the forward stack (matmul,
//! layer-norm, softmax, attention scores, elementwise) reduces per row or
//! per plane with a summation order that depends only on the row's own
//! contents, and thread-pool chunk boundaries depend only on problem size —
//! never on `TRANAD_THREADS` or the number of co-batched rows. Row `r` of a
//! stacked forward therefore produces exactly the f64 bits a batch-1
//! forward of that stream would, which
//! [`Engine::run_batch_per_stream`] — the retained reference
//! implementation — and `tests/batch_parity.rs` pin across stream counts
//! and thread counts.

use crate::checkpoint::{self, ServeCheckpoint, StreamState, CHECKPOINT_VERSION};
use crate::{EngineConfig, ServeError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use tranad::{DetectorError, OnlineState, OnlineVerdict, TrainedTranad};
use tranad_nn::{Fwd, InferCtx, InferWorkspace};
use tranad_obs::{EngineObs, EngineStatus};
use tranad_telemetry::Recorder;

/// An interned stream handle issued by [`Engine::stream_id`]: a copyable
/// index into the engine's slot table, valid for the engine's lifetime
/// (streams are never removed). The hot path deals only in ids; resolve
/// one back to its name with [`Engine::stream_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(u32);

impl StreamId {
    /// The handle's dense slot index (0-based, in registration order) —
    /// handy for indexing caller-side per-stream tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The outcome of enqueueing one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted; `depth` is the stream queue's depth after the append.
    Enqueued {
        /// Queue depth including this point.
        depth: usize,
    },
    /// The stream's bounded queue is full: the point was dropped (explicit
    /// load-shedding — the producer sees backpressure instead of blocking,
    /// and the drop is counted on `serve.shed`).
    Shed {
        /// Queue depth at the time of the drop (= `max_queue`).
        depth: usize,
    },
}

/// The verdicts one [`Engine::run_batch`] produced for one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamVerdicts {
    /// Stream handle; resolve with [`Engine::stream_name`]. An id, not a
    /// cloned name — batch reports allocate nothing per stream beyond the
    /// verdicts themselves.
    pub stream: StreamId,
    /// Stream-local sequence number of `verdicts[0]` (0-based count of
    /// points the stream had consumed before this batch).
    pub first_seq: u64,
    /// One verdict per processed point, in arrival order.
    pub verdicts: Vec<OnlineVerdict>,
}

/// What one [`Engine::run_batch`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Points scored across all streams.
    pub processed: usize,
    /// Per-stream verdicts (streams with work this batch, in registration
    /// order).
    pub verdicts: Vec<StreamVerdicts>,
    /// Path of the checkpoint written by the automatic policy, if any.
    pub checkpoint: Option<PathBuf>,
}

/// Bounded FIFO of fixed-width rows in one flat allocation: `cap × dims`
/// f64s allocated once when the stream is registered, so the push hot path
/// copies the point into pooled row storage instead of allocating a
/// `Vec<f64>` per point.
struct RowQueue {
    buf: Vec<f64>,
    head: usize,
    len: usize,
    dims: usize,
}

impl RowQueue {
    fn new(cap: usize, dims: usize) -> RowQueue {
        RowQueue { buf: vec![0.0; cap * dims], head: 0, len: 0, dims }
    }

    fn cap(&self) -> usize {
        self.buf.len() / self.dims
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Appends one row; `false` when full (the caller sheds the point).
    fn push(&mut self, row: &[f64]) -> bool {
        let cap = self.cap();
        if self.len == cap {
            return false;
        }
        let at = (self.head + self.len) % cap;
        self.buf[at * self.dims..(at + 1) * self.dims].copy_from_slice(row);
        self.len += 1;
        true
    }

    /// The oldest queued row, if any.
    fn front(&self) -> Option<&[f64]> {
        (self.len > 0).then(|| &self.buf[self.head * self.dims..(self.head + 1) * self.dims])
    }

    /// Drops the oldest queued row.
    fn pop(&mut self) {
        debug_assert!(self.len > 0, "pop from an empty RowQueue");
        self.head = (self.head + 1) % self.cap();
        self.len -= 1;
    }
}

/// One served stream: its bounded input queue and streaming state. The
/// [`OnlineState`] owns the stream's history ring and SPOT thresholders;
/// the engine owns the (shared) forward workspace, so a slot is exactly
/// the per-stream state plus its queue.
struct StreamSlot {
    name: String,
    state: OnlineState,
    queue: RowQueue,
    /// Verdicts produced by the in-flight batch.
    out: Vec<OnlineVerdict>,
    /// `state.seen()` when the in-flight batch started.
    first_seq: u64,
    /// Points this batch still owes the stream (planned minus scored).
    take: usize,
    /// Lifetime points shed by this stream's bounded queue.
    shed: u64,
    /// Lifetime points whose verdict was anomalous.
    anomalies: u64,
    /// The most recent verdict's anomaly score (max across dimensions;
    /// NaN until the first verdict).
    last_score: f64,
    /// Highest queue depth ever observed.
    queue_hwm: usize,
}

/// A multi-stream, cross-stream-batching, crash-safe serving engine. See
/// the crate docs for the design.
pub struct Engine {
    trained: TrainedTranad,
    config: EngineConfig,
    streams: Vec<StreamSlot>,
    /// Stream name → slot index. BTreeMap so checkpoints list streams in a
    /// deterministic (sorted) order.
    index: BTreeMap<String, usize>,
    dims: usize,
    /// Lifetime points scored (survives resume via the checkpoint).
    processed: u64,
    /// Lifetime points shed (survives resume via the checkpoint).
    shed: u64,
    /// Points processed since the last checkpoint.
    since_ckpt: u64,
    ckpt_dir: Option<PathBuf>,
    ckpt_seq: u64,
    /// Batches completed (either path).
    batches: u64,
    /// Shared observability state: [`Engine::run_batch`] publishes the
    /// per-stream stats table and health inputs here after every batch;
    /// the `tranad-obs` exporter (and anything else holding the `Arc`)
    /// reads it with a bounded lock hold, so scraping never blocks the
    /// scoring hot path.
    obs: Arc<EngineObs>,
    rec: Recorder,
    /// Reusable `[n, window, m]` / `[n, context, m]` input stacks for the
    /// cross-stream batched forward, resized per ragged round.
    workspace: InferWorkspace,
    /// Scratch: slot indices of the streams active in the current round.
    active: Vec<usize>,
}

impl Engine {
    /// Creates an engine with no checkpoint directory (in-memory only).
    /// Traces to the process-global recorder.
    pub fn new(trained: TrainedTranad, config: EngineConfig) -> Result<Engine, ServeError> {
        Self::with_recorder(trained, config, tranad_telemetry::global().clone())
    }

    /// [`Engine::new`] with an explicit recorder.
    pub fn with_recorder(
        trained: TrainedTranad,
        config: EngineConfig,
        rec: Recorder,
    ) -> Result<Engine, ServeError> {
        config.check()?;
        let dims = trained.model.dims();
        Ok(Engine {
            trained,
            config,
            streams: Vec::new(),
            index: BTreeMap::new(),
            dims,
            processed: 0,
            shed: 0,
            since_ckpt: 0,
            ckpt_dir: None,
            ckpt_seq: 0,
            batches: 0,
            obs: Arc::new(EngineObs::new(config.health)),
            rec,
            workspace: InferWorkspace::new(),
            active: Vec::new(),
        })
    }

    /// Creates an engine that checkpoints into `dir` and, if `dir` already
    /// holds a checkpoint, resumes every stream from the newest readable
    /// one — the resumed engine's future verdicts are bitwise-identical to
    /// an uninterrupted run's. Traces to the process-global recorder.
    pub fn resume(
        trained: TrainedTranad,
        config: EngineConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Engine, ServeError> {
        Self::resume_with_recorder(trained, config, dir, tranad_telemetry::global().clone())
    }

    /// [`Engine::resume`] with an explicit recorder.
    pub fn resume_with_recorder(
        trained: TrainedTranad,
        config: EngineConfig,
        dir: impl AsRef<Path>,
        rec: Recorder,
    ) -> Result<Engine, ServeError> {
        let dir = dir.as_ref().to_path_buf();
        let loaded = checkpoint::latest(&dir, &rec)?;
        let mut engine = Self::with_recorder(trained, config, rec)?;
        engine.ckpt_dir = Some(dir);
        if let Some(ck) = loaded {
            for entry in &ck.streams {
                if engine.index.contains_key(&entry.name) {
                    return Err(ServeError::Persist(tranad::PersistError::Corrupt(format!(
                        "checkpoint lists stream {:?} twice",
                        entry.name
                    ))));
                }
                let state = OnlineState::restore(&engine.trained, &entry.snapshot)?;
                engine.register(entry.name.clone(), state);
            }
            engine.processed = ck.processed;
            engine.shed = ck.shed;
            engine.ckpt_seq = ck.seq;
            engine.rec.emit("serve.resume", |e| {
                e.u64("seq", ck.seq)
                    .u64("streams", ck.streams.len() as u64)
                    .u64("processed", ck.processed);
            });
        }
        Ok(engine)
    }

    /// Interns a stream name into a copyable [`StreamId`] handle, creating
    /// the stream on first sight. Producers should intern once and use
    /// [`Engine::push_id`] afterwards — the id path does no name lookup.
    pub fn stream_id(&mut self, stream: &str) -> Result<StreamId, ServeError> {
        self.ensure_stream(stream).map(|i| StreamId(i as u32))
    }

    /// Resolves a [`StreamId`] back to its name, or `None` for a handle
    /// this engine never issued.
    pub fn stream_name(&self, id: StreamId) -> Option<&str> {
        self.streams.get(id.index()).map(|s| s.name.as_str())
    }

    /// Validates and enqueues one raw datapoint for the stream behind
    /// `id`. Never blocks: when the stream's bounded queue is full the
    /// point is shed and the caller is told. Malformed input (wrong width,
    /// NaN/±Inf) is rejected up front with an error — it never reaches the
    /// queue, so it can never poison stream state. The accepted point is
    /// copied into the stream's preallocated row storage; nothing is
    /// allocated on this path.
    pub fn push_id(&mut self, id: StreamId, point: &[f64]) -> Result<PushOutcome, ServeError> {
        let started = self.rec.enabled().then(Instant::now);
        self.validate_point(point)?;
        let slot = self.streams.get_mut(id.index()).ok_or(ServeError::UnknownStream(id))?;
        let outcome = if slot.queue.push(point) {
            slot.queue_hwm = slot.queue_hwm.max(slot.queue.len());
            PushOutcome::Enqueued { depth: slot.queue.len() }
        } else {
            slot.shed += 1;
            self.shed += 1;
            self.rec.add("serve.shed", 1);
            PushOutcome::Shed { depth: slot.queue.len() }
        };
        if let Some(started) = started {
            self.rec.observe("serve.push_us", 1e6 * started.elapsed().as_secs_f64());
        }
        Ok(outcome)
    }

    /// Validates and enqueues one raw datapoint for `stream` by name,
    /// creating the stream on first sight — a thin wrapper that interns
    /// the name and calls [`Engine::push_id`]. A malformed point is
    /// rejected *before* the stream is created.
    pub fn push(&mut self, stream: &str, point: &[f64]) -> Result<PushOutcome, ServeError> {
        self.validate_point(point)?;
        let id = self.stream_id(stream)?;
        self.push_id(id, point)
    }

    fn validate_point(&self, point: &[f64]) -> Result<(), ServeError> {
        if point.len() != self.dims {
            return Err(DetectorError::DimensionMismatch {
                expected: self.dims,
                got: point.len(),
            }
            .into());
        }
        if let Some(dim) = point.iter().position(|v| !v.is_finite()) {
            return Err(DetectorError::NonFiniteInput { dim }.into());
        }
        Ok(())
    }

    /// Drains up to `batch_max` queued points per stream through
    /// cross-stream batched forwards: each round gathers one pending point
    /// from every still-active stream, stacks their windows and contexts,
    /// runs **one** tape-free forward for all of them (`serve.batch_forward`
    /// span), and scatters the per-row scores back into each stream's SPOT
    /// state. Streams with deeper queues stay active for more rounds
    /// (ragged batching). Verdicts are bitwise-identical to
    /// [`Engine::run_batch_per_stream`] — and independent of the thread
    /// count — because every kernel reduces per row. Returns the verdicts
    /// plus what the automatic checkpoint policy did.
    pub fn run_batch(&mut self) -> Result<BatchReport, ServeError> {
        let _scope = self.rec.span_scope();
        let _span = tranad_telemetry::span::enter("serve.batch");
        let rounds_max = self.plan();
        let config = *self.trained.model.config();
        let (k, c, m) = (config.window, config.context, self.dims);
        let mut rounds = 0u64;
        let mut occupancy = 0u64;
        for _ in 0..rounds_max {
            let Engine { trained, streams, workspace, active, .. } = &mut *self;
            active.clear();
            active.extend(
                streams.iter().enumerate().filter(|(_, s)| s.take > 0).map(|(i, _)| i),
            );
            let n = active.len();
            if n == 0 {
                break;
            }

            // Gather: one point per active stream into row r of the stacks.
            let (wbuf, cbuf) = workspace.stage(n, k, c, m);
            for (r, &si) in active.iter().enumerate() {
                let StreamSlot { queue, state, take, .. } = &mut streams[si];
                let point = queue.front().expect("planned round has a queued row");
                state.ingest(trained, point)?;
                queue.pop();
                state.stage_tail(
                    &mut wbuf[r * k * m..(r + 1) * k * m],
                    &mut cbuf[r * c * m..(r + 1) * c * m],
                );
                *take -= 1;
            }

            // One tape-free forward for the whole round.
            let _fwd = tranad_telemetry::span::enter("serve.batch_forward");
            let ctx = InferCtx::new(&trained.store);
            let w = ctx.input(workspace.window().clone());
            let cx = ctx.input(workspace.context().clone());
            let out = trained.model.forward(&ctx, &w, &cx);
            drop(_fwd);

            // Scatter: row r of the output belongs to stream active[r].
            let (wd, o1, o2h) = (w.data(), out.o1.data(), out.o2_hat.data());
            for (r, &si) in active.iter().enumerate() {
                let slot = &mut streams[si];
                let row = r * k * m..(r + 1) * k * m;
                let verdict =
                    slot.state.apply_scores(&wd[row.clone()], &o1[row.clone()], &o2h[row]);
                slot.out.push(verdict);
            }
            rounds += 1;
            occupancy += n as u64;
        }
        self.finish(rounds, occupancy)
    }

    /// The per-stream reference implementation of [`Engine::run_batch`]:
    /// identical planning, draining, counters and checkpoint policy, but
    /// every stream scores its pending points through its own batch-1
    /// forwards ([`OnlineState::push`]) instead of the cross-stream
    /// stacked forward. Retained as the baseline the batched path is
    /// bitwise-gated against (`tests/batch_parity.rs`, `bench-serve`).
    pub fn run_batch_per_stream(&mut self) -> Result<BatchReport, ServeError> {
        let _scope = self.rec.span_scope();
        let _span = tranad_telemetry::span::enter("serve.batch");
        let rounds = self.plan() as u64;
        let Engine { trained, streams, .. } = &mut *self;
        let mut occupancy = 0u64;
        for slot in streams.iter_mut() {
            let StreamSlot { queue, state, out, take, .. } = slot;
            occupancy += *take as u64;
            for _ in 0..*take {
                let point = queue.front().expect("planned batch has a queued row");
                let verdict = state.push(trained, point)?;
                queue.pop();
                out.push(verdict);
            }
            *take = 0;
        }
        self.finish(rounds, occupancy)
    }

    /// Plans one batch: snapshots each stream's starting sequence number
    /// and how many of its queued points this batch will take. Returns the
    /// number of ragged rounds the batched path needs (the deepest take).
    fn plan(&mut self) -> usize {
        let batch_max = self.config.batch_max;
        let mut rounds = 0;
        for slot in &mut self.streams {
            slot.take = slot.queue.len().min(batch_max);
            slot.first_seq = slot.state.seen();
            slot.out.clear();
            rounds = rounds.max(slot.take);
        }
        rounds
    }

    /// Collects verdicts, updates counters, emits batch telemetry and runs
    /// the automatic checkpoint policy — shared by both batch paths.
    fn finish(&mut self, rounds: u64, occupancy: u64) -> Result<BatchReport, ServeError> {
        let mut verdicts = Vec::new();
        let mut processed = 0usize;
        for (i, slot) in self.streams.iter_mut().enumerate() {
            if slot.out.is_empty() {
                continue;
            }
            slot.anomalies += slot.out.iter().filter(|v| v.anomalous).count() as u64;
            if let Some(last) = slot.out.last() {
                slot.last_score = last.scores.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            }
            processed += slot.out.len();
            verdicts.push(StreamVerdicts {
                stream: StreamId(i as u32),
                first_seq: slot.first_seq,
                verdicts: std::mem::take(&mut slot.out),
            });
        }
        self.processed += processed as u64;
        self.since_ckpt += processed as u64;
        self.batches += 1;

        if self.rec.enabled() {
            let max_depth = self.streams.iter().map(|s| s.queue.len()).max().unwrap_or(0);
            let state_rows: usize = self.streams.iter().map(|s| s.state.buffered_rows()).sum();
            self.rec.gauge("serve.queue_depth", max_depth as f64);
            self.rec.gauge("serve.state_rows", state_rows as f64);
            self.rec.gauge("serve.streams", self.streams.len() as f64);
            if rounds > 0 {
                // Mean cross-stream batch width: how many rows the shared
                // forward amortized its per-op overhead over.
                self.rec.gauge("serve.batch_occupancy", occupancy as f64 / rounds as f64);
            }
            let (total_processed, total_shed) = (self.processed, self.shed);
            let n_streams = verdicts.len() as u64;
            self.rec.emit("serve.batch", |e| {
                e.u64("streams", n_streams)
                    .u64("points", processed as u64)
                    .u64("rounds", rounds)
                    .u64("processed_total", total_processed)
                    .u64("shed_total", total_shed);
            });
        }

        let checkpoint = if self.ckpt_dir.is_some()
            && self.config.checkpoint_every > 0
            && self.since_ckpt >= self.config.checkpoint_every
        {
            self.checkpoint_now()?
        } else {
            None
        };
        // Publish after the checkpoint policy so the exported checkpoint
        // lag reflects this batch's outcome, then flush the sink: a kill
        // between batches must lose no tail events from a file-backed
        // trace (JsonlSink flushes through to disk here).
        self.publish_obs();
        self.rec.flush();
        Ok(BatchReport { processed, verdicts, checkpoint })
    }

    /// Publishes the engine's per-stream stats table and health inputs
    /// into the shared [`EngineObs`] state. In-place updates under one
    /// bounded lock hold; allocation-free in steady state (stream names
    /// were cloned at registration).
    fn publish_obs(&self) {
        let max_depth = self.streams.iter().map(|s| s.queue.len()).max().unwrap_or(0);
        let status = EngineStatus {
            streams: self.streams.len(),
            processed: self.processed,
            shed: self.shed,
            batches: self.batches,
            queue_saturation: max_depth as f64 / self.config.max_queue as f64,
            checkpoint_lag: self.since_ckpt,
        };
        let streams = &self.streams;
        self.obs.publish_batch(status, |i, row| {
            let slot = &streams[i];
            row.seen = slot.state.seen();
            row.queued = slot.queue.len();
            row.queue_hwm = slot.queue_hwm;
            row.shed = slot.shed;
            row.anomalies = slot.anomalies;
            row.last_score = slot.last_score;
            row.threshold = slot.state.spot_threshold_max();
        });
    }

    /// The engine's shared observability state: hand the `Arc` to a
    /// [`tranad_obs::Exporter`] to serve `/metrics`, `/healthz`, `/readyz`
    /// and `/streams` for this engine. Reading it never blocks
    /// [`Engine::run_batch`] beyond the bounded publish lock.
    pub fn obs(&self) -> Arc<EngineObs> {
        self.obs.clone()
    }

    /// Runs batches until every queue is empty, concatenating the verdicts
    /// per stream (keyed by name — a convenience wrapper, not a hot path).
    pub fn drain(&mut self) -> Result<BTreeMap<String, Vec<OnlineVerdict>>, ServeError> {
        let mut all: BTreeMap<String, Vec<OnlineVerdict>> = BTreeMap::new();
        loop {
            let report = self.run_batch()?;
            if report.processed == 0 {
                return Ok(all);
            }
            for sv in report.verdicts {
                let name = self.stream_name(sv.stream).expect("own report").to_string();
                all.entry(name).or_default().extend(sv.verdicts);
            }
        }
    }

    /// Atomically writes a checkpoint of every stream's full streaming
    /// state (plus engine counters) into the checkpoint directory, pruning
    /// old files beyond `keep_checkpoints`. Returns `None` when the engine
    /// has no checkpoint directory. Queued-but-unscored points are *not*
    /// checkpointed: on crash they are the producer's to retry, while every
    /// scored point's effect on stream state is recoverable.
    pub fn checkpoint_now(&mut self) -> Result<Option<PathBuf>, ServeError> {
        let Some(dir) = self.ckpt_dir.clone() else {
            return Ok(None);
        };
        self.ckpt_seq += 1;
        let ck = ServeCheckpoint {
            format_version: CHECKPOINT_VERSION,
            seq: self.ckpt_seq,
            processed: self.processed,
            shed: self.shed,
            streams: self
                .index
                .iter()
                .map(|(name, &i)| StreamState {
                    name: name.clone(),
                    snapshot: self.streams[i].state.snapshot(),
                })
                .collect(),
        };
        let path = checkpoint::write(&dir, &ck, self.config.keep_checkpoints)?;
        self.since_ckpt = 0;
        self.obs.note_checkpoint();
        self.rec.add("serve.checkpoints", 1);
        Ok(Some(path))
    }

    /// Stream names in registration order.
    pub fn streams(&self) -> Vec<&str> {
        self.streams.iter().map(|s| s.name.as_str()).collect()
    }

    /// Points a stream has consumed (scored) so far, or `None` for an
    /// unknown stream. After a resume this tells the producer where to
    /// continue feeding.
    pub fn stream_seen(&self, stream: &str) -> Option<u64> {
        self.index.get(stream).map(|&i| self.streams[i].state.seen())
    }

    /// Points currently queued (accepted but not yet scored) for a stream.
    pub fn queued(&self, stream: &str) -> Option<usize> {
        self.index.get(stream).map(|&i| self.streams[i].queue.len())
    }

    /// Lifetime points scored (continues across resume).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Lifetime points shed by backpressure (continues across resume).
    pub fn shed_total(&self) -> u64 {
        self.shed
    }

    /// Total history rows resident across all streams — bounded by
    /// `streams × max(window, context)` regardless of stream length.
    pub fn state_rows(&self) -> usize {
        self.streams.iter().map(|s| s.state.buffered_rows()).sum()
    }

    /// The served model.
    pub fn trained(&self) -> &TrainedTranad {
        &self.trained
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn ensure_stream(&mut self, name: &str) -> Result<usize, ServeError> {
        if let Some(&i) = self.index.get(name) {
            return Ok(i);
        }
        let state = OnlineState::new(&self.trained, self.config.pot)?;
        Ok(self.register(name.to_string(), state))
    }

    fn register(&mut self, name: String, state: OnlineState) -> usize {
        let i = self.streams.len();
        self.index.insert(name.clone(), i);
        self.obs.register_stream(&name);
        self.streams.push(StreamSlot {
            name,
            state,
            queue: RowQueue::new(self.config.max_queue, self.dims),
            out: Vec::new(),
            first_seq: 0,
            take: 0,
            shed: 0,
            anomalies: 0,
            last_score: f64::NAN,
            queue_hwm: 0,
        });
        i
    }
}

#[cfg(test)]
mod tests {
    use super::RowQueue;

    #[test]
    fn row_queue_is_a_bounded_fifo_over_flat_storage() {
        let mut q = RowQueue::new(3, 2);
        assert_eq!(q.len(), 0);
        assert!(q.front().is_none());
        assert!(q.push(&[1.0, 2.0]));
        assert!(q.push(&[3.0, 4.0]));
        assert!(q.push(&[5.0, 6.0]));
        assert!(!q.push(&[7.0, 8.0]), "a full queue must refuse the row");
        assert_eq!(q.len(), 3);
        assert_eq!(q.front().unwrap(), &[1.0, 2.0]);
        q.pop();
        // Wrap-around: the freed slot is reused without reallocation.
        assert!(q.push(&[7.0, 8.0]));
        let mut drained = Vec::new();
        while let Some(row) = q.front() {
            drained.push(row.to_vec());
            q.pop();
        }
        assert_eq!(drained, vec![vec![3.0, 4.0], vec![5.0, 6.0], vec![7.0, 8.0]]);
        assert_eq!(q.buf.len(), 6, "storage stays a single flat allocation");
    }
}

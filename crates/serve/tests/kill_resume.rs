//! End-to-end serving tests: crash/resume equivalence, thread-count
//! determinism, backpressure shedding, input validation, and checkpoint
//! retention — all against a real trained model.

use std::path::PathBuf;
use std::sync::OnceLock;
use tranad::{train, OnlineVerdict, TrainedTranad, TranadConfig};
use tranad_data::TimeSeries;
use tranad_serve::{Engine, EngineConfig, PushOutcome, ServeError};
use tranad_tensor::pool;

const DIMS: usize = 2;

/// Deterministic pseudo-noise, a pure function of its coordinates.
fn jitter(stream: usize, t: usize, d: usize) -> f64 {
    let x = t as f64 * 12.9898 + stream as f64 * 78.233 + d as f64 * 37.719;
    (x.sin() * 43758.5453).fract() - 0.5
}

fn point(stream: usize, t: usize) -> Vec<f64> {
    let x = t as f64;
    vec![
        (x / 11.0 + stream as f64).sin() + 0.05 * jitter(stream, t, 0),
        (x / 7.0).cos() * 0.5 + 0.04 * jitter(stream, t, 1),
    ]
}

/// Trains the shared tiny model once per test process and persists it so
/// each test can cheaply load its own copy.
fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let rows: Vec<f64> = (0..400).flat_map(|t| point(7, t)).collect();
        let series = TimeSeries::from_rows(rows, 400, DIMS);
        let config = TranadConfig::builder()
            .epochs(2)
            .window(6)
            .context(12)
            .ff_hidden(16)
            .dropout(0.0)
            .build()
            .unwrap();
        let (trained, _) = train(&series, config).unwrap();
        let path = std::env::temp_dir()
            .join(format!("tranad_serve_test_model_{}.json", std::process::id()));
        trained.save(&path).unwrap();
        path
    })
}

fn load_model() -> TrainedTranad {
    TrainedTranad::load(model_path()).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tranad_serve_test_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Feeds `points` of every stream into `engine` (batching every 8 pushes)
/// and returns the verdicts per stream index.
fn feed(engine: &mut Engine, streams: &[&str], from: &[usize], to: usize) -> Vec<Vec<OnlineVerdict>> {
    let mut out = vec![Vec::new(); streams.len()];
    let lo = from.iter().copied().min().unwrap_or(0);
    for t in lo..to {
        for (s, name) in streams.iter().enumerate() {
            if t >= from[s] {
                engine.push(name, &point(s, t)).unwrap();
            }
        }
        if t % 8 == 7 {
            for sv in engine.run_batch().unwrap().verdicts {
                let name = engine.stream_name(sv.stream).unwrap().to_string();
                let s = streams.iter().position(|n| *n == name).unwrap();
                out[s].extend(sv.verdicts);
            }
        }
    }
    for (name, vs) in engine.drain().unwrap() {
        let s = streams.iter().position(|n| *n == name).unwrap();
        out[s].extend(vs);
    }
    out
}

fn assert_bitwise_eq(a: &[OnlineVerdict], b: &[OnlineVerdict], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: verdict counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.anomalous, y.anomalous, "{what}: verdict {i} diverged");
        assert_eq!(x.dim_labels, y.dim_labels, "{what}: labels {i} diverged");
        for (d, (p, q)) in x.scores.iter().zip(&y.scores).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{what}: score {i} dim {d} diverged");
        }
    }
}

#[test]
fn kill_and_resume_matches_uninterrupted_run() {
    let streams = ["alpha", "beta"];
    let total = 160;
    let kill_at = 90;

    let mut reference = Engine::new(load_model(), EngineConfig::default()).unwrap();
    let expected = feed(&mut reference, &streams, &[0, 0], total);

    let dir = tmp_dir("kr");
    let config = EngineConfig { checkpoint_every: 24, batch_max: 8, ..EngineConfig::default() };
    let mut victim = Engine::resume(load_model(), config, &dir).unwrap();
    for t in 0..kill_at {
        for (s, name) in streams.iter().enumerate() {
            victim.push(name, &point(s, t)).unwrap();
        }
        if t % 8 == 7 {
            victim.run_batch().unwrap();
        }
    }
    drop(victim); // crash: queued points and post-checkpoint progress lost

    let mut resumed = Engine::resume(load_model(), config, &dir).unwrap();
    assert!(resumed.processed() > 0, "resume must restore lifetime counters");
    let from: Vec<usize> =
        streams.iter().map(|n| resumed.stream_seen(n).unwrap() as usize).collect();
    for &f in &from {
        assert!(f > 0 && f <= kill_at, "checkpointed progress out of range: {f}");
    }
    let got = feed(&mut resumed, &streams, &from, total);
    for (s, name) in streams.iter().enumerate() {
        assert_bitwise_eq(&expected[s][from[s]..], &got[s], name);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Streams with different cadences: stream `s` produces its `n`-th point
/// at `t = n * (s + 1)`, so queue depths are permanently uneven and every
/// batch runs ragged rounds (some streams drop out before others).
fn feed_cadenced(
    engine: &mut Engine,
    streams: &[&str],
    seen: &[usize],
    to: usize,
) -> Vec<Vec<OnlineVerdict>> {
    let mut out = vec![Vec::new(); streams.len()];
    for t in 0..to {
        for (s, name) in streams.iter().enumerate() {
            if t % (s + 1) == 0 && t / (s + 1) >= seen[s] {
                engine.push(name, &point(s, t)).unwrap();
            }
        }
        if t % 8 == 7 {
            for sv in engine.run_batch().unwrap().verdicts {
                let name = engine.stream_name(sv.stream).unwrap().to_string();
                let s = streams.iter().position(|n| *n == name).unwrap();
                out[s].extend(sv.verdicts);
            }
        }
    }
    for (name, vs) in engine.drain().unwrap() {
        let s = streams.iter().position(|n| *n == name).unwrap();
        out[s].extend(vs);
    }
    out
}

#[test]
fn checkpoint_mid_ragged_round_resumes_exactly() {
    let streams = ["fast", "mid", "slow"];
    let total = 120;
    let kill_at = 71;
    // batch_max 4 with an every-8 batch cadence leaves the fast stream a
    // growing backlog, so batches are taken mid-backlog at uneven depths;
    // checkpoint_every 5 fires right after such ragged batches.
    let config = EngineConfig::builder()
        .batch_max(4)
        .checkpoint_every(5)
        .build()
        .unwrap();

    let mut reference = Engine::new(load_model(), config).unwrap();
    let expected = feed_cadenced(&mut reference, &streams, &[0, 0, 0], total);

    let dir = tmp_dir("ragged");
    let mut victim = Engine::resume(load_model(), config, &dir).unwrap();
    for t in 0..kill_at {
        for (s, name) in streams.iter().enumerate() {
            if t % (s + 1) == 0 {
                victim.push(name, &point(s, t)).unwrap();
            }
        }
        if t % 8 == 7 {
            victim.run_batch().unwrap();
        }
    }
    drop(victim); // crash with streams checkpointed at unequal progress

    let mut resumed = Engine::resume(load_model(), config, &dir).unwrap();
    let seen: Vec<usize> =
        streams.iter().map(|n| resumed.stream_seen(n).unwrap() as usize).collect();
    assert!(
        seen.windows(2).any(|w| w[0] != w[1]),
        "expected a ragged checkpoint (unequal per-stream progress), got {seen:?}"
    );
    let got = feed_cadenced(&mut resumed, &streams, &seen, total);
    for (s, name) in streams.iter().enumerate() {
        assert_bitwise_eq(&expected[s][seen[s]..], &got[s], name);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verdicts_are_identical_across_thread_counts() {
    let streams = ["a", "b", "c"];
    let run = |threads: usize| {
        pool::with_threads(threads, || {
            let mut engine = Engine::new(load_model(), EngineConfig::default()).unwrap();
            feed(&mut engine, &streams, &[0, 0, 0], 96)
        })
    };
    let serial = run(1);
    let parallel = run(8);
    for (s, name) in streams.iter().enumerate() {
        assert_eq!(serial[s].len(), 96);
        assert_bitwise_eq(&serial[s], &parallel[s], name);
    }
}

#[test]
fn full_queue_sheds_instead_of_blocking_or_growing() {
    let config = EngineConfig { max_queue: 4, ..EngineConfig::default() };
    let mut engine = Engine::new(load_model(), config).unwrap();
    for t in 0..4 {
        assert_eq!(
            engine.push("s", &point(0, t)).unwrap(),
            PushOutcome::Enqueued { depth: t + 1 }
        );
    }
    for t in 4..7 {
        assert_eq!(engine.push("s", &point(0, t)).unwrap(), PushOutcome::Shed { depth: 4 });
    }
    assert_eq!(engine.queued("s"), Some(4));
    assert_eq!(engine.shed_total(), 3);
    // The queue drains and keeps serving after shedding.
    let verdicts = engine.drain().unwrap();
    assert_eq!(verdicts["s"].len(), 4);
    assert_eq!(engine.queued("s"), Some(0));
}

#[test]
fn malformed_input_is_rejected_before_the_queue() {
    let mut engine = Engine::new(load_model(), EngineConfig::default()).unwrap();
    assert!(matches!(engine.push("s", &[1.0]), Err(ServeError::Detector(_))));
    assert!(matches!(engine.push("s", &[f64::NAN, 0.0]), Err(ServeError::Detector(_))));
    assert!(matches!(engine.push("s", &[0.0, f64::INFINITY]), Err(ServeError::Detector(_))));
    // Rejected pushes never even create the stream, and serving works
    // normally afterwards.
    assert_eq!(engine.queued("s"), None);
    engine.push("s", &point(0, 0)).unwrap();
    assert_eq!(engine.drain().unwrap()["s"].len(), 1);
}

#[test]
fn old_checkpoints_are_pruned() {
    let dir = tmp_dir("prune");
    let config = EngineConfig {
        checkpoint_every: 4,
        batch_max: 4,
        keep_checkpoints: 2,
        ..EngineConfig::default()
    };
    let mut engine = Engine::resume(load_model(), config, &dir).unwrap();
    for t in 0..32 {
        engine.push("s", &point(0, t)).unwrap();
        if t % 4 == 3 {
            engine.run_batch().unwrap();
        }
    }
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(files.len(), 2, "expected 2 retained checkpoints, found {files:?}");
    assert!(files.iter().all(|f| f.starts_with("ckpt-") && f.ends_with(".json")));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bounded_state_over_long_streams() {
    let mut engine = Engine::new(load_model(), EngineConfig::default()).unwrap();
    let cap = {
        let c = engine.trained().model.config();
        c.window.max(c.context)
    };
    for t in 0..2_000 {
        engine.push("s", &point(0, t)).unwrap();
        if t % 64 == 63 {
            engine.run_batch().unwrap();
        }
    }
    engine.drain().unwrap();
    assert_eq!(engine.stream_seen("s"), Some(2_000));
    assert!(
        engine.state_rows() <= cap,
        "one stream must keep at most {cap} rows, found {}",
        engine.state_rows()
    );
}

//! The tentpole guarantee of cross-stream batched serving: at any stream
//! count, any (ragged) queue depths and any thread count, the batched path
//! ([`Engine::run_batch`]) produces verdicts bitwise-identical to the
//! per-stream reference path ([`Engine::run_batch_per_stream`]).
//!
//! Every forward kernel reduces per row with a summation order that
//! depends only on the row, so stacking n streams into one `[n, window,
//! m]` forward must not move a single f64 bit — this test pins that
//! property instead of trusting it.

use std::path::PathBuf;
use std::sync::OnceLock;
use tranad::{train, OnlineVerdict, TrainedTranad, TranadConfig};
use tranad_data::TimeSeries;
use tranad_serve::{Engine, EngineConfig};
use tranad_tensor::pool;

const DIMS: usize = 2;

fn jitter(stream: usize, t: usize, d: usize) -> f64 {
    let x = t as f64 * 12.9898 + stream as f64 * 78.233 + d as f64 * 37.719;
    (x.sin() * 43758.5453).fract() - 0.5
}

fn point(stream: usize, t: usize) -> Vec<f64> {
    let x = t as f64;
    vec![
        (x / 11.0 + stream as f64).sin() + 0.05 * jitter(stream, t, 0),
        (x / 7.0).cos() * 0.5 + 0.04 * jitter(stream, t, 1),
    ]
}

fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let rows: Vec<f64> = (0..400).flat_map(|t| point(7, t)).collect();
        let series = TimeSeries::from_rows(rows, 400, DIMS);
        let config = TranadConfig::builder()
            .epochs(2)
            .window(6)
            .context(12)
            .ff_hidden(16)
            .dropout(0.0)
            .build()
            .unwrap();
        let (trained, _) = train(&series, config).unwrap();
        let path = std::env::temp_dir()
            .join(format!("tranad_batch_parity_model_{}.json", std::process::id()));
        trained.save(&path).unwrap();
        path
    })
}

fn load_model() -> TrainedTranad {
    TrainedTranad::load(model_path()).unwrap()
}

/// Queue depth of stream `s` before batch cycle `round`: cycles through
/// 0..=4 with a stream- and round-dependent phase, so every cycle mixes
/// empty, shallow and deep streams (ragged rounds, idle streams).
fn depth(s: usize, round: usize) -> usize {
    (s * 7 + round * 3) % 5
}

/// Serves `rounds` batch cycles over `n` streams with ragged depths and
/// returns every verdict per stream, scoring batches through `run`.
fn serve(
    n: usize,
    rounds: usize,
    run: impl Fn(&mut Engine) -> Vec<tranad_serve::StreamVerdicts>,
) -> Vec<Vec<OnlineVerdict>> {
    let mut engine = Engine::new(load_model(), EngineConfig::default()).unwrap();
    let names: Vec<String> = (0..n).map(|s| format!("stream-{s}")).collect();
    let ids: Vec<_> =
        names.iter().map(|name| engine.stream_id(name).unwrap()).collect();
    let mut t = vec![0usize; n];
    let mut out = vec![Vec::new(); n];
    for round in 0..rounds {
        for s in 0..n {
            for _ in 0..depth(s, round) {
                engine.push_id(ids[s], &point(s, t[s])).unwrap();
                t[s] += 1;
            }
        }
        for sv in run(&mut engine) {
            out[sv.stream.index()].extend(sv.verdicts);
        }
    }
    out
}

fn assert_bitwise_eq(a: &[OnlineVerdict], b: &[OnlineVerdict], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: verdict counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.anomalous, y.anomalous, "{what}: verdict {i} diverged");
        assert_eq!(x.dim_labels, y.dim_labels, "{what}: labels {i} diverged");
        for (d, (p, q)) in x.scores.iter().zip(&y.scores).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{what}: score {i} dim {d} diverged");
        }
    }
}

#[test]
fn batched_equals_per_stream_bitwise_at_any_stream_and_thread_count() {
    for &n in &[1usize, 2, 7, 32] {
        // 32 streams is the throughput case; keep its round count small so
        // the debug-mode per-stream reference stays fast.
        let rounds = if n >= 32 { 4 } else { 8 };
        let batched_1 = pool::with_threads(1, || {
            serve(n, rounds, |e| e.run_batch().unwrap().verdicts)
        });
        let reference_1 = pool::with_threads(1, || {
            serve(n, rounds, |e| e.run_batch_per_stream().unwrap().verdicts)
        });
        let batched_8 = pool::with_threads(8, || {
            serve(n, rounds, |e| e.run_batch().unwrap().verdicts)
        });
        let reference_8 = pool::with_threads(8, || {
            serve(n, rounds, |e| e.run_batch_per_stream().unwrap().verdicts)
        });
        let total: usize = batched_1.iter().map(Vec::len).sum();
        assert!(total > 0, "n={n}: the schedule produced no work");
        for s in 0..n {
            let what = |mode: &str| format!("n={n} stream {s}: {mode}");
            assert_bitwise_eq(&batched_1[s], &reference_1[s], &what("batched vs per-stream, 1 thread"));
            assert_bitwise_eq(&batched_1[s], &batched_8[s], &what("batched, 1 vs 8 threads"));
            assert_bitwise_eq(&batched_1[s], &reference_8[s], &what("batched vs per-stream, 8 threads"));
        }
    }
}

//! Engine observability state: `run_batch` publishes a per-stream stats
//! table and health inputs into the shared [`EngineObs`] `Arc`, `/readyz`
//! semantics flip on the first batch, and the published numbers track the
//! engine's own counters — all against a real trained model.

use std::path::PathBuf;
use std::sync::OnceLock;
use tranad::{train, TrainedTranad, TranadConfig};
use tranad_data::TimeSeries;
use tranad_serve::{Engine, EngineConfig, HealthConfig, PushOutcome, ServeError};

const DIMS: usize = 2;

fn jitter(stream: usize, t: usize, d: usize) -> f64 {
    let x = t as f64 * 12.9898 + stream as f64 * 78.233 + d as f64 * 37.719;
    (x.sin() * 43758.5453).fract() - 0.5
}

fn point(stream: usize, t: usize) -> Vec<f64> {
    let x = t as f64;
    vec![
        (x / 11.0 + stream as f64).sin() + 0.05 * jitter(stream, t, 0),
        (x / 7.0).cos() * 0.5 + 0.04 * jitter(stream, t, 1),
    ]
}

fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let rows: Vec<f64> = (0..400).flat_map(|t| point(7, t)).collect();
        let series = TimeSeries::from_rows(rows, 400, DIMS);
        let config = TranadConfig::builder()
            .epochs(2)
            .window(6)
            .context(12)
            .ff_hidden(16)
            .dropout(0.0)
            .build()
            .unwrap();
        let (trained, _) = train(&series, config).unwrap();
        let path = std::env::temp_dir()
            .join(format!("tranad_serve_obs_model_{}.json", std::process::id()));
        trained.save(&path).unwrap();
        path
    })
}

fn load_model() -> TrainedTranad {
    TrainedTranad::load(model_path()).unwrap()
}

#[test]
fn run_batch_publishes_stats_and_flips_ready() {
    let mut engine = Engine::new(load_model(), EngineConfig::default()).unwrap();
    let obs = engine.obs();

    // Before any batch: registered streams are visible, but the engine is
    // not ready (it has never published a batch).
    let web = engine.stream_id("web").unwrap();
    let db = engine.stream_id("db").unwrap();
    let snap = obs.snapshot();
    assert!(!snap.published);
    assert_eq!(snap.status.streams, 2);
    let names: Vec<&str> = snap.streams.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, vec!["web", "db"], "registration order");
    assert!(snap.streams[0].last_score.is_nan(), "no verdict yet");
    let health = obs.health();
    assert!(health.healthy && !health.ready);

    // Queue a few points: `queued` is only published at batch boundaries,
    // so the table still shows zeros until run_batch.
    for t in 0..10 {
        engine.push_id(web, &point(0, t)).unwrap();
        engine.push_id(db, &point(1, t)).unwrap();
    }
    assert_eq!(obs.snapshot().streams[0].queued, 0);

    let report = engine.run_batch().unwrap();
    assert_eq!(report.processed, 20);
    let snap = obs.snapshot();
    assert!(snap.published);
    assert_eq!(snap.status.processed, 20);
    assert_eq!(snap.status.batches, 1);
    assert_eq!(snap.status.shed, 0);
    assert!(snap.last_batch_age_s.unwrap() >= 0.0);
    for row in &snap.streams {
        assert_eq!(row.seen, 10);
        assert_eq!(row.queued, 0);
        assert_eq!(row.queue_hwm, 10);
        assert!(row.last_score.is_finite(), "a verdict stamps last_score");
        assert!(row.threshold.is_finite(), "live SPOT threshold published");
    }
    let health = obs.health();
    assert!(health.ready && health.healthy, "first batch makes the engine ready");
}

#[test]
fn shed_counts_reach_the_published_stats() {
    // Queue of 4: overfilling must shed per stream and the published table
    // must carry both the per-stream and engine-wide shed totals.
    let config = EngineConfig { max_queue: 4, ..EngineConfig::default() };
    let mut engine = Engine::new(load_model(), config).unwrap();
    let obs = engine.obs();
    let web = engine.stream_id("web").unwrap();
    let mut shed = 0;
    for t in 0..7 {
        match engine.push_id(web, &point(0, t)).unwrap() {
            PushOutcome::Enqueued { .. } => {}
            PushOutcome::Shed { depth } => {
                assert_eq!(depth, 4);
                shed += 1;
            }
        }
    }
    assert_eq!(shed, 3);

    let report = engine.run_batch().unwrap();
    assert_eq!(report.processed, 4);
    let snap = obs.snapshot();
    assert_eq!(snap.status.shed, 3);
    assert_eq!(snap.streams[0].shed, 3);
    assert_eq!(snap.streams[0].queue_hwm, 4);
    assert_eq!(snap.status.queue_saturation, 0.0, "batch drained the queue");
    assert!(obs.health().healthy);
}

#[test]
fn queue_saturation_beyond_threshold_turns_the_engine_unhealthy() {
    // batch_max 1 against a 4-deep queue: a batch leaves a backlog, so the
    // published saturation (3/4) exceeds the 0.5 threshold and health (and
    // with it readiness) goes red until further batches drain the queue.
    let config = EngineConfig {
        max_queue: 4,
        batch_max: 1,
        health: HealthConfig { max_queue_saturation: 0.5, ..HealthConfig::default() },
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(load_model(), config).unwrap();
    let obs = engine.obs();
    let web = engine.stream_id("web").unwrap();
    for t in 0..4 {
        engine.push_id(web, &point(0, t)).unwrap();
    }
    assert_eq!(engine.run_batch().unwrap().processed, 1);
    let snap = obs.snapshot();
    assert_eq!(snap.streams[0].queued, 3);
    assert!((snap.status.queue_saturation - 0.75).abs() < 1e-12);
    let health = obs.health();
    assert!(!health.healthy, "3/4 saturation breaches the 0.5 limit");
    assert!(!health.ready, "an unhealthy engine is not ready");
    let failed: Vec<&str> =
        health.conditions.iter().filter(|c| !c.ok).map(|c| c.name).collect();
    assert_eq!(failed, vec!["queue_saturation"]);

    // Drain the backlog: health recovers.
    for _ in 0..3 {
        engine.run_batch().unwrap();
    }
    let snap = obs.snapshot();
    assert_eq!(snap.status.queue_saturation, 0.0);
    let health = obs.health();
    assert!(health.healthy && health.ready);
}

#[test]
fn checkpoint_lag_is_published_and_cleared_by_checkpoints() {
    let dir = std::env::temp_dir()
        .join(format!("tranad_serve_obs_ckpt_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = EngineConfig {
        checkpoint_every: 8,
        health: HealthConfig { max_checkpoint_lag: 6, ..HealthConfig::default() },
        ..EngineConfig::default()
    };
    let mut engine = Engine::resume(load_model(), config, &dir).unwrap();
    let obs = engine.obs();
    let web = engine.stream_id("web").unwrap();

    // 4 points: lag 4 <= 6, healthy, no checkpoint yet.
    for t in 0..4 {
        engine.push_id(web, &point(0, t)).unwrap();
    }
    let report = engine.run_batch().unwrap();
    assert!(report.checkpoint.is_none());
    let snap = obs.snapshot();
    assert_eq!(snap.status.checkpoint_lag, 4);
    assert!(snap.last_checkpoint_age_s.is_none());
    assert!(obs.health().healthy);

    // 4 more: the automatic policy checkpoints at 8, clearing the lag.
    for t in 4..8 {
        engine.push_id(web, &point(0, t)).unwrap();
    }
    let report = engine.run_batch().unwrap();
    assert!(report.checkpoint.is_some());
    let snap = obs.snapshot();
    assert_eq!(snap.status.checkpoint_lag, 0, "checkpoint resets the published lag");
    assert!(snap.last_checkpoint_age_s.is_some());
    assert!(obs.health().healthy && obs.health().ready);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn builder_rejects_out_of_range_health_thresholds() {
    let bad = HealthConfig { max_queue_saturation: 2.0, ..HealthConfig::default() };
    assert!(matches!(
        EngineConfig::builder().health(bad).build(),
        Err(ServeError::InvalidConfig(_))
    ));
    let good = HealthConfig { max_checkpoint_lag: 100, ..HealthConfig::default() };
    let config = EngineConfig::builder().health(good).build().unwrap();
    assert_eq!(config.health.max_checkpoint_lag, 100);
}

//! # tranad-telemetry
//!
//! Event tracing and metrics for the whole workspace, with no external
//! dependencies. The design goal is a telemetry layer that costs nothing
//! when disabled: every instrumentation point goes through a [`Recorder`]
//! handle whose disabled form is a `None` — one branch, zero allocations,
//! zero atomics on the hot path.
//!
//! ## Model
//!
//! - **Events** are timestamped `(name, fields)` records ([`Event`]) pushed
//!   to an [`EventSink`]. Field values are numbers, booleans or strings.
//! - **Metrics** are named aggregates kept inside the recorder: monotonic
//!   counters ([`Recorder::add`]), last-value gauges ([`Recorder::gauge`])
//!   and log2-bucketed histograms ([`Recorder::observe`]). They are emitted
//!   as summary events by [`Recorder::flush_metrics`].
//! - **Spans** ([`span`]) are hierarchical timed regions with static
//!   names, kept on an implicit thread-local stack by RAII guards and
//!   emitted as `"span"` complete-events. Entry points install their
//!   recorder with [`Recorder::span_scope`]; instrumentation in between
//!   calls [`span::enter`] with no recorder parameter.
//!
//! ## Sinks
//!
//! - [`MemorySink`]: bounded ring buffer, for tests and programmatic
//!   inspection.
//! - [`JsonlSink`]: one JSON object per line, written through `tranad-json`
//!   so traces round-trip with the rest of the workspace's persistence.
//! - [`NullSink`]: discards everything. Constructing a recorder from it
//!   yields a *disabled* recorder — the no-op sink really compiles down to
//!   the `None` branch, not to virtual calls that drop data.
//!
//! ## Activation
//!
//! [`global()`] returns a process-wide recorder configured from the
//! `TRANAD_TRACE` environment variable: set it to a file path to get a
//! JSONL trace, leave it unset for the disabled recorder. Library code that
//! wants explicit control takes a `&Recorder` parameter instead (sink
//! injection); the env var is only the default wiring.
//!
//! ## Overhead guarantee
//!
//! With the recorder disabled, [`Recorder::emit`] never runs its closure
//! and none of the metric helpers touch memory beyond the `Option`
//! discriminant check. The bench harness pins this: `bench-alloc` asserts
//! zero additional allocations per optimizer update with telemetry
//! disabled, and `crates/tranad/tests/determinism.rs` asserts that a *live*
//! JSONL sink does not perturb bitwise determinism.

mod event;
mod metrics;
mod recorder;
mod sink;
pub mod span;

pub use event::{Event, EventBuilder, Value};
pub use metrics::{Histogram, Metric, MetricsSnapshot, BUCKETS};

/// Former name of [`MetricsSnapshot`], kept as an alias so existing callers
/// keep compiling.
pub type MetricSnapshot = MetricsSnapshot;
pub use recorder::{global, Recorder};
pub use sink::{EventSink, JsonlSink, MemorySink, NullSink};
pub use span::{SpanGuard, SpanScope};

/// Name of the environment variable that activates the global JSONL trace.
pub const TRACE_ENV: &str = "TRANAD_TRACE";

/// Setting this environment variable to `1` (alongside `TRANAD_TRACE`)
/// swaps the global recorder's clock for a deterministic counter: every
/// timestamp read advances one microsecond. Trace timings stop meaning
/// wall time and start meaning "event sequence", which is exactly what
/// golden-trace tests want.
pub const FAKETIME_ENV: &str = "TRANAD_TRACE_FAKETIME";

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_recorder_never_runs_closure() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        rec.emit("never", |_| panic!("closure must not run when disabled"));
        rec.add("c", 1);
        rec.gauge("g", 1.0);
        rec.observe("h", 1.0);
        rec.flush_metrics();
        rec.flush();
    }

    #[test]
    fn null_sink_recorder_is_disabled() {
        let rec = Recorder::new(NullSink);
        assert!(!rec.enabled());
        rec.emit("never", |_| panic!("NullSink recorder must be disabled"));
    }

    #[test]
    fn memory_sink_captures_events_in_order() {
        let sink = Arc::new(MemorySink::new(16));
        let rec = Recorder::with_sink(sink.clone());
        assert!(rec.enabled());
        rec.emit("a", |e| {
            e.f64("x", 1.5).u64("n", 3).bool("ok", true).str("tag", "first");
        });
        rec.emit("b", |e| {
            e.f64("y", -2.0);
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].get_f64("x"), Some(1.5));
        assert_eq!(events[0].get_u64("n"), Some(3));
        assert_eq!(events[0].get_str("tag"), Some("first"));
        assert_eq!(events[1].name, "b");
        assert!(events[0].time_s >= 0.0);
    }

    #[test]
    fn memory_sink_ring_evicts_oldest() {
        let sink = Arc::new(MemorySink::new(2));
        let rec = Recorder::with_sink(sink.clone());
        rec.emit("e1", |_| {});
        rec.emit("e2", |_| {});
        rec.emit("e3", |_| {});
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "e2");
        assert_eq!(events[1].name, "e3");
    }

    #[test]
    fn counters_accumulate_and_flush() {
        let sink = Arc::new(MemorySink::new(64));
        let rec = Recorder::with_sink(sink.clone());
        rec.add("pool.hits", 3);
        rec.add("pool.hits", 4);
        rec.gauge("lr", 0.1);
        rec.gauge("lr", 0.05);
        rec.observe("lat", 1.0);
        rec.observe("lat", 2.0);
        rec.observe("lat", 1000.0);
        rec.flush_metrics();
        let events = sink.events();
        let counter = events.iter().find(|e| e.name == "metric.counter").unwrap();
        assert_eq!(counter.get_str("metric"), Some("pool.hits"));
        assert_eq!(counter.get_u64("value"), Some(7));
        let gauge = events.iter().find(|e| e.name == "metric.gauge").unwrap();
        assert_eq!(gauge.get_f64("value"), Some(0.05));
        let hist = events.iter().find(|e| e.name == "metric.histogram").unwrap();
        assert_eq!(hist.get_u64("count"), Some(3));
        assert_eq!(hist.get_f64("sum"), Some(1003.0));
        assert_eq!(hist.get_f64("max"), Some(1000.0));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        h.record(1.0); // 2^0 -> bucket 32
        h.record(2.0); // 2^1 -> bucket 33
        h.record(3.9); // still 2^1 -> bucket 33
        h.record(0.25); // 2^-2 -> bucket 30
        h.record(0.0); // non-positive -> bucket 0
        h.record(-5.0); // non-positive -> bucket 0
        assert_eq!(h.buckets[32], 1);
        assert_eq!(h.buckets[33], 2);
        assert_eq!(h.buckets[30], 1);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.count, 6);
        assert_eq!(h.min, -5.0);
        assert_eq!(h.max, 3.9);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("tranad-telemetry-test-{}.jsonl", std::process::id()));
        {
            let rec = Recorder::new(JsonlSink::create(&path).unwrap());
            rec.emit("train.epoch", |e| {
                e.u64("epoch", 1).f64("loss", 0.5).bool("improved", true).str("phase", "train");
            });
            rec.add("steps", 10);
            rec.flush_metrics();
            rec.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = tranad_json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("train.epoch"));
        assert_eq!(first.get("epoch").unwrap().as_f64(), Some(1.0));
        assert_eq!(first.get("loss").unwrap().as_f64(), Some(0.5));
        let second = tranad_json::parse(lines[1]).unwrap();
        assert_eq!(second.get("event").unwrap().as_str(), Some("metric.counter"));
    }

    #[test]
    fn event_round_trips_through_json() {
        let mut b = EventBuilder::new("roundtrip", 1.25);
        b.f64("x", 3.5).u64("n", 42).bool("flag", false).str("s", "hi");
        let ev = b.finish();
        let json = ev.to_json();
        let parsed = tranad_json::parse(&json.to_string()).unwrap();
        assert_eq!(parsed.get("event").unwrap().as_str(), Some("roundtrip"));
        assert_eq!(parsed.get("t").unwrap().as_f64(), Some(1.25));
        assert_eq!(parsed.get("x").unwrap().as_f64(), Some(3.5));
        assert_eq!(parsed.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn histogram_drops_non_finite_instead_of_poisoning_aggregates() {
        let mut h = Histogram::default();
        h.record(2.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(4.0);
        assert_eq!(h.count, 2, "non-finite samples must not count");
        assert_eq!(h.dropped, 3);
        assert_eq!(h.sum, 6.0);
        assert_eq!(h.mean(), 3.0, "one NaN must not poison the mean forever");
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.buckets[0], 0, "dropped samples must not land in bucket 0");
        // Finite negatives still aggregate (bucket 0 is for them).
        h.record(-5.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.min, -5.0);
    }

    #[test]
    fn histogram_dropped_count_flushes_when_present() {
        let sink = Arc::new(MemorySink::new(8));
        let rec = Recorder::with_sink(sink.clone());
        rec.observe("lat", 1.0);
        rec.observe("lat", f64::NAN);
        rec.flush_metrics();
        let hist = &sink.named("metric.histogram")[0];
        assert_eq!(hist.get_u64("count"), Some(1));
        assert_eq!(hist.get_u64("dropped"), Some(1));
        assert_eq!(hist.get_f64("mean"), Some(1.0));
    }

    #[test]
    fn histogram_quantiles_track_log2_buckets() {
        let mut h = Histogram::default();
        assert!(h.quantile(0.5).is_nan());
        for _ in 0..98 {
            h.record(1.5); // bucket 32, upper edge 2
        }
        h.record(100.0); // bucket 38
        h.record(1000.0); // bucket 41
        assert_eq!(h.quantile(0.0), 1.5, "q=0 clamps to min");
        assert_eq!(h.quantile(0.5), 2.0, "median is bucket 32's upper edge");
        assert_eq!(h.quantile(0.99), 128.0, "p99 lands in the 100.0 bucket");
        assert_eq!(h.quantile(1.0), 1000.0, "q=1 clamps to max");
        // A single observation: every quantile is that value.
        let mut one = Histogram::default();
        one.record(3.0);
        assert_eq!(one.quantile(0.5), 3.0);
    }

    #[test]
    fn quantile_rejects_non_finite_and_out_of_range_q() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        // A q that is not a probability is answered with NaN, never with a
        // silently clamped bucket walk.
        assert!(h.quantile(f64::NAN).is_nan());
        assert!(h.quantile(-0.1).is_nan());
        assert!(h.quantile(1.1).is_nan());
        assert!(h.quantile(f64::INFINITY).is_nan());
        assert!(h.quantile(f64::NEG_INFINITY).is_nan());
        // Valid extremes still work exactly as before.
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 8.0);
        // An empty histogram is NaN for every q, valid or not.
        let empty = Histogram::default();
        assert!(empty.quantile(0.5).is_nan());
        assert!(empty.quantile(-0.1).is_nan());
    }

    #[test]
    fn bucket_boundaries_are_increasing_and_cover_the_clamp() {
        use crate::metrics::BUCKETS;
        assert_eq!(Histogram::bucket_upper(32), 2.0, "bucket 32 covers [1, 2)");
        assert_eq!(Histogram::bucket_upper(33), 4.0);
        assert_eq!(Histogram::bucket_upper(BUCKETS - 1), f64::INFINITY);
        for i in 1..BUCKETS {
            assert!(
                Histogram::bucket_upper(i - 1) < Histogram::bucket_upper(i),
                "boundaries must be strictly increasing at {i}"
            );
        }
        // Every recorded value lands in a bucket whose boundary covers it.
        for v in [1e-12, 0.3, 1.0, 1.9999, 1e9, 1e300] {
            let b = Histogram::bucket_for(v);
            assert!(v <= Histogram::bucket_upper(b), "v={v} above its bucket {b} boundary");
        }
    }

    #[test]
    fn snapshot_iterates_in_deterministic_name_order() {
        let rec = Recorder::with_sink(Arc::new(MemorySink::new(4)));
        rec.add("zeta", 1);
        rec.gauge("alpha", 2.0);
        rec.observe("mid", 3.0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        // A disabled recorder's snapshot is the empty table.
        assert!(Recorder::disabled().snapshot().is_empty());
    }

    #[test]
    fn jsonl_sink_explicit_flush_persists_tail_before_kill() {
        let path = std::env::temp_dir()
            .join(format!("tranad-telemetry-flush-{}.jsonl", std::process::id()));
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let rec = Recorder::with_sink(sink.clone());
        rec.emit("serve.batch", |e| {
            e.u64("points", 3);
        });
        rec.emit("serve.batch", |e| {
            e.u64("points", 4);
        });
        // The pre-kill flush: everything recorded so far must already be
        // readable on disk while the sink is still alive (no reliance on
        // Drop — a SIGKILL'd process never runs it).
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "tail events lost without drop");
        for line in text.lines() {
            tranad_json::parse(line).expect("flushed line is whole, not torn");
        }
        drop(rec);
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_sink_zero_cap_clamps_to_one_and_wraps() {
        let sink = Arc::new(MemorySink::new(0));
        let rec = Recorder::with_sink(sink.clone());
        rec.emit("first", |_| {});
        assert_eq!(sink.len(), 1, "cap 0 must clamp to 1, not retain nothing");
        rec.emit("second", |_| {});
        rec.emit("third", |_| {});
        let events = sink.events();
        assert_eq!(events.len(), 1, "ring must never exceed the clamped cap");
        assert_eq!(events[0].name, "third", "oldest events must be evicted");
    }

    #[test]
    fn memory_sink_ring_wraps_many_times() {
        let sink = Arc::new(MemorySink::new(3));
        let rec = Recorder::with_sink(sink.clone());
        for i in 0..10 {
            rec.emit("e", |e| {
                e.u64("i", i);
            });
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        let kept: Vec<u64> = events.iter().map(|e| e.get_u64("i").unwrap()).collect();
        assert_eq!(kept, vec![7, 8, 9], "ring must keep exactly the newest events in order");
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let sink = Arc::new(MemorySink::new(16));
        let rec = Recorder::with_sink_faketime(sink.clone());
        {
            let _scope = rec.span_scope();
            let _outer = span::enter("outer");
            {
                let _inner = span::enter("inner");
            }
            let _sibling = span::enter("sibling");
        }
        let spans = sink.named("span");
        assert_eq!(spans.len(), 3);
        // Drop order: inner closes first, then sibling, then outer.
        let inner = &spans[0];
        let sibling = &spans[1];
        let outer = &spans[2];
        assert_eq!(inner.get_str("name"), Some("inner"));
        assert_eq!(outer.get_str("name"), Some("outer"));
        assert_eq!(outer.get_u64("parent"), Some(0), "outer is a root span");
        assert_eq!(outer.get_u64("depth"), Some(0));
        assert_eq!(inner.get_u64("parent"), outer.get_u64("id"));
        assert_eq!(inner.get_u64("depth"), Some(1));
        assert_eq!(sibling.get_u64("parent"), outer.get_u64("id"));
        assert!(inner.get_f64("dur_us").unwrap() > 0.0, "faketime still orders start < end");
    }

    #[test]
    fn spans_without_installed_recorder_are_inert() {
        let g = span::enter("nothing");
        assert!(!g.is_recording());
        drop(g);
        // A disabled recorder's scope also records nothing.
        let rec = Recorder::disabled();
        let _scope = rec.span_scope();
        assert!(!span::active());
        assert!(!span::enter("still.nothing").is_recording());
    }

    #[test]
    fn span_scope_restores_previous_recorder() {
        let sink_a = Arc::new(MemorySink::new(8));
        let sink_b = Arc::new(MemorySink::new(8));
        let rec_a = Recorder::with_sink(sink_a.clone());
        let rec_b = Recorder::with_sink(sink_b.clone());
        let _outer = rec_a.span_scope();
        {
            let _inner = rec_b.span_scope();
            drop(span::enter("to.b"));
        }
        drop(span::enter("to.a"));
        assert_eq!(sink_b.named("span").len(), 1);
        assert_eq!(sink_a.named("span").len(), 1);
        assert_eq!(sink_a.named("span")[0].get_str("name"), Some("to.a"));
    }

    #[test]
    fn suppressed_spans_emit_nothing() {
        let sink = Arc::new(MemorySink::new(8));
        let rec = Recorder::with_sink(sink.clone());
        let _scope = rec.span_scope();
        let out = span::suppressed(|| {
            assert!(!span::active());
            drop(span::enter("silent"));
            span::suppressed(|| drop(span::enter("nested.silent")));
            7
        });
        assert_eq!(out, 7);
        assert!(span::active(), "suppression must end with the closure");
        assert!(sink.named("span").is_empty());
    }

    #[test]
    fn faketime_clock_is_deterministic() {
        let run = || {
            let sink = Arc::new(MemorySink::new(16));
            let rec = Recorder::with_sink_faketime(sink.clone());
            let _scope = rec.span_scope();
            drop(span::enter("a"));
            rec.emit("plain", |_| {});
            drop(span::enter("b"));
            sink.events()
                .iter()
                .map(|e| (e.name, e.time_s, e.get_f64("dur_us")))
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run(), "fake clocks must make identical runs byte-identical");
        assert!(first.windows(2).all(|w| w[0].1 < w[1].1), "fake time is strictly monotonic");
    }

    #[test]
    fn snapshot_exposes_metrics_programmatically() {
        let rec = Recorder::with_sink(Arc::new(MemorySink::new(4)));
        rec.add("jobs", 2);
        rec.observe("ms", 8.0);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("jobs"), Some(2));
        let h = snap.histogram("ms").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 8.0);
    }
}

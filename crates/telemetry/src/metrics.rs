//! In-recorder metric aggregates: counters, gauges and log2-bucketed
//! histograms. Metrics live in a `BTreeMap` keyed by static name so
//! [`crate::Recorder::flush_metrics`] emits them in a deterministic order
//! and [`crate::Recorder::snapshot`] hands out a deterministic-ordered
//! [`MetricsSnapshot`] — the point-in-time view a live metrics exporter
//! (e.g. `tranad-obs`) renders without disturbing the sink.

use std::collections::BTreeMap;

/// Number of histogram buckets. Bucket `i` (for `i >= 1`) covers values in
/// `[2^(i-32), 2^(i-31))`; bucket 0 collects non-positive values and
/// underflow. Bucket 32 therefore covers `[1, 2)`.
pub const BUCKETS: usize = 64;

/// Offset added to `floor(log2 v)` to get a bucket index.
const BUCKET_BIAS: i32 = 32;

/// A log2-bucketed histogram: constant memory, one branch + one increment
/// per observation, good enough resolution (2x) for latency and magnitude
/// distributions.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Observations per power-of-two bucket (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Non-finite observations rejected by [`Histogram::record`]. A single
    /// NaN or infinity must not poison `sum`/`mean` for the rest of the
    /// run, so they are counted here instead of aggregated.
    pub dropped: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            dropped: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: `floor(log2 v) + 32`, clamped to the
    /// array; non-positive and non-finite values land in bucket 0.
    pub fn bucket_for(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        (v.log2().floor() as i32 + BUCKET_BIAS).clamp(0, BUCKETS as i32 - 1) as usize
    }

    /// Upper boundary of bucket `i` (inclusive upper edge in the
    /// Prometheus `le` sense): bucket `i >= 1` covers `[2^(i-32), 2^(i-31))`
    /// so its boundary is `2^(i-31)`; bucket 0 (non-positive and underflow)
    /// reports `2^-31`; the last bucket also absorbs every overflowing
    /// value (see [`Histogram::bucket_for`]'s clamp), so its boundary is
    /// `+inf`. Boundaries are strictly increasing in `i`, which is exactly
    /// what a cumulative-bucket exposition needs.
    pub fn bucket_upper(i: usize) -> f64 {
        assert!(i < BUCKETS, "bucket index {i} out of range");
        if i == BUCKETS - 1 {
            return f64::INFINITY;
        }
        2f64.powi(i as i32 - BUCKET_BIAS + 1)
    }

    /// Records one observation. Non-finite values (NaN, ±inf) are counted
    /// in [`Histogram::dropped`] and otherwise ignored: folding them into
    /// `sum`/`min`/`max` would make `mean()` NaN forever after a single
    /// bad sample.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        self.buckets[Self::bucket_for(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Arithmetic mean of observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Quantile estimate from the log2 buckets (NaN when empty).
    ///
    /// Walks the cumulative bucket counts until `q * count` observations
    /// are covered and returns that bucket's upper edge, clamped to the
    /// observed `[min, max]` range — so the estimate is never coarser than
    /// one power of two and exact at the extremes (`q=0` → min, `q=1` →
    /// max up to bucket resolution). Bucket 0 (non-positive underflow)
    /// reports `min`. A `q` outside `[0, 1]` (including NaN) is not a
    /// quantile: the answer is NaN, never a silently clamped bucket walk.
    pub fn quantile(&self, q: f64) -> f64 {
        if !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return f64::NAN;
        }
        if self.count == 0 {
            return f64::NAN;
        }
        if q == 0.0 {
            return self.min;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                if i == 0 {
                    return self.min;
                }
                let upper = 2f64.powi(i as i32 - BUCKET_BIAS + 1);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One named metric.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Monotonic counter.
    Counter(u64),
    /// Last-value gauge.
    Gauge(f64),
    /// Log2-bucketed histogram (boxed: the bucket array dominates).
    Histogram(Box<Histogram>),
}

/// The recorder's metric table — and, cloned out by
/// [`crate::Recorder::snapshot`], the point-in-time metrics view exporters
/// render from. Wrapped by the recorder behind a mutex; kept as its own
/// type so tests, `flush_metrics` and scrapers can walk it without holding
/// the recorder's lock. Iteration order is the `BTreeMap`'s name order, so
/// two snapshots of the same metrics render identically.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Metrics by name, sorted (BTreeMap) for deterministic emission.
    pub metrics: BTreeMap<&'static str, Metric>,
}

impl MetricsSnapshot {
    /// Deterministic (name-ordered) iteration over every metric.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Metric)> {
        self.metrics.iter().map(|(&name, metric)| (name, metric))
    }

    /// Number of distinct metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when the snapshot holds no metrics (e.g. taken from a
    /// disabled recorder).
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
    /// Adds `n` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &'static str, n: u64) {
        if let Metric::Counter(c) = self.metrics.entry(name).or_insert(Metric::Counter(0)) {
            *c += n;
        }
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &'static str, v: f64) {
        *self.metrics.entry(name).or_insert(Metric::Gauge(v)) = Metric::Gauge(v);
    }

    /// Records an observation in the named histogram.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        if let Metric::Histogram(h) =
            self.metrics.entry(name).or_insert_with(|| Metric::Histogram(Box::default()))
        {
            h.record(v);
        }
    }

    /// Current value of a counter, if one exists under that name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)? {
            Metric::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Current value of a gauge, if one exists under that name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name)? {
            Metric::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// The named histogram, if one exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name)? {
            Metric::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }
}

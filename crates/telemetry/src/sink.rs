//! Event sinks: where finished [`Event`]s go.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// Receives finished events. Implementations must be `Send + Sync`: the
/// thread pool's worker threads and the bench grid both record from
/// multiple threads.
pub trait EventSink: Send + Sync {
    /// Accepts one event. Must not panic on I/O trouble (drop instead):
    /// telemetry failures must never take down a training run.
    fn record(&self, event: Event);

    /// Flushes any buffered output. Default: nothing to do.
    fn flush(&self) {}

    /// `true` when this sink provably discards everything, letting
    /// [`crate::Recorder::new`] collapse to the disabled (zero-cost) form.
    fn is_noop(&self) -> bool {
        false
    }
}

/// Discards every event. A recorder built on this sink is *disabled* (the
/// `Option` inside the recorder is `None`), so the no-op path really is one
/// branch — no virtual dispatch, no event construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: Event) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// Bounded in-memory ring buffer. When full, the oldest event is evicted.
/// Intended for tests and interactive inspection.
pub struct MemorySink {
    cap: usize,
    events: Mutex<VecDeque<Event>>,
}

impl MemorySink {
    /// A ring that retains at most `cap` events (`cap` is clamped to 1+).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        MemorySink { cap, events: Mutex::new(VecDeque::with_capacity(cap.min(1024))) }
    }

    /// Snapshot of retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained events with the given name, oldest first.
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events.lock().unwrap().iter().filter(|e| e.name == name).cloned().collect()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: Event) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(event);
    }
}

/// Writes one JSON object per line through `tranad-json`. Each line is
/// flushed as it is written: the process-global recorder is a static that
/// never drops, so buffering would silently lose the tail of every
/// `TRANAD_TRACE` run that forgets to flush. The cost is one small write
/// syscall per event — acceptable even at span rates (per tape-op),
/// because tracing is an opt-in diagnostic mode, never the default path.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)) })
    }

    /// Explicitly flushes buffered lines to disk. Callers that own the
    /// sink (rather than going through a `dyn EventSink`) can call this at
    /// durability boundaries — e.g. a serving engine flushes between
    /// batches so a kill right after a batch loses no tail events. The
    /// sink also flushes per record and on drop, so this is the belt to
    /// those suspenders: it stays correct even if per-record flushing is
    /// ever relaxed for throughput.
    pub fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: Event) {
        let line = event.to_json().to_string();
        let mut w = self.writer.lock().unwrap();
        // Telemetry never aborts the run: I/O errors drop the event.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn flush(&self) {
        JsonlSink::flush(self);
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

//! Hierarchical spans: RAII guards over an implicit thread-local stack.
//!
//! A span is one timed region with a static name. Nesting is implicit:
//! [`enter`] reads the current `(span id, depth)` from a thread-local
//! cell, stamps the new span's parent from it, and the returned
//! [`SpanGuard`] restores it on drop — so the "stack" is the Rust scope
//! structure itself, with no `Vec`, no allocation, and no bookkeeping
//! beyond one `Cell` swap per span.
//!
//! ## Wiring
//!
//! Spans report to the *installed* recorder of the current thread, set by
//! [`Recorder::span_scope`] at library entry points (training, detection,
//! POT calibration, the bench runner). Code in between — tape ops, the
//! optimizer, attention — calls [`enter`] without threading a `&Recorder`
//! through every signature. With no recorder installed (or a disabled one),
//! [`enter`] is two thread-local reads and a branch: zero allocation, zero
//! events, which is what keeps the bench-alloc 486 allocs/step gate green.
//!
//! ## Determinism under the thread pool
//!
//! Only the thread that installed a scope emits spans: pool workers never
//! install one, and the submitting thread wraps inline task execution in
//! [`suppressed`]. Every span is therefore emitted serially from the
//! orchestrating thread, in an order fixed by program structure — a trace
//! taken at `TRANAD_THREADS=8` contains the same spans as one taken at 1
//! thread, preserving the pool's bitwise-determinism guarantee (asserted
//! in `crates/tranad/tests/determinism.rs`).
//!
//! ## Event shape
//!
//! Each completed span is one `"span"` event: `name`, `id` (1-based,
//! per-recorder), `parent` (0 for roots), `depth`, `start` (seconds on the
//! recorder clock) and `dur_us`. Complete-events (rather than begin/end
//! pairs) halve trace volume and make every line self-contained for
//! `trace-report`.

use std::cell::{Cell, RefCell};

use crate::recorder::Recorder;

thread_local! {
    /// The recorder spans on this thread report to, installed by
    /// [`SpanScope`]. `None` (the default) means spans are no-ops.
    static SPAN_RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    /// Head of the implicit span stack: (current span id, depth).
    /// `(0, 0)` means "at the root".
    static CURRENT: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
    /// Non-zero while span emission is suppressed (inside pool tasks).
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// Installs `rec` as the current thread's span recorder; [`SpanScope`]
/// restores the previous one. Prefer [`Recorder::span_scope`].
pub fn install(rec: &Recorder) -> SpanScope {
    let new = if rec.enabled() { Some(rec.clone()) } else { None };
    let prev = SPAN_RECORDER.with(|r| r.replace(new));
    SpanScope { prev }
}

/// RAII handle for an installed span recorder (see [`install`]). Restores
/// the previously installed recorder when dropped, so entry points nest
/// correctly (e.g. the bench runner installing its recorder around a
/// training call that installs the same one again).
pub struct SpanScope {
    prev: Option<Recorder>,
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        SPAN_RECORDER.with(|r| *r.borrow_mut() = prev);
    }
}

/// `true` when a span entered right now would actually be recorded. Lets
/// callers skip work that only feeds span fields (e.g. gauge reads).
pub fn active() -> bool {
    SUPPRESS.with(|s| s.get()) == 0 && SPAN_RECORDER.with(|r| r.borrow().is_some())
}

/// Opens a span named `name`. The returned guard emits one `"span"` event
/// when dropped; nested [`enter`] calls in between become its children.
/// With no recorder installed — or inside [`suppressed`] — this is a
/// branch and returns an inert guard.
pub fn enter(name: &'static str) -> SpanGuard {
    if SUPPRESS.with(|s| s.get()) != 0 {
        return SpanGuard { live: None };
    }
    let Some(rec) = SPAN_RECORDER.with(|r| r.borrow().clone()) else {
        return SpanGuard { live: None };
    };
    let (parent, depth) = CURRENT.with(|c| c.get());
    let id = rec.next_span_id();
    CURRENT.with(|c| c.set((id, depth + 1)));
    let start_s = rec.now_s();
    SpanGuard { live: Some(LiveSpan { rec, name, id, parent, depth, start_s }) }
}

/// Runs `f` with span emission suppressed on this thread. Used by the
/// thread pool around inline task execution: per-task spans would differ
/// between serial and parallel schedules (and race on emission), so tasks
/// run silent and the submitting thread reports one span per region.
pub fn suppressed<R>(f: impl FnOnce() -> R) -> R {
    struct Undo;
    impl Drop for Undo {
        fn drop(&mut self) {
            SUPPRESS.with(|s| s.set(s.get() - 1));
        }
    }
    SUPPRESS.with(|s| s.set(s.get() + 1));
    let _undo = Undo;
    f()
}

struct LiveSpan {
    rec: Recorder,
    name: &'static str,
    id: u64,
    parent: u64,
    depth: u32,
    start_s: f64,
}

/// RAII span handle from [`enter`]. Dropping it closes the span: the
/// thread's stack head is restored and one complete-event is emitted.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// `true` when this guard will emit an event on drop.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        CURRENT.with(|c| c.set((live.parent, live.depth)));
        let dur_us = (live.rec.now_s() - live.start_s) * 1e6;
        live.rec.emit("span", |e| {
            e.str("name", live.name)
                .u64("id", live.id)
                .u64("parent", live.parent)
                .u64("depth", live.depth as u64)
                .f64("start", live.start_s)
                .f64("dur_us", dur_us);
        });
    }
}

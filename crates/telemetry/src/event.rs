//! Event records: a timestamp, a static name and a flat list of fields.
//!
//! Field keys and event names are `&'static str` so the enabled path
//! allocates only for the field vector and any string *values*; the
//! disabled path never constructs an event at all (see
//! [`crate::Recorder::emit`]).

use tranad_json::Json;

/// A single field value. Numbers stay `f64`/`u64` until serialization so
/// in-memory sinks can be queried without parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A floating-point field (losses, seconds, thresholds).
    F64(f64),
    /// An integer field (epochs, counts). Serialized as a JSON number;
    /// exact up to 2^53 like the rest of `tranad-json`.
    U64(u64),
    /// A boolean field (improved, fallback, ok).
    Bool(bool),
    /// A string field (method names, error messages).
    Str(String),
}

/// One telemetry event: what happened (`name`), when (`time_s`, seconds
/// since the recorder was created) and the event-specific fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Seconds since the owning recorder was created.
    pub time_s: f64,
    /// Event name, dot-namespaced by subsystem (`train.epoch`, `pot.fit`,
    /// `pool.buffers`, `bench.cell`, ...).
    pub name: &'static str,
    /// Ordered `(key, value)` pairs; keys are unique per event.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The field named `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Numeric field accessor (accepts both float and integer fields).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Integer field accessor.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// String field accessor.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean field accessor.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the event as one flat JSON object:
    /// `{"t": <time_s>, "event": <name>, <fields...>}`.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(self.fields.len() + 2);
        pairs.push(("t".to_string(), Json::Num(self.time_s)));
        pairs.push(("event".to_string(), Json::Str(self.name.to_string())));
        for (k, v) in &self.fields {
            let jv = match v {
                Value::F64(x) => Json::Num(*x),
                Value::U64(n) => Json::Num(*n as f64),
                Value::Bool(b) => Json::Bool(*b),
                Value::Str(s) => Json::Str(s.clone()),
            };
            pairs.push((k.to_string(), jv));
        }
        Json::obj(pairs)
    }
}

/// Builds one [`Event`] inside [`crate::Recorder::emit`]'s closure. The
/// builder only exists on the enabled path.
pub struct EventBuilder {
    event: Event,
}

impl EventBuilder {
    /// Starts an event with the given name and timestamp.
    pub fn new(name: &'static str, time_s: f64) -> Self {
        EventBuilder { event: Event { time_s, name, fields: Vec::with_capacity(8) } }
    }

    /// Adds a float field.
    pub fn f64(&mut self, key: &'static str, value: f64) -> &mut Self {
        self.event.fields.push((key, Value::F64(value)));
        self
    }

    /// Adds an integer field.
    pub fn u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.event.fields.push((key, Value::U64(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &'static str, value: bool) -> &mut Self {
        self.event.fields.push((key, Value::Bool(value)));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &'static str, value: impl Into<String>) -> &mut Self {
        self.event.fields.push((key, Value::Str(value.into())));
        self
    }

    /// Finalizes the event.
    pub fn finish(self) -> Event {
        self.event
    }
}

//! The [`Recorder`] handle and the process-global recorder.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::EventBuilder;
use crate::metrics::{Metric, MetricsSnapshot};
use crate::sink::{EventSink, JsonlSink};

/// Event timestamp source. The fake variant stamps a monotonic counter
/// (one microsecond per read) instead of wall time, so golden-trace tests
/// can assert exact output. Selected by [`Recorder::with_sink_faketime`]
/// or the `TRANAD_TRACE_FAKETIME` environment variable.
enum Clock {
    Real(Instant),
    Fake(AtomicU64),
}

impl Clock {
    fn now_s(&self) -> f64 {
        match self {
            Clock::Real(start) => start.elapsed().as_secs_f64(),
            Clock::Fake(ticks) => ticks.fetch_add(1, Ordering::Relaxed) as f64 * 1e-6,
        }
    }
}

struct Inner {
    sink: Arc<dyn EventSink>,
    clock: Clock,
    /// Monotonic span-id sequence (per recorder, so parallel tests with
    /// their own recorders stay deterministic). Id 0 is reserved for "no
    /// parent" — the first span gets id 1.
    span_seq: AtomicU64,
    metrics: Mutex<MetricsSnapshot>,
}

/// A cheap, cloneable telemetry handle. A disabled recorder is a `None`:
/// every entry point checks one discriminant and returns, so instrumented
/// hot paths cost nothing when tracing is off — no allocation, no locking,
/// no event construction (the `emit` closure is never called).
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The zero-cost disabled recorder (same as `Recorder::default()`).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder feeding `sink`. If the sink reports itself as a no-op
    /// ([`EventSink::is_noop`]), the result is the disabled recorder.
    pub fn new(sink: impl EventSink + 'static) -> Self {
        Self::with_sink(Arc::new(sink))
    }

    /// Like [`Recorder::new`] but shares an existing sink handle, so the
    /// caller can keep inspecting it (e.g. a `MemorySink` in a test).
    pub fn with_sink(sink: Arc<dyn EventSink>) -> Self {
        Self::build(sink, false)
    }

    /// Like [`Recorder::with_sink`] but with the deterministic fake clock:
    /// every timestamp read advances a counter by one microsecond instead
    /// of consulting `Instant`. Meant for golden-trace tests that assert
    /// exact output; runs stamped this way are reproducible bit for bit.
    pub fn with_sink_faketime(sink: Arc<dyn EventSink>) -> Self {
        Self::build(sink, true)
    }

    fn build(sink: Arc<dyn EventSink>, faketime: bool) -> Self {
        if sink.is_noop() {
            return Self::disabled();
        }
        let clock =
            if faketime { Clock::Fake(AtomicU64::new(0)) } else { Clock::Real(Instant::now()) };
        Recorder {
            inner: Some(Arc::new(Inner {
                sink,
                clock,
                span_seq: AtomicU64::new(0),
                metrics: Mutex::new(MetricsSnapshot::default()),
            })),
        }
    }

    /// Builds the recorder the `TRANAD_TRACE` environment variable asks
    /// for: a JSONL recorder writing to that path, or disabled when the
    /// variable is unset/empty (or the file cannot be created). Setting
    /// `TRANAD_TRACE_FAKETIME=1` swaps in the deterministic clock.
    pub fn from_env() -> Self {
        match std::env::var(crate::TRACE_ENV) {
            Ok(path) if !path.is_empty() => match JsonlSink::create(&path) {
                Ok(sink) => {
                    let fake = std::env::var(crate::FAKETIME_ENV).is_ok_and(|v| v == "1");
                    Self::build(Arc::new(sink), fake)
                }
                Err(_) => Self::disabled(),
            },
            _ => Self::disabled(),
        }
    }

    /// `true` when events and metrics are actually collected.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs this recorder as the current thread's span recorder for
    /// the returned scope's lifetime (see [`crate::span`]). Entry points
    /// that take a `&Recorder` call this once at the top so every
    /// [`crate::span::enter`] below them reports here. A disabled
    /// recorder installs "no spans", which is the correct ownership
    /// semantics: the entry point's recorder decides, not an outer one.
    pub fn span_scope(&self) -> crate::span::SpanScope {
        crate::span::install(self)
    }

    /// Seconds since recorder start on this recorder's clock (0.0 when
    /// disabled). Fake clocks tick one microsecond per read.
    pub(crate) fn now_s(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| i.clock.now_s())
    }

    /// Next span id (1-based; 0 means "no parent"). 0 when disabled.
    pub(crate) fn next_span_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.span_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Records one event. The closure receives an [`EventBuilder`] to fill
    /// in fields; it is **only called when the recorder is enabled**, so
    /// callers may compute expensive fields inside it for free on the
    /// disabled path.
    #[inline]
    pub fn emit(&self, name: &'static str, fill: impl FnOnce(&mut EventBuilder)) {
        let Some(inner) = &self.inner else { return };
        let mut b = EventBuilder::new(name, inner.clock.now_s());
        fill(&mut b);
        inner.sink.record(b.finish());
    }

    /// Adds `n` to a monotonic counter.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.lock().unwrap().add(name, n);
    }

    /// Sets a last-value gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, v: f64) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.lock().unwrap().gauge(name, v);
    }

    /// Records one observation in a log2-bucketed histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, v: f64) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.lock().unwrap().observe(name, v);
    }

    /// A point-in-time copy of the current metric table (empty when
    /// disabled). This is the read path for live exporters: it holds the
    /// metrics mutex only for the clone, never touches the sink, and on a
    /// disabled recorder it returns the (allocation-free) empty snapshot —
    /// so scraping a serving process perturbs neither the event stream nor
    /// the disabled-path alloc budget.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.lock().unwrap().clone(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Emits every metric as a summary event (`metric.counter`,
    /// `metric.gauge`, `metric.histogram`) in name order. Metrics keep
    /// accumulating afterwards; call at natural boundaries (end of
    /// training, end of a bench cell).
    pub fn flush_metrics(&self) {
        let Some(inner) = &self.inner else { return };
        let snap = inner.metrics.lock().unwrap().clone();
        for (name, metric) in &snap.metrics {
            let t = inner.clock.now_s();
            let b = match metric {
                Metric::Counter(c) => {
                    let mut b = EventBuilder::new("metric.counter", t);
                    b.str("metric", *name).u64("value", *c);
                    b
                }
                Metric::Gauge(g) => {
                    let mut b = EventBuilder::new("metric.gauge", t);
                    b.str("metric", *name).f64("value", *g);
                    b
                }
                Metric::Histogram(h) => {
                    let mut b = EventBuilder::new("metric.histogram", t);
                    b.str("metric", *name)
                        .u64("count", h.count)
                        .f64("sum", h.sum)
                        .f64("min", h.min)
                        .f64("max", h.max)
                        .f64("mean", h.mean());
                    if h.dropped > 0 {
                        b.u64("dropped", h.dropped);
                    }
                    // Only non-empty buckets, as "b<index>" fields.
                    for (i, &n) in h.buckets.iter().enumerate() {
                        if n > 0 {
                            b.u64(BUCKET_KEYS[i], n);
                        }
                    }
                    b
                }
            };
            inner.sink.record(b.finish());
        }
    }

    /// Flushes the sink (file sinks write through to disk).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// Static field keys `"b0"`..`"b63"` so histogram emission needs no
/// allocation-per-key and keys stay `&'static str`.
static BUCKET_KEYS: [&str; crate::metrics::BUCKETS] = [
    "b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9", "b10", "b11", "b12", "b13", "b14",
    "b15", "b16", "b17", "b18", "b19", "b20", "b21", "b22", "b23", "b24", "b25", "b26", "b27",
    "b28", "b29", "b30", "b31", "b32", "b33", "b34", "b35", "b36", "b37", "b38", "b39", "b40",
    "b41", "b42", "b43", "b44", "b45", "b46", "b47", "b48", "b49", "b50", "b51", "b52", "b53",
    "b54", "b55", "b56", "b57", "b58", "b59", "b60", "b61", "b62", "b63",
];

/// The process-wide recorder, configured once from `TRANAD_TRACE` on first
/// use. Library entry points that do not take an explicit `&Recorder`
/// default to this.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::from_env)
}

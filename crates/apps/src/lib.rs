//! # tranad-apps
//!
//! Host crate for the workspace-level runnable examples (`/examples`) and
//! cross-crate integration tests (`/tests`). Contains no library code of
//! its own — see the `tranad` crate for the public API.

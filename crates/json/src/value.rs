//! The JSON value tree and its printers.

use std::fmt;

/// A JSON document. Objects preserve insertion order (a `Vec` of pairs —
/// the repo's objects have a handful of keys, so linear lookup wins over a
/// map and keeps output deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values print as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required key in an object, with a descriptive error.
    pub fn req(&self, key: &str) -> Result<&Json, crate::JsonError> {
        self.get(key)
            .ok_or_else(|| crate::JsonError::new(format!("missing key {key:?}")))
    }

    /// The numeric value, if this is a number (or `null`, read as NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty rendering with 2-space indentation. (The compact single-line
    /// form is the `Display` impl, i.e. `v.to_string()`.)
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.iter(), |out, item, d| {
                    item.write(out, indent, d)
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.iter(), |out, (k, v), d| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    write_item: impl Fn(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

/// Writes a number using Rust's shortest-round-trip float formatting (the
/// `{:?}` form always includes a decimal point or exponent, but plain
/// integers print bare, which is valid JSON either way).
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 1e15 {
        // Integral values: print without the trailing ".0". Negative zero
        // must keep its sign ("-0" parses back to -0.0), which the `as i64`
        // cast would drop.
        if n == 0.0 && n.is_sign_negative() {
            out.push_str("-0");
        } else {
            out.push_str(&format!("{}", n as i64));
        }
    } else {
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("a", Json::Num(1.0)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::obj([("k", Json::Arr(vec![Json::Num(1.0)]))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn strings_escape_controls() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn get_finds_keys_in_order() {
        let v = Json::obj([("x", Json::Num(1.0)), ("y", Json::Num(2.0))]);
        assert_eq!(v.get("y").unwrap().as_f64().unwrap(), 2.0);
        assert!(v.get("z").is_none());
    }
}

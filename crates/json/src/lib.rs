//! # tranad-json
//!
//! A minimal, dependency-free JSON value type, parser and printer, written
//! so the workspace builds hermetically (no crates.io `serde`/`serde_json`).
//! It covers exactly what the repo persists: model snapshots, benchmark
//! result rows and experiment tables — flat structs of numbers, strings,
//! booleans and nested arrays.
//!
//! Conversions go through the [`ToJson`] / [`FromJson`] traits, implemented
//! by hand per type. Numbers are `f64` (like JSON itself); `u64`/`usize`
//! fields round-trip exactly up to 2^53 and by saturation beyond it (so
//! `usize::MAX` sentinels survive). Non-finite floats serialize as `null`
//! and parse back as NaN, since JSON has no NaN/inf literals.
//!
//! ```
//! use tranad_json::{parse, Json, ToJson};
//!
//! let v = parse(r#"{"name": "TranAD", "f1": 0.96, "tags": [1, 2]}"#).unwrap();
//! assert_eq!(v.get("name").unwrap().as_str().unwrap(), "TranAD");
//! assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 2);
//! assert_eq!(1.5f64.to_json().to_string(), "1.5");
//! ```

mod parse;
mod value;

pub use parse::{parse, JsonError};
pub use value::Json;

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Types that can be rebuilt from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses `self` out of a JSON value, with a descriptive error on
    /// structural mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Implements [`ToJson`]/[`FromJson`] for a struct by listing its fields
/// once, so the two directions can't drift apart:
///
/// ```
/// use tranad_json::{impl_json_struct, FromJson, ToJson};
///
/// struct Row { name: String, f1: f64 }
/// impl_json_struct!(Row { name, f1 });
///
/// let row = Row { name: "TranAD".into(), f1: 0.96 };
/// let back = Row::from_json(&tranad_json::parse(&row.to_json().to_string()).unwrap()).unwrap();
/// assert_eq!(back.name, "TranAD");
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::obj([
                    $((stringify!($field), $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::FromJson::from_json(v.req(stringify!($field))?)?,)*
                })
            }
        }
    };
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::new(format!("expected number, got {v}")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other}"))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!("expected string, got {other}"))),
        }
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| JsonError::new(format!("expected integer, got {v}")))?;
                // Integral, non-negative, within range. Values above 2^53
                // (e.g. `usize::MAX` sentinels) round-trip by saturation.
                if n.fract() != 0.0 || n < 0.0 || n > <$t>::MAX as f64 {
                    return Err(JsonError::new(format!("{n} is not a valid {}", stringify!($t))));
                }
                Ok(n as $t)
            }
        }
    )*};
}
int_json!(u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!("expected array, got {other}"))),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::new(format!("expected 2-element array, got {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_struct_like_object() {
        let v = Json::obj([
            ("name", "TranAD".to_json()),
            ("f1", 0.9605.to_json()),
            ("epochs", 10usize.to_json()),
            ("scores", vec![vec![1.0, 2.0], vec![3.0, 4.5]].to_json()),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(Vec::<Vec<f64>>::from_json(back.get("scores").unwrap()).unwrap().len(), 2);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 2.0f64.powi(52) + 1.0, -0.0, 1e308] {
            let text = v.to_json().to_string();
            let back = f64::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text} -> {back}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(f64::NAN.to_json().to_string(), "null");
        assert!(f64::from_json(&parse("null").unwrap()).unwrap().is_nan());
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(bool::from_json(&Json::Num(1.0)).is_err());
        assert!(String::from_json(&Json::Bool(true)).is_err());
        assert!(u32::from_json(&Json::Num(1.5)).is_err());
        assert!(u32::from_json(&Json::Num(-2.0)).is_err());
    }
}

//! Recursive-descent JSON parser.

use crate::value::Json;
use std::fmt;

/// A parse or decode failure, with byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for characters beyond the BMP.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": ""}"#).unwrap();
        assert_eq!(v.get("c").unwrap(), &Json::Str(String::new()));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b").unwrap(), &Json::Null);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\é😀");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\" 1}", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_pretty_output() {
        let v = parse(r#"{"rows": [{"f1": 0.9605, "name": "TranAD"}]}"#).unwrap();
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }
}

//! DSPOT — Drift-aware Streaming Peaks-Over-Threshold (Siffer et al., 2017
//! §4.3): the stream is detrended by a moving average of the last `depth`
//! non-alarm observations, and SPOT runs on the residuals. Handles the
//! slowly-shifting operating points that plain SPOT cannot (e.g. the
//! WADI-style train/test regime gap).

use crate::pot::PotConfig;
use crate::spot::Spot;
use std::collections::VecDeque;

/// A drift-aware streaming thresholder.
#[derive(Debug, Clone)]
pub struct Dspot {
    spot: Spot,
    window: VecDeque<f64>,
    depth: usize,
    mean: f64,
}

impl Dspot {
    /// Initializes on calibration scores. `depth` is the moving-average
    /// window used for detrending (Siffer et al. use 10–500 depending on
    /// drift speed).
    pub fn init(calibration: &[f64], depth: usize, config: PotConfig) -> Dspot {
        assert!(depth >= 1, "depth must be positive");
        assert!(
            calibration.len() > depth + 4,
            "need more calibration than the detrending depth"
        );
        // Detrend the calibration stream the same way the live stream will
        // be detrended.
        let mut window: VecDeque<f64> = calibration[..depth].iter().copied().collect();
        let mut mean: f64 = window.iter().sum::<f64>() / depth as f64;
        let mut residuals = Vec::with_capacity(calibration.len() - depth);
        for &x in &calibration[depth..] {
            residuals.push(x - mean);
            mean += (x - window.pop_front().expect("window non-empty")) / depth as f64;
            window.push_back(x);
        }
        Dspot { spot: Spot::init(&residuals, config), window, depth, mean }
    }

    /// The current absolute alarm threshold (residual threshold plus the
    /// moving average).
    pub fn threshold(&self) -> f64 {
        self.spot.threshold + self.mean
    }

    /// Consumes one score; returns `true` on alarm. Alarms update neither
    /// the tail model nor the moving average.
    pub fn step(&mut self, score: f64) -> bool {
        let residual = score - self.mean;
        if self.spot.step(residual) {
            return true;
        }
        self.mean += (score - self.window.pop_front().expect("window non-empty")) / self.depth as f64;
        self.window.push_back(score);
        false
    }

    /// Labels a whole stream.
    pub fn label_stream(&mut self, scores: &[f64]) -> Vec<bool> {
        scores.iter().map(|&s| self.step(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn tracks_strong_linear_drift() {
        // The stream's level doubles over time — far beyond what plain SPOT
        // absorbs — yet DSPOT's detrending keeps false alarms rare.
        let calib: Vec<f64> = noisy(3000, 1).iter().map(|v| 1.0 + 0.2 * v).collect();
        let mut dspot = Dspot::init(&calib, 50, PotConfig { q: 1e-4, level: 0.05 });
        let mut fp = 0;
        for (i, v) in noisy(4000, 2).iter().enumerate() {
            let drifted = 1.0 + 1.0 * i as f64 / 4000.0 + 0.2 * v;
            if dspot.step(drifted) {
                fp += 1;
            }
        }
        assert!(fp < 40, "false alarms under drift: {fp}");
        // A genuine jump above the drifted level still alarms.
        assert!(dspot.step(10.0));
    }

    #[test]
    fn alarm_does_not_move_average() {
        let calib: Vec<f64> = noisy(1000, 3);
        let mut dspot = Dspot::init(&calib, 20, PotConfig { q: 1e-3, level: 0.05 });
        let before = dspot.threshold();
        for _ in 0..20 {
            assert!(dspot.step(50.0));
        }
        assert!((dspot.threshold() - before).abs() < 1e-12);
    }

    #[test]
    fn threshold_follows_level() {
        let calib: Vec<f64> = noisy(1000, 4);
        let mut dspot = Dspot::init(&calib, 20, PotConfig { q: 1e-3, level: 0.05 });
        let t0 = dspot.threshold();
        // Feed a higher but in-band plateau slowly via small steps.
        for v in noisy(500, 5) {
            dspot.step(0.3 + v);
        }
        assert!(dspot.threshold() > t0, "threshold should track the level");
    }

    #[test]
    #[should_panic(expected = "more calibration")]
    fn rejects_short_calibration() {
        Dspot::init(&[1.0; 10], 20, PotConfig::default());
    }
}

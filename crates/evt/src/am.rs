//! Annual Maximum (block maxima) thresholding — the alternative EVT method
//! the paper compares against POT (§3.5: "we have observed 7.2% higher F1
//! scores on an average for TranAD with POT than AM").
//!
//! Block maxima are fitted with a Gumbel distribution via the method of
//! moments; the threshold is the return level at risk `q`.

/// Annual-Maximum configuration.
#[derive(Debug, Clone, Copy)]
pub struct AmConfig {
    /// Number of observations per block.
    pub block_size: usize,
    /// Risk: probability that a block maximum exceeds the threshold.
    pub q: f64,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig { block_size: 100, q: 1e-2 }
    }
}

/// Fitted annual-maximum thresholder.
#[derive(Debug, Clone, Copy)]
pub struct AnnualMaximum {
    /// Gumbel location parameter.
    pub mu: f64,
    /// Gumbel scale parameter.
    pub beta: f64,
    /// Final anomaly threshold (return level at the configured risk).
    pub threshold: f64,
}

impl AnnualMaximum {
    /// Fits block maxima of the calibration scores.
    pub fn fit(scores: &[f64], config: AmConfig) -> AnnualMaximum {
        assert!(config.block_size > 0, "block size must be positive");
        assert!(!scores.is_empty(), "AM needs calibration scores");
        let maxima: Vec<f64> = scores
            .chunks(config.block_size)
            .map(|b| b.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        let n = maxima.len() as f64;
        let mean = maxima.iter().sum::<f64>() / n;
        let var = maxima.iter().map(|&m| (m - mean) * (m - mean)).sum::<f64>() / n;
        // Gumbel moments: mean = mu + gamma_e * beta, var = pi^2/6 * beta^2.
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let beta = (6.0 * var).sqrt() / std::f64::consts::PI;
        let mu = mean - EULER_GAMMA * beta;
        // Return level: P(max > z) = q  =>  z = mu - beta ln(-ln(1 - q)).
        let threshold = if beta > 0.0 {
            mu - beta * (-(1.0 - config.q).ln()).ln()
        } else {
            // Degenerate (constant) maxima: never flag calibration data.
            mean + mean.abs() * 0.01 + 1e-12
        };
        AnnualMaximum { mu, beta, threshold }
    }

    /// Labels each score against the fitted threshold.
    pub fn label(&self, scores: &[f64]) -> Vec<bool> {
        scores.iter().map(|&s| s >= self.threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_tensor::Rng;

    fn uniform_scores(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.range_f64(0.0, 1.0)).collect()
    }

    #[test]
    fn threshold_above_typical_values() {
        let scores = uniform_scores(20_000, 1);
        let am = AnnualMaximum::fit(&scores, AmConfig { block_size: 100, q: 1e-3 });
        assert!(am.threshold > 0.99, "threshold {}", am.threshold);
    }

    #[test]
    fn detects_outliers() {
        let scores = uniform_scores(10_000, 2);
        let am = AnnualMaximum::fit(&scores, AmConfig::default());
        let labels = am.label(&[0.5, 5.0]);
        assert!(!labels[0]);
        assert!(labels[1]);
    }

    #[test]
    fn risk_monotonicity() {
        let scores = uniform_scores(20_000, 3);
        let strict = AnnualMaximum::fit(&scores, AmConfig { block_size: 100, q: 1e-4 });
        let loose = AnnualMaximum::fit(&scores, AmConfig { block_size: 100, q: 0.2 });
        assert!(strict.threshold > loose.threshold);
    }

    #[test]
    fn constant_scores_degenerate() {
        let scores = vec![2.0; 1000];
        let am = AnnualMaximum::fit(&scores, AmConfig::default());
        assert!(am.label(&scores).iter().all(|&b| !b));
    }
}

//! # tranad-evt
//!
//! Extreme-value-theory thresholding for anomaly scores, as used across the
//! TranAD reproduction:
//!
//! - [`pot`]: Peaks-Over-Threshold with Grimshaw GPD fitting — the paper's
//!   primary thresholding method (risk `q = 1e-4`, per-dataset low
//!   quantiles).
//! - [`am`]: the Annual Maximum (block maxima / Gumbel) alternative the
//!   paper reports as ~7% worse.
//! - [`spot`]: the streaming SPOT variant (init on train scores, adapt on
//!   non-alarm test scores) used by the detection pipeline.
//! - [`dspot`]: the drift-aware DSPOT variant (moving-average detrending).
//! - [`ndt`]: Non-parametric Dynamic Thresholding for the LSTM-NDT baseline.
//! - [`gpd`]: the underlying Generalized Pareto fitting machinery.

pub mod am;
pub mod dspot;
pub mod error;
pub mod gpd;
pub mod ndt;
pub mod pot;
pub mod spot;

pub use am::{AmConfig, AnnualMaximum};
pub use error::PotError;
pub use gpd::{fit_gpd, fit_gpd_detailed, GpdFit, GpdFitInfo};
pub use ndt::{Ndt, NdtConfig};
pub use pot::{pot_labels, quantile, try_quantile, Pot, PotConfig};
pub use dspot::Dspot;
pub use spot::{Spot, SpotParts};

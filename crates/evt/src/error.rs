//! Typed errors for POT/SPOT calibration, replacing the panicking
//! assertions on the detection hot path.

use std::fmt;

/// Why a POT/SPOT fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PotError {
    /// No calibration scores were supplied.
    EmptyCalibration,
    /// Calibration scores contain NaN, so no quantile is defined.
    NonFiniteScores,
    /// The configuration is out of range (q or level outside (0,1), ...).
    InvalidConfig(String),
    /// Checkpointed SPOT state is inconsistent (non-finite thresholds or
    /// peaks, out-of-range risk, ...), so restoring it would mislabel the
    /// stream.
    InvalidParts(String),
}

impl fmt::Display for PotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PotError::EmptyCalibration => write!(f, "POT needs calibration scores"),
            PotError::NonFiniteScores => write!(f, "calibration scores contain NaN"),
            PotError::InvalidConfig(msg) => write!(f, "invalid POT config: {msg}"),
            PotError::InvalidParts(msg) => write!(f, "invalid SPOT checkpoint state: {msg}"),
        }
    }
}

impl std::error::Error for PotError {}

//! Generalized Pareto Distribution (GPD) fitting for Peaks-Over-Threshold.
//!
//! Implements Grimshaw's reduction of the two-parameter GPD maximum
//! likelihood problem to a one-dimensional root search, with a
//! method-of-moments fallback for degenerate samples, following
//! Siffer et al., "Anomaly Detection in Streams with Extreme Value Theory"
//! (KDD 2017).

/// Fitted GPD parameters for exceedances `y >= 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpdFit {
    /// Shape parameter γ (xi). Positive: heavy tail; negative: bounded tail.
    pub gamma: f64,
    /// Scale parameter σ > 0.
    pub sigma: f64,
    /// Log-likelihood of the sample under the fit.
    pub log_likelihood: f64,
}

/// How a GPD fit was obtained — the "fit iterations" telemetry: how many
/// candidate parameter pairs were scored and how many Grimshaw roots the
/// search found, plus whether the sample was degenerate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpdFitInfo {
    /// Candidate `(gamma, sigma)` pairs evaluated by likelihood.
    pub candidates: usize,
    /// Roots found by the Grimshaw one-dimensional search.
    pub roots: usize,
    /// `true` when the sample was (almost) constant and the fit collapsed
    /// to the degenerate exponential.
    pub degenerate: bool,
}

/// Fits a GPD to non-negative exceedances by maximum likelihood
/// (Grimshaw's trick), falling back to method of moments.
///
/// Panics if `peaks` is empty or contains negative values.
pub fn fit_gpd(peaks: &[f64]) -> GpdFit {
    fit_gpd_detailed(peaks).0
}

/// [`fit_gpd`] plus a [`GpdFitInfo`] describing the search.
pub fn fit_gpd_detailed(peaks: &[f64]) -> (GpdFit, GpdFitInfo) {
    assert!(!peaks.is_empty(), "cannot fit GPD to zero peaks");
    assert!(
        peaks.iter().all(|&p| p >= 0.0),
        "exceedances must be non-negative"
    );
    let n = peaks.len() as f64;
    let mean = peaks.iter().sum::<f64>() / n;
    let min = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = peaks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    // Degenerate sample: all peaks (almost) identical.
    if max - min < 1e-12 || mean < 1e-300 {
        return (
            GpdFit {
                gamma: 0.0,
                sigma: mean.max(1e-12),
                log_likelihood: f64::NEG_INFINITY,
            },
            GpdFitInfo { candidates: 0, roots: 0, degenerate: true },
        );
    }

    let mut candidates: Vec<(f64, f64)> = Vec::new(); // (gamma, sigma)

    // Grimshaw: roots x of w(x) = u(x) v(x) - 1 where
    //   u(x) = 1 + mean(log(1 + x y_i)),  v(x) = mean(1 / (1 + x y_i)),
    // searched over (-1/max, 0) and (0, 2*(mean-min)/min^2).
    let u = |x: f64| 1.0 + peaks.iter().map(|&y| (1.0 + x * y).ln()).sum::<f64>() / n;
    let v = |x: f64| peaks.iter().map(|&y| 1.0 / (1.0 + x * y)).sum::<f64>() / n;
    let w = |x: f64| u(x) * v(x) - 1.0;

    let mut roots_found = 0usize;
    let eps = 1e-8 / max;
    let lo_bound = -1.0 / max + eps;
    let hi_bound = 2.0 * (mean - min) / (min * min).max(1e-12);
    for (a, b) in [(lo_bound, -eps), (eps, hi_bound.max(eps * 2.0))] {
        for x in find_roots(w, a, b, 64) {
            roots_found += 1;
            let gamma = u(x) - 1.0;
            if x.abs() > 1e-300 {
                let sigma = gamma / x;
                if sigma > 0.0 {
                    candidates.push((gamma, sigma));
                }
            }
        }
    }

    // Method of moments: gamma = 0.5*(1 - mean^2/var), sigma = mean*(1-gamma).
    let var = peaks.iter().map(|&y| (y - mean) * (y - mean)).sum::<f64>() / n;
    if var > 1e-300 {
        let gamma_mom = 0.5 * (1.0 - mean * mean / var);
        let sigma_mom = mean * (1.0 - gamma_mom);
        if sigma_mom > 0.0 {
            candidates.push((gamma_mom, sigma_mom));
        }
    }
    // Exponential fit (gamma -> 0) is always a valid candidate.
    candidates.push((0.0, mean));

    let info = GpdFitInfo { candidates: candidates.len(), roots: roots_found, degenerate: false };
    let mut best = GpdFit { gamma: 0.0, sigma: mean, log_likelihood: f64::NEG_INFINITY };
    for (gamma, sigma) in candidates {
        let ll = gpd_log_likelihood(peaks, gamma, sigma);
        if ll > best.log_likelihood {
            best = GpdFit { gamma, sigma, log_likelihood: ll };
        }
    }
    (best, info)
}

/// Log-likelihood of exceedances under GPD(γ, σ).
pub fn gpd_log_likelihood(peaks: &[f64], gamma: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let n = peaks.len() as f64;
    if gamma.abs() < 1e-9 {
        // Exponential limit.
        -n * sigma.ln() - peaks.iter().sum::<f64>() / sigma
    } else {
        let mut acc = 0.0;
        for &y in peaks {
            let t = 1.0 + gamma * y / sigma;
            if t <= 0.0 {
                return f64::NEG_INFINITY;
            }
            acc += t.ln();
        }
        -n * sigma.ln() - (1.0 + 1.0 / gamma) * acc
    }
}

/// GPD quantile helper: the anomaly threshold
/// `z_q = t + (σ/γ) ((q n / N_t)^{-γ} - 1)` from POT, where `t` is the
/// initial threshold, `n` the number of observations and `n_peaks` the
/// number of exceedances.
pub fn pot_quantile(fit: &GpdFit, t: f64, q: f64, n_obs: usize, n_peaks: usize) -> f64 {
    let r = q * n_obs as f64 / n_peaks as f64;
    if fit.gamma.abs() < 1e-9 {
        t - fit.sigma * r.ln()
    } else {
        t + (fit.sigma / fit.gamma) * (r.powf(-fit.gamma) - 1.0)
    }
}

/// Finds sign-change roots of `f` on `[a, b]` by grid scan + bisection.
fn find_roots(f: impl Fn(f64) -> f64, a: f64, b: f64, grid: usize) -> Vec<f64> {
    let mut roots = Vec::new();
    if !(a.is_finite() && b.is_finite()) || a >= b {
        return roots;
    }
    let step = (b - a) / grid as f64;
    let mut x0 = a;
    let mut f0 = f(x0);
    for i in 1..=grid {
        let x1 = a + step * i as f64;
        let f1 = f(x1);
        if f0.is_finite() && f1.is_finite() && f0 * f1 < 0.0 {
            // Bisection refinement.
            let (mut lo, mut hi, mut flo) = (x0, x1, f0);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let fm = f(mid);
                if flo * fm <= 0.0 {
                    hi = mid;
                } else {
                    lo = mid;
                    flo = fm;
                }
            }
            roots.push(0.5 * (lo + hi));
        }
        x0 = x1;
        f0 = f1;
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_tensor::Rng;

    /// Samples from GPD(gamma, sigma) by inverse transform.
    fn sample_gpd(gamma: f64, sigma: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.range_f64(1e-12, 1.0);
                if gamma.abs() < 1e-12 {
                    -sigma * u.ln()
                } else {
                    sigma / gamma * (u.powf(-gamma) - 1.0)
                }
            })
            .collect()
    }

    #[test]
    fn recovers_exponential() {
        let peaks = sample_gpd(0.0, 2.0, 20_000, 1);
        let fit = fit_gpd(&peaks);
        assert!(fit.gamma.abs() < 0.05, "gamma {}", fit.gamma);
        assert!((fit.sigma - 2.0).abs() < 0.1, "sigma {}", fit.sigma);
    }

    #[test]
    fn recovers_heavy_tail() {
        let peaks = sample_gpd(0.3, 1.0, 20_000, 2);
        let fit = fit_gpd(&peaks);
        assert!((fit.gamma - 0.3).abs() < 0.08, "gamma {}", fit.gamma);
        assert!((fit.sigma - 1.0).abs() < 0.1, "sigma {}", fit.sigma);
    }

    #[test]
    fn recovers_bounded_tail() {
        let peaks = sample_gpd(-0.2, 1.0, 20_000, 3);
        let fit = fit_gpd(&peaks);
        assert!((fit.gamma + 0.2).abs() < 0.08, "gamma {}", fit.gamma);
    }

    #[test]
    fn degenerate_identical_peaks() {
        let fit = fit_gpd(&[0.5; 10]);
        assert!(fit.sigma > 0.0);
        assert_eq!(fit.gamma, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero peaks")]
    fn empty_panics() {
        fit_gpd(&[]);
    }

    #[test]
    fn quantile_monotone_in_risk() {
        let peaks = sample_gpd(0.1, 1.0, 5_000, 4);
        let fit = fit_gpd(&peaks);
        let z4 = pot_quantile(&fit, 10.0, 1e-4, 100_000, peaks.len());
        let z3 = pot_quantile(&fit, 10.0, 1e-3, 100_000, peaks.len());
        let z2 = pot_quantile(&fit, 10.0, 1e-2, 100_000, peaks.len());
        assert!(z4 > z3 && z3 > z2, "quantiles {z4} {z3} {z2}");
        assert!(z2 > 10.0, "threshold must exceed initial threshold");
    }

    #[test]
    fn likelihood_prefers_true_params() {
        let peaks = sample_gpd(0.2, 1.5, 10_000, 5);
        let good = gpd_log_likelihood(&peaks, 0.2, 1.5);
        let bad = gpd_log_likelihood(&peaks, -0.4, 0.3);
        assert!(good > bad);
    }
}

//! Peaks-Over-Threshold (POT) dynamic thresholding (Siffer et al., 2017),
//! as used by OmniAnomaly, USAD and TranAD to turn anomaly scores into
//! binary labels without ground-truth calibration.

use crate::error::PotError;
use crate::gpd::{fit_gpd_detailed, pot_quantile};
use tranad_telemetry::Recorder;

/// POT configuration.
///
/// The paper (§4) uses risk coefficient `q = 1e-4` for all datasets and a
/// per-dataset "low quantile" (0.07 for SMAP, 0.01 for MSL, 0.001 for the
/// rest) that controls the initial threshold level.
#[derive(Debug, Clone, Copy)]
pub struct PotConfig {
    /// Risk coefficient: target probability of observing a score above the
    /// final threshold.
    pub q: f64,
    /// Fraction of calibration scores allowed to exceed the *initial*
    /// threshold (the "low quantile" of the paper).
    pub level: f64,
}

impl Default for PotConfig {
    fn default() -> Self {
        PotConfig { q: 1e-4, level: 0.001 }
    }
}

impl PotConfig {
    /// Creates a config with the paper's fixed risk and a dataset-specific
    /// low quantile.
    pub fn with_low_quantile(level: f64) -> Self {
        PotConfig { q: 1e-4, level }
    }

    /// Validates that both the risk and the low quantile are in (0, 1).
    pub fn check(&self) -> Result<(), PotError> {
        if !(self.q > 0.0 && self.q < 1.0) {
            return Err(PotError::InvalidConfig(format!("risk q must be in (0,1), got {}", self.q)));
        }
        if !(self.level > 0.0 && self.level < 1.0) {
            return Err(PotError::InvalidConfig(format!(
                "level must be in (0,1), got {}",
                self.level
            )));
        }
        Ok(())
    }
}

/// A fitted POT thresholder.
#[derive(Debug, Clone, Copy)]
pub struct Pot {
    /// Initial (peak-selection) threshold `t`.
    pub initial_threshold: f64,
    /// Final anomaly threshold `z_q`.
    pub threshold: f64,
    /// Number of exceedances used for the GPD fit.
    pub n_peaks: usize,
}

impl Pot {
    /// Fits POT on calibration scores (typically scores on the training or
    /// combined train+test sequence, as in the OmniAnomaly evaluation code).
    ///
    /// Returns a conservative max-based threshold if there are too few
    /// peaks to fit a tail distribution.
    ///
    /// Panics on invalid input; prefer [`Pot::try_fit`] on paths that must
    /// not abort.
    pub fn fit(scores: &[f64], config: PotConfig) -> Pot {
        match Self::try_fit(scores, config) {
            Ok(pot) => pot,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Pot::fit`]: empty calibration, NaN scores and
    /// out-of-range configs become [`PotError`]s instead of panics.
    pub fn try_fit(scores: &[f64], config: PotConfig) -> Result<Pot, PotError> {
        Self::fit_with(scores, config, &Recorder::disabled())
    }

    /// [`Pot::try_fit`] with telemetry: emits one `pot.fit` event (initial
    /// and final thresholds, peak count, GPD fit details or the fallback
    /// flag) and counts tail-fit fallbacks on `pot.tail_fit_fallbacks`.
    pub fn fit_with(scores: &[f64], config: PotConfig, rec: &Recorder) -> Result<Pot, PotError> {
        let _scope = rec.span_scope();
        let _s = tranad_telemetry::span::enter("pot.fit");
        config.check()?;
        let t = try_quantile(scores, 1.0 - config.level)?;
        let peaks: Vec<f64> = scores
            .iter()
            .filter(|&&s| s > t)
            .map(|&s| s - t)
            .collect();
        if peaks.len() < 4 {
            // Not enough tail mass for a GPD fit; fall back to the max with
            // a small safety margin.
            let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let spread = (max - t).abs().max(max.abs() * 0.01).max(1e-12);
            let pot = Pot {
                initial_threshold: t,
                threshold: max + 0.01 * spread,
                n_peaks: peaks.len(),
            };
            rec.add("pot.tail_fit_fallbacks", 1);
            rec.emit("pot.fit", |e| {
                e.u64("n_obs", scores.len() as u64)
                    .u64("n_peaks", pot.n_peaks as u64)
                    .f64("initial_threshold", pot.initial_threshold)
                    .f64("threshold", pot.threshold)
                    .bool("fallback", true);
            });
            return Ok(pot);
        }
        let (fit, info) = fit_gpd_detailed(&peaks);
        let z = pot_quantile(&fit, t, config.q, scores.len(), peaks.len());
        // The final threshold can never be below the initial threshold for
        // q below the exceedance rate; clamp for numeric safety.
        let pot = Pot {
            initial_threshold: t,
            threshold: z.max(t),
            n_peaks: peaks.len(),
        };
        rec.add("pot.fits", 1);
        rec.emit("pot.fit", |e| {
            e.u64("n_obs", scores.len() as u64)
                .u64("n_peaks", pot.n_peaks as u64)
                .f64("initial_threshold", pot.initial_threshold)
                .f64("threshold", pot.threshold)
                .bool("fallback", false)
                .f64("gamma", fit.gamma)
                .f64("sigma", fit.sigma)
                .u64("gpd_candidates", info.candidates as u64)
                .u64("gpd_roots", info.roots as u64);
        });
        Ok(pot)
    }

    /// Labels each score: `true` where `score >= threshold`.
    pub fn label(&self, scores: &[f64]) -> Vec<bool> {
        scores.iter().map(|&s| s >= self.threshold).collect()
    }
}

/// Convenience: fit POT on `calibration` and label `scores`.
pub fn pot_labels(calibration: &[f64], scores: &[f64], config: PotConfig) -> Vec<bool> {
    Pot::fit(calibration, config).label(scores)
}

/// Empirical quantile (linear interpolation, like NumPy's default).
///
/// Panics on invalid input; prefer [`try_quantile`] on paths that must not
/// abort (calibration data can contain NaN).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    match try_quantile(values, q) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`quantile`]: empty input, NaN values and an out-of-range level
/// become [`PotError`]s instead of panics, so [`Pot::try_fit`] and
/// [`crate::Spot::try_init`] propagate malformed calibration data as errors.
pub fn try_quantile(values: &[f64], q: f64) -> Result<f64, PotError> {
    if values.is_empty() {
        return Err(PotError::EmptyCalibration);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(PotError::InvalidConfig(format!("quantile level out of range: {q}")));
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(PotError::NonFiniteScores);
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Ok(if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_tensor::Rng;

    fn gaussian_scores(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.range_f64(1e-12, 1.0);
                let u2: f64 = rng.range_f64(0.0, 1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect()
    }

    #[test]
    fn quantile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 0.25), 2.0);
    }

    #[test]
    fn threshold_above_initial() {
        let scores = gaussian_scores(50_000, 1);
        let pot = Pot::fit(&scores, PotConfig { q: 1e-4, level: 0.02 });
        assert!(pot.threshold >= pot.initial_threshold);
        assert!(pot.n_peaks > 500);
    }

    #[test]
    fn few_false_positives_on_normal_data() {
        let scores = gaussian_scores(50_000, 2);
        let pot = Pot::fit(&scores, PotConfig { q: 1e-4, level: 0.02 });
        let fresh = gaussian_scores(50_000, 3);
        let fp = pot.label(&fresh).iter().filter(|&&b| b).count();
        // Expected ~q * n = 5; allow generous slack.
        assert!(fp < 60, "false positives {fp}");
    }

    #[test]
    fn detects_injected_extremes() {
        let mut scores = gaussian_scores(10_000, 4);
        let pot = Pot::fit(&scores, PotConfig { q: 1e-3, level: 0.02 });
        scores.extend([50.0, 60.0]);
        let labels = pot.label(&scores);
        assert!(labels[10_000] && labels[10_001]);
    }

    #[test]
    fn threshold_monotone_in_risk() {
        let scores = gaussian_scores(50_000, 5);
        let strict = Pot::fit(&scores, PotConfig { q: 1e-5, level: 0.02 }).threshold;
        let loose = Pot::fit(&scores, PotConfig { q: 1e-2, level: 0.02 }).threshold;
        assert!(strict > loose, "{strict} vs {loose}");
    }

    #[test]
    fn nan_calibration_is_an_error_not_a_panic() {
        let mut scores = gaussian_scores(1000, 6);
        scores[13] = f64::NAN;
        assert_eq!(try_quantile(&scores, 0.5).unwrap_err(), crate::PotError::NonFiniteScores);
        assert_eq!(
            Pot::try_fit(&scores, PotConfig::default()).unwrap_err(),
            crate::PotError::NonFiniteScores
        );
    }

    #[test]
    fn try_quantile_validates_inputs() {
        assert_eq!(try_quantile(&[], 0.5).unwrap_err(), crate::PotError::EmptyCalibration);
        assert!(matches!(
            try_quantile(&[1.0], 1.5).unwrap_err(),
            crate::PotError::InvalidConfig(_)
        ));
        assert_eq!(try_quantile(&[2.0, 1.0, 3.0], 0.5).unwrap(), 2.0);
    }

    #[test]
    fn constant_scores_fallback() {
        let scores = vec![1.0; 100];
        let pot = Pot::fit(&scores, PotConfig::default());
        // Nothing in the calibration data should be labeled anomalous.
        assert!(pot.label(&scores).iter().all(|&b| !b));
    }

    #[test]
    fn tiny_sample_fallback() {
        let scores = vec![0.1, 0.2, 0.15, 0.12, 0.3];
        let pot = Pot::fit(&scores, PotConfig { q: 1e-4, level: 0.2 });
        assert!(pot.threshold > 0.3);
        assert!(pot.label(&[10.0])[0]);
    }
}

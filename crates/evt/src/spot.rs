//! Streaming POT (the SPOT algorithm of Siffer et al., 2017 §4.2), as used
//! by OmniAnomaly/TranAD's evaluation: the thresholder is initialized on
//! calibration scores and then *updates* on every non-alarm test score, so
//! slow distribution drift raises the threshold while genuine anomalies
//! (scores above the current threshold) trigger alarms without polluting
//! the tail model.

use crate::error::PotError;
use crate::gpd::{fit_gpd, pot_quantile};
use crate::pot::{quantile, PotConfig};

/// A streaming Peaks-Over-Threshold thresholder.
#[derive(Debug, Clone)]
pub struct Spot {
    q: f64,
    /// Initial (peak-selection) threshold `t` — fixed after init.
    pub initial_threshold: f64,
    /// Current anomaly threshold `z_q` — adapts as the stream evolves.
    pub threshold: f64,
    peaks: Vec<f64>,
    n_obs: usize,
    /// Refit the GPD after this many new peaks (1 = every peak).
    refit_every: usize,
    peaks_since_fit: usize,
    /// Streaming re-calibrations since init (telemetry).
    refits: u64,
}

impl Spot {
    /// Initializes on calibration scores (typically the model's scores on
    /// the training series).
    /// Panics on invalid input; prefer [`Spot::try_init`] on paths that
    /// must not abort.
    pub fn init(calibration: &[f64], config: PotConfig) -> Spot {
        match Self::try_init(calibration, config) {
            Ok(spot) => spot,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Spot::init`]: empty or NaN calibration and out-of-range
    /// configs become [`PotError`]s instead of panics.
    pub fn try_init(calibration: &[f64], config: PotConfig) -> Result<Spot, PotError> {
        config.check()?;
        if calibration.is_empty() {
            return Err(PotError::EmptyCalibration);
        }
        if calibration.iter().any(|s| s.is_nan()) {
            return Err(PotError::NonFiniteScores);
        }
        let t = quantile(calibration, 1.0 - config.level);
        let peaks: Vec<f64> = calibration
            .iter()
            .filter(|&&s| s > t)
            .map(|&s| s - t)
            .collect();
        let mut spot = Spot {
            q: config.q,
            initial_threshold: t,
            threshold: t,
            peaks,
            n_obs: calibration.len(),
            refit_every: 1,
            peaks_since_fit: 0,
            refits: 0,
        };
        spot.refit();
        // The init fit is not a streaming re-calibration.
        spot.refits = 0;
        Ok(spot)
    }

    fn refit(&mut self) {
        // No recorder parameter here: the streaming hot path inherits
        // whatever span recorder the enclosing entry point installed.
        let _s = tranad_telemetry::span::enter("spot.refit");
        self.peaks_since_fit = 0;
        self.refits += 1;
        if self.peaks.len() < 4 {
            // Too little tail mass: conservative max-based threshold.
            let max_peak = self.peaks.iter().cloned().fold(0.0, f64::max);
            let spread = max_peak.max(self.initial_threshold.abs() * 0.01).max(1e-12);
            self.threshold = self.initial_threshold + max_peak + 0.01 * spread;
            return;
        }
        let fit = fit_gpd(&self.peaks);
        let z = pot_quantile(&fit, self.initial_threshold, self.q, self.n_obs, self.peaks.len());
        // Cap the extrapolation: heavy-tailed score distributions (large
        // gamma) can send z far beyond anything observable, silencing the
        // detector entirely. Twice the largest observed exceedance above t
        // is a generous ceiling that keeps genuine extremes flaggable while
        // still tolerating the calibration tail.
        let max_peak = self.peaks.iter().cloned().fold(0.0, f64::max);
        let cap = self.initial_threshold + 2.0 * max_peak;
        self.threshold = z.max(self.initial_threshold).min(cap);
    }

    /// Consumes one streamed score. Returns `true` if it is an anomaly
    /// (above the current threshold). Non-alarm scores above the initial
    /// threshold become new peaks and update the tail fit.
    pub fn step(&mut self, score: f64) -> bool {
        if score >= self.threshold {
            // Alarm: anomalies do not update the model.
            return true;
        }
        self.n_obs += 1;
        if score > self.initial_threshold {
            self.peaks.push(score - self.initial_threshold);
            self.peaks_since_fit += 1;
            if self.peaks_since_fit >= self.refit_every {
                self.refit();
            }
        }
        false
    }

    /// Labels a whole test stream, updating the model as it goes.
    pub fn label_stream(&mut self, scores: &[f64]) -> Vec<bool> {
        scores.iter().map(|&s| self.step(s)).collect()
    }

    /// Number of peaks currently in the tail model.
    pub fn n_peaks(&self) -> usize {
        self.peaks.len()
    }

    /// Streaming re-calibrations (tail refits) performed since init.
    pub fn refits(&self) -> u64 {
        self.refits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pot::PotConfig;

    fn uniform_scores(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        // Small deterministic LCG to avoid a dev-dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                lo + (hi - lo) * ((state >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect()
    }

    #[test]
    fn detects_extreme_values() {
        let calib = uniform_scores(5000, 0.0, 1.0, 1);
        let mut spot = Spot::init(&calib, PotConfig { q: 1e-4, level: 0.02 });
        assert!(spot.step(10.0));
        assert!(!spot.step(0.5));
    }

    #[test]
    fn adapts_to_slow_mean_drift() {
        // A Gaussian score stream whose mean drifts up by one sigma: the
        // streaming updates must absorb the drift with few false alarms
        // (a static threshold would not), while a genuine extreme alarms.
        let gauss = |n: usize, seed: u64| -> Vec<f64> {
            let u1 = uniform_scores(n, 1e-12, 1.0, seed);
            let u2 = uniform_scores(n, 0.0, 1.0, seed ^ 0xABCD);
            u1.iter()
                .zip(&u2)
                .map(|(&a, &b)| {
                    (-2.0 * a.ln()).sqrt() * (std::f64::consts::TAU * b).cos()
                })
                .collect()
        };
        let calib: Vec<f64> = gauss(5000, 2).iter().map(|v| 1.0 + 0.1 * v).collect();
        let mut spot = Spot::init(&calib, PotConfig { q: 1e-4, level: 0.05 });
        let stream = gauss(4000, 3);
        let mut fp = 0;
        for (i, &g) in stream.iter().enumerate() {
            let drift = 0.1 * i as f64 / 4000.0;
            if spot.step(1.0 + drift + 0.1 * g) {
                fp += 1;
            }
        }
        assert!(fp < 40, "too many false alarms under drift: {fp}");
        assert!(spot.step(20.0));
    }

    #[test]
    fn alarms_do_not_update_model() {
        let calib = uniform_scores(2000, 0.0, 1.0, 3);
        let mut spot = Spot::init(&calib, PotConfig { q: 1e-3, level: 0.05 });
        let before = spot.threshold;
        let peaks_before = spot.n_peaks();
        for _ in 0..50 {
            assert!(spot.step(100.0));
        }
        assert_eq!(spot.threshold, before, "alarms must not move the threshold");
        assert_eq!(spot.n_peaks(), peaks_before);
    }

    #[test]
    fn stream_labeling_matches_steps() {
        let calib = uniform_scores(2000, 0.0, 1.0, 4);
        let mut a = Spot::init(&calib, PotConfig::default());
        let mut b = Spot::init(&calib, PotConfig::default());
        let stream = [0.1, 0.9, 5.0, 0.2];
        let labels = a.label_stream(&stream);
        let manual: Vec<bool> = stream.iter().map(|&s| b.step(s)).collect();
        assert_eq!(labels, manual);
        assert_eq!(labels, vec![false, false, true, false]);
    }
}

//! Streaming POT (the SPOT algorithm of Siffer et al., 2017 §4.2), as used
//! by OmniAnomaly/TranAD's evaluation: the thresholder is initialized on
//! calibration scores and then *updates* on every non-alarm test score, so
//! slow distribution drift raises the threshold while genuine anomalies
//! (scores above the current threshold) trigger alarms without polluting
//! the tail model.

use crate::error::PotError;
use crate::gpd::{fit_gpd, pot_quantile};
use crate::pot::{try_quantile, PotConfig};

/// The complete serializable state of a [`Spot`] thresholder.
///
/// Produced by [`Spot::to_parts`] and consumed by [`Spot::from_parts`] so a
/// streaming detector can be checkpointed and resumed with bitwise-identical
/// behaviour: every field that influences [`Spot::step`] is captured.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotParts {
    /// Risk coefficient `q`.
    pub q: f64,
    /// Initial (peak-selection) threshold `t` — fixed after init.
    pub initial_threshold: f64,
    /// Current anomaly threshold `z_q`.
    pub threshold: f64,
    /// Exceedances over `t` currently in the tail model.
    pub peaks: Vec<f64>,
    /// Observations consumed so far (calibration + non-alarm stream points).
    pub n_obs: usize,
    /// Refit cadence (peaks between GPD refits).
    pub refit_every: usize,
    /// Peaks accumulated since the last refit.
    pub peaks_since_fit: usize,
    /// Streaming re-calibrations since init (telemetry).
    pub refits: u64,
}

tranad_json::impl_json_struct!(SpotParts {
    q,
    initial_threshold,
    threshold,
    peaks,
    n_obs,
    refit_every,
    peaks_since_fit,
    refits,
});

/// A streaming Peaks-Over-Threshold thresholder.
#[derive(Debug, Clone)]
pub struct Spot {
    q: f64,
    /// Initial (peak-selection) threshold `t` — fixed after init.
    pub initial_threshold: f64,
    /// Current anomaly threshold `z_q` — adapts as the stream evolves.
    pub threshold: f64,
    peaks: Vec<f64>,
    n_obs: usize,
    /// Refit the GPD after this many new peaks (1 = every peak).
    refit_every: usize,
    peaks_since_fit: usize,
    /// Streaming re-calibrations since init (telemetry).
    refits: u64,
}

impl Spot {
    /// Initializes on calibration scores (typically the model's scores on
    /// the training series).
    /// Panics on invalid input; prefer [`Spot::try_init`] on paths that
    /// must not abort.
    pub fn init(calibration: &[f64], config: PotConfig) -> Spot {
        match Self::try_init(calibration, config) {
            Ok(spot) => spot,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Spot::init`]: empty or NaN calibration and out-of-range
    /// configs become [`PotError`]s instead of panics.
    pub fn try_init(calibration: &[f64], config: PotConfig) -> Result<Spot, PotError> {
        config.check()?;
        let t = try_quantile(calibration, 1.0 - config.level)?;
        let peaks: Vec<f64> = calibration
            .iter()
            .filter(|&&s| s > t)
            .map(|&s| s - t)
            .collect();
        let mut spot = Spot {
            q: config.q,
            initial_threshold: t,
            threshold: t,
            peaks,
            n_obs: calibration.len(),
            refit_every: 1,
            peaks_since_fit: 0,
            refits: 0,
        };
        spot.refit();
        // The init fit is not a streaming re-calibration.
        spot.refits = 0;
        Ok(spot)
    }

    fn refit(&mut self) {
        // No recorder parameter here: the streaming hot path inherits
        // whatever span recorder the enclosing entry point installed.
        let _s = tranad_telemetry::span::enter("spot.refit");
        self.peaks_since_fit = 0;
        self.refits += 1;
        if self.peaks.len() < 4 {
            // Too little tail mass: conservative max-based threshold.
            let max_peak = self.peaks.iter().cloned().fold(0.0, f64::max);
            let spread = max_peak.max(self.initial_threshold.abs() * 0.01).max(1e-12);
            self.threshold = self.initial_threshold + max_peak + 0.01 * spread;
            return;
        }
        let fit = fit_gpd(&self.peaks);
        let z = pot_quantile(&fit, self.initial_threshold, self.q, self.n_obs, self.peaks.len());
        // Cap the extrapolation: heavy-tailed score distributions (large
        // gamma) can send z far beyond anything observable, silencing the
        // detector entirely. Twice the largest observed exceedance above t
        // is a generous ceiling that keeps genuine extremes flaggable while
        // still tolerating the calibration tail.
        let max_peak = self.peaks.iter().cloned().fold(0.0, f64::max);
        let cap = self.initial_threshold + 2.0 * max_peak;
        self.threshold = z.max(self.initial_threshold).min(cap);
    }

    /// Consumes one streamed score. Returns `true` if it is an anomaly
    /// (above the current threshold). Non-alarm scores above the initial
    /// threshold become new peaks and update the tail fit.
    pub fn step(&mut self, score: f64) -> bool {
        if score >= self.threshold {
            // Alarm: anomalies do not update the model.
            return true;
        }
        self.n_obs += 1;
        if score > self.initial_threshold {
            self.peaks.push(score - self.initial_threshold);
            self.peaks_since_fit += 1;
            if self.peaks_since_fit >= self.refit_every {
                self.refit();
            }
        }
        false
    }

    /// Labels a whole test stream, updating the model as it goes.
    pub fn label_stream(&mut self, scores: &[f64]) -> Vec<bool> {
        scores.iter().map(|&s| self.step(s)).collect()
    }

    /// Number of peaks currently in the tail model.
    pub fn n_peaks(&self) -> usize {
        self.peaks.len()
    }

    /// Streaming re-calibrations (tail refits) performed since init.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Captures the full streaming state for checkpointing. The returned
    /// parts round-trip through [`Spot::from_parts`] into a thresholder
    /// whose future [`Spot::step`] decisions are bitwise-identical.
    pub fn to_parts(&self) -> SpotParts {
        SpotParts {
            q: self.q,
            initial_threshold: self.initial_threshold,
            threshold: self.threshold,
            peaks: self.peaks.clone(),
            n_obs: self.n_obs,
            refit_every: self.refit_every,
            peaks_since_fit: self.peaks_since_fit,
            refits: self.refits,
        }
    }

    /// Rebuilds a thresholder from checkpointed parts, validating that the
    /// state could have been produced by a real run (finite thresholds and
    /// peaks, in-range risk, non-zero refit cadence) so a corrupt checkpoint
    /// surfaces as an error instead of silently mislabeling the stream.
    pub fn from_parts(parts: SpotParts) -> Result<Spot, PotError> {
        if !(parts.q > 0.0 && parts.q < 1.0) {
            return Err(PotError::InvalidParts(format!("risk q must be in (0,1), got {}", parts.q)));
        }
        if !parts.initial_threshold.is_finite() || !parts.threshold.is_finite() {
            return Err(PotError::InvalidParts(format!(
                "non-finite thresholds: initial {} / current {}",
                parts.initial_threshold, parts.threshold
            )));
        }
        if let Some(p) = parts.peaks.iter().find(|p| !p.is_finite()) {
            return Err(PotError::InvalidParts(format!("non-finite peak {p}")));
        }
        if parts.refit_every == 0 {
            return Err(PotError::InvalidParts("refit_every must be >= 1".to_string()));
        }
        if parts.n_obs < parts.peaks.len() {
            return Err(PotError::InvalidParts(format!(
                "{} peaks but only {} observations",
                parts.peaks.len(),
                parts.n_obs
            )));
        }
        Ok(Spot {
            q: parts.q,
            initial_threshold: parts.initial_threshold,
            threshold: parts.threshold,
            peaks: parts.peaks,
            n_obs: parts.n_obs,
            refit_every: parts.refit_every,
            peaks_since_fit: parts.peaks_since_fit,
            refits: parts.refits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pot::PotConfig;

    fn uniform_scores(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        // Small deterministic LCG to avoid a dev-dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                lo + (hi - lo) * ((state >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect()
    }

    #[test]
    fn detects_extreme_values() {
        let calib = uniform_scores(5000, 0.0, 1.0, 1);
        let mut spot = Spot::init(&calib, PotConfig { q: 1e-4, level: 0.02 });
        assert!(spot.step(10.0));
        assert!(!spot.step(0.5));
    }

    #[test]
    fn adapts_to_slow_mean_drift() {
        // A Gaussian score stream whose mean drifts up by one sigma: the
        // streaming updates must absorb the drift with few false alarms
        // (a static threshold would not), while a genuine extreme alarms.
        let gauss = |n: usize, seed: u64| -> Vec<f64> {
            let u1 = uniform_scores(n, 1e-12, 1.0, seed);
            let u2 = uniform_scores(n, 0.0, 1.0, seed ^ 0xABCD);
            u1.iter()
                .zip(&u2)
                .map(|(&a, &b)| {
                    (-2.0 * a.ln()).sqrt() * (std::f64::consts::TAU * b).cos()
                })
                .collect()
        };
        let calib: Vec<f64> = gauss(5000, 2).iter().map(|v| 1.0 + 0.1 * v).collect();
        let mut spot = Spot::init(&calib, PotConfig { q: 1e-4, level: 0.05 });
        let stream = gauss(4000, 3);
        let mut fp = 0;
        for (i, &g) in stream.iter().enumerate() {
            let drift = 0.1 * i as f64 / 4000.0;
            if spot.step(1.0 + drift + 0.1 * g) {
                fp += 1;
            }
        }
        assert!(fp < 40, "too many false alarms under drift: {fp}");
        assert!(spot.step(20.0));
    }

    #[test]
    fn alarms_do_not_update_model() {
        let calib = uniform_scores(2000, 0.0, 1.0, 3);
        let mut spot = Spot::init(&calib, PotConfig { q: 1e-3, level: 0.05 });
        let before = spot.threshold;
        let peaks_before = spot.n_peaks();
        for _ in 0..50 {
            assert!(spot.step(100.0));
        }
        assert_eq!(spot.threshold, before, "alarms must not move the threshold");
        assert_eq!(spot.n_peaks(), peaks_before);
    }

    #[test]
    fn parts_roundtrip_is_bitwise_identical() {
        let calib = uniform_scores(3000, 0.0, 1.0, 5);
        let mut original = Spot::init(&calib, PotConfig { q: 1e-3, level: 0.05 });
        // Advance the stream a little so the captured state is non-trivial.
        let warmup = uniform_scores(500, 0.0, 1.1, 6);
        for &s in &warmup {
            original.step(s);
        }
        let parts = original.to_parts();
        let mut restored = Spot::from_parts(parts.clone()).unwrap();
        assert_eq!(restored.threshold.to_bits(), original.threshold.to_bits());
        assert_eq!(restored.n_peaks(), original.n_peaks());
        assert_eq!(restored.refits(), original.refits());
        // Every future decision must match bitwise, including refit updates.
        let stream = uniform_scores(2000, 0.0, 1.2, 7);
        for &s in &stream {
            assert_eq!(original.step(s), restored.step(s));
            assert_eq!(original.threshold.to_bits(), restored.threshold.to_bits());
        }
        // JSON round-trip preserves the parts exactly (shortest-round-trip
        // float rendering), so persisted checkpoints restore bitwise too.
        use tranad_json::{FromJson, ToJson};
        let json = parts.to_json().to_string();
        let back = SpotParts::from_json(&tranad_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, parts);
    }

    #[test]
    fn from_parts_rejects_corrupt_state() {
        let calib = uniform_scores(1000, 0.0, 1.0, 8);
        let spot = Spot::init(&calib, PotConfig::default());
        let good = spot.to_parts();

        let mut bad = good.clone();
        bad.q = 1.5;
        assert!(matches!(Spot::from_parts(bad), Err(PotError::InvalidParts(_))));

        let mut bad = good.clone();
        bad.threshold = f64::NAN;
        assert!(matches!(Spot::from_parts(bad), Err(PotError::InvalidParts(_))));

        let mut bad = good.clone();
        bad.peaks.push(f64::INFINITY);
        assert!(matches!(Spot::from_parts(bad), Err(PotError::InvalidParts(_))));

        let mut bad = good.clone();
        bad.refit_every = 0;
        assert!(matches!(Spot::from_parts(bad), Err(PotError::InvalidParts(_))));

        let mut bad = good;
        bad.n_obs = 0;
        assert!(matches!(Spot::from_parts(bad), Err(PotError::InvalidParts(_))));
    }

    #[test]
    fn nan_calibration_is_an_error_not_a_panic() {
        let mut calib = uniform_scores(1000, 0.0, 1.0, 9);
        calib[500] = f64::NAN;
        assert_eq!(
            Spot::try_init(&calib, PotConfig::default()).unwrap_err(),
            PotError::NonFiniteScores
        );
    }

    #[test]
    fn stream_labeling_matches_steps() {
        let calib = uniform_scores(2000, 0.0, 1.0, 4);
        let mut a = Spot::init(&calib, PotConfig::default());
        let mut b = Spot::init(&calib, PotConfig::default());
        let stream = [0.1, 0.9, 5.0, 0.2];
        let labels = a.label_stream(&stream);
        let manual: Vec<bool> = stream.iter().map(|&s| b.step(s)).collect();
        assert_eq!(labels, manual);
        assert_eq!(labels, vec![false, false, true, false]);
    }
}

//! Non-parametric Dynamic Thresholding (NDT) from Hundman et al.,
//! "Detecting Spacecraft Anomalies Using LSTMs and Nonparametric Dynamic
//! Thresholding" (KDD 2018) — the thresholding strategy of the LSTM-NDT
//! baseline.
//!
//! Over a smoothed error sequence `e_s`, NDT picks the threshold
//! `ε = μ(e_s) + z σ(e_s)` with `z` chosen from a candidate range to
//! maximize `(Δμ/μ + Δσ/σ) / (|E_A| + |seq|^2)`, where `Δμ`, `Δσ` are the
//! drops in mean/stddev when points above `ε` are removed, `E_A` the points
//! above `ε`, and `seq` the contiguous anomalous sequences.

/// NDT configuration.
#[derive(Debug, Clone, Copy)]
pub struct NdtConfig {
    /// Exponential smoothing factor for the error sequence (0 = none).
    pub smoothing: f64,
    /// Candidate `z` values scanned (inclusive range, unit step).
    pub z_range: (u32, u32),
}

impl Default for NdtConfig {
    fn default() -> Self {
        NdtConfig { smoothing: 0.05, z_range: (2, 10) }
    }
}

/// Result of NDT threshold selection.
#[derive(Debug, Clone, Copy)]
pub struct Ndt {
    /// Selected threshold ε.
    pub threshold: f64,
    /// Selected multiplier z.
    pub z: f64,
    /// Smoothing factor the threshold was selected under; [`Ndt::label`]
    /// applies the same smoothing so errors are judged on the sequence the
    /// threshold was calibrated for.
    pub smoothing: f64,
}

impl Ndt {
    /// Selects a threshold for the given error sequence.
    pub fn fit(errors: &[f64], config: NdtConfig) -> Ndt {
        assert!(!errors.is_empty(), "NDT needs an error sequence");
        let smoothed = ewma(errors, config.smoothing);
        let n = smoothed.len() as f64;
        let mean = smoothed.iter().sum::<f64>() / n;
        let std = (smoothed.iter().map(|&e| (e - mean) * (e - mean)).sum::<f64>() / n).sqrt();

        let smoothing = config.smoothing;
        if std < 1e-300 {
            return Ndt { threshold: mean + mean.abs() * 0.01 + 1e-12, z: 0.0, smoothing };
        }

        let mut best = Ndt {
            threshold: mean + config.z_range.1 as f64 * std,
            z: config.z_range.1 as f64,
            smoothing,
        };
        let mut best_score = f64::NEG_INFINITY;
        for zi in config.z_range.0..=config.z_range.1 {
            let z = zi as f64;
            let eps = mean + z * std;
            let below: Vec<f64> = smoothed.iter().cloned().filter(|&e| e < eps).collect();
            if below.is_empty() || below.len() == smoothed.len() {
                continue;
            }
            let nb = below.len() as f64;
            let mean_b = below.iter().sum::<f64>() / nb;
            let std_b =
                (below.iter().map(|&e| (e - mean_b) * (e - mean_b)).sum::<f64>() / nb).sqrt();
            let delta_mean = (mean - mean_b) / mean.abs().max(1e-12);
            let delta_std = (std - std_b) / std;
            let e_a = smoothed.len() - below.len();
            let seqs = count_sequences(&smoothed, eps);
            let score = (delta_mean + delta_std) / (e_a as f64 + (seqs * seqs) as f64);
            if score > best_score {
                best_score = score;
                best = Ndt { threshold: eps, z, smoothing };
            }
        }
        best
    }

    /// Labels each error against the selected threshold. The errors are
    /// smoothed with the same factor used during [`Ndt::fit`] first — the
    /// threshold is calibrated for the smoothed sequence `e_s`, so comparing
    /// raw errors against it would flag transient spikes the selection never
    /// saw (Hundman et al. threshold and label the same smoothed sequence).
    pub fn label(&self, errors: &[f64]) -> Vec<bool> {
        if errors.is_empty() {
            return Vec::new();
        }
        ewma(errors, self.smoothing).iter().map(|&e| e >= self.threshold).collect()
    }
}

/// Exponentially-weighted moving average with factor `alpha`
/// (`alpha = 0` returns the input unchanged).
pub fn ewma(values: &[f64], alpha: f64) -> Vec<f64> {
    if alpha <= 0.0 {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(values.len());
    let mut acc = values[0];
    for &v in values {
        acc = alpha * v + (1.0 - alpha) * acc;
        out.push(acc);
    }
    out
}

/// Number of contiguous runs above the threshold.
fn count_sequences(values: &[f64], eps: f64) -> usize {
    let mut count = 0;
    let mut inside = false;
    for &v in values {
        let above = v >= eps;
        if above && !inside {
            count += 1;
        }
        inside = above;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_tensor::Rng;

    #[test]
    fn ewma_smooths() {
        let noisy = vec![0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let s = ewma(&noisy, 0.3);
        let range = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(range < 10.0);
    }

    #[test]
    fn ewma_zero_alpha_identity() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(ewma(&v, 0.0), v);
    }

    #[test]
    fn separates_clear_anomalies() {
        let mut rng = Rng::new(1);
        let mut errors: Vec<f64> = (0..2000).map(|_| rng.range_f64(0.0, 0.1)).collect();
        for e in errors.iter_mut().skip(1000).take(5) {
            *e = 5.0;
        }
        let ndt = Ndt::fit(&errors, NdtConfig { smoothing: 0.0, z_range: (2, 10) });
        let labels = ndt.label(&errors);
        assert!(labels[1000..1005].iter().all(|&b| b));
        let fp = labels[..1000].iter().filter(|&&b| b).count();
        assert_eq!(fp, 0);
    }

    #[test]
    fn count_sequences_counts_runs() {
        let v = vec![0.0, 2.0, 2.0, 0.0, 2.0, 0.0];
        assert_eq!(count_sequences(&v, 1.0), 2);
        assert_eq!(count_sequences(&v, 3.0), 0);
    }

    #[test]
    fn constant_errors_flag_nothing() {
        let errors = vec![0.5; 500];
        let ndt = Ndt::fit(&errors, NdtConfig::default());
        assert!(ndt.label(&errors).iter().all(|&b| !b));
    }
}

//! Minimal CSV import/export for [`TimeSeries`] and labels, so the harness
//! can run on the *real* benchmark datasets when the user has obtained them
//! (SWaT/WADI are license-gated; SMD/SMAP/MSL are public downloads).
//!
//! Format: one row per timestamp, comma-separated numeric columns, with an
//! optional single header row (auto-detected: a first row that fails to
//! parse as numbers is treated as a header). Label files are a single
//! column of `0`/`1` per timestamp, or a multi-column per-dimension grid.

use crate::series::{Labels, TimeSeries};
use std::fmt;
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structural or numeric parse failure with row context.
    Parse { line: usize, message: String },
    /// The file had no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses CSV text into a time series.
pub fn series_from_str(text: &str) -> Result<TimeSeries, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed: Result<Vec<f64>, _> = line
            .split(',')
            .map(|cell| cell.trim().parse::<f64>())
            .collect();
        match parsed {
            Ok(values) => {
                match width {
                    None => width = Some(values.len()),
                    Some(w) if w != values.len() => {
                        return Err(CsvError::Parse {
                            line: i + 1,
                            message: format!("expected {w} columns, found {}", values.len()),
                        })
                    }
                    _ => {}
                }
                if values.iter().any(|v| !v.is_finite()) {
                    return Err(CsvError::Parse {
                        line: i + 1,
                        message: "non-finite value".to_string(),
                    });
                }
                rows.push(values);
            }
            Err(e) => {
                // A non-numeric first row is a header; anywhere else it is
                // an error.
                if rows.is_empty() && width.is_none() {
                    continue;
                }
                return Err(CsvError::Parse { line: i + 1, message: e.to_string() });
            }
        }
    }
    let dims = width.ok_or(CsvError::Empty)?;
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let len = rows.len();
    Ok(TimeSeries::from_rows(
        rows.into_iter().flatten().collect(),
        len,
        dims,
    ))
}

/// Loads a time series from a CSV file.
pub fn series_from_csv(path: impl AsRef<Path>) -> Result<TimeSeries, CsvError> {
    series_from_str(&std::fs::read_to_string(path)?)
}

/// Writes a time series as CSV (no header).
pub fn series_to_csv(series: &TimeSeries, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut out = String::with_capacity(series.len() * series.dims() * 12);
    for t in 0..series.len() {
        let row: Vec<String> = series.row(t).iter().map(|v| format!("{v}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Parses label CSV text (single point-label column, or one column per
/// dimension) into [`Labels`]. Values must be 0 or 1.
pub fn labels_from_str(text: &str, dims: usize) -> Result<Labels, CsvError> {
    let series = series_from_str(text)?;
    if series.dims() != 1 && series.dims() != dims {
        return Err(CsvError::Parse {
            line: 1,
            message: format!(
                "label file has {} columns; expected 1 or {dims}",
                series.dims()
            ),
        });
    }
    let mut labels = Labels::normal(series.len(), dims);
    for t in 0..series.len() {
        for (c, &v) in series.row(t).iter().enumerate() {
            if v != 0.0 && v != 1.0 {
                return Err(CsvError::Parse {
                    line: t + 1,
                    message: format!("label value {v} is not 0/1"),
                });
            }
            if v == 1.0 {
                if series.dims() == 1 {
                    // Point label: mark every dimension.
                    for d in 0..dims {
                        labels.mark(t, t + 1, d);
                    }
                } else {
                    labels.mark(t, t + 1, c);
                }
            }
        }
    }
    Ok(labels)
}

/// Loads labels from a CSV file.
pub fn labels_from_csv(path: impl AsRef<Path>, dims: usize) -> Result<Labels, CsvError> {
    labels_from_str(&std::fs::read_to_string(path)?, dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numeric_csv() {
        let ts = series_from_str("1.0,2.0\n3.0,4.0\n5.5,6.5\n").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.dims(), 2);
        assert_eq!(ts.row(2), &[5.5, 6.5]);
    }

    #[test]
    fn skips_header_row() {
        let ts = series_from_str("cpu,mem\n0.5,0.25\n0.6,0.30\n").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.get(0, 1), 0.25);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = series_from_str("1,2\n3\n").unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_mid_file_text() {
        let err = series_from_str("1,2\nfoo,bar\n").unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(series_from_str("\n\n"), Err(CsvError::Empty)));
        assert!(matches!(series_from_str("h1,h2\n"), Err(CsvError::Empty)));
    }

    #[test]
    fn roundtrip_through_file() {
        let ts = series_from_str("1,2\n3,4\n").unwrap();
        let dir = std::env::temp_dir().join("tranad_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        series_to_csv(&ts, &path).unwrap();
        let back = series_from_csv(&path).unwrap();
        assert_eq!(back, ts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn point_labels_expand_to_all_dims() {
        let labels = labels_from_str("0\n1\n0\n", 3).unwrap();
        assert!(!labels.point(0));
        assert!(labels.point(1));
        assert!(labels.at(1, 2));
    }

    #[test]
    fn per_dim_labels_parse() {
        let labels = labels_from_str("0,1\n0,0\n", 2).unwrap();
        assert!(labels.at(0, 1));
        assert!(!labels.at(0, 0));
    }

    #[test]
    fn rejects_non_binary_labels() {
        assert!(labels_from_str("0\n2\n", 1).is_err());
    }

    #[test]
    fn rejects_wrong_label_width() {
        assert!(labels_from_str("0,1\n", 3).is_err());
    }
}

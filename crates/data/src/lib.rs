//! # tranad-data
//!
//! Dataset infrastructure for the TranAD reproduction:
//!
//! - [`series`]: multivariate time-series containers with per-dimension
//!   ground-truth labels.
//! - [`signal`]: seeded signal primitives (sines, random walks, ECG pulse
//!   trains, tank processes, bursty server metrics, telemetry).
//! - [`anomaly`]: labeled fault injection (spikes, shifts, flatlines,
//!   drifts, noise bursts, cascades).
//! - [`datasets`]: synthetic counterparts of the paper's nine benchmarks
//!   (Table 1), matching their published dimensionality, scaled lengths and
//!   anomaly rates. See DESIGN.md for the substitution rationale.
//! - [`preprocess`]: Eq. 1 min-max normalization and §3.2 sliding windows
//!   with replication padding.
//! - [`splits`]: 80/20 validation split and the 20–100 % training subsets
//!   of Table 3 / Figure 6.
//! - [`csv`]: import/export, so the harness runs on the *real* benchmark
//!   files when available.

pub mod anomaly;
pub mod csv;
pub mod datasets;
pub mod preprocess;
pub mod series;
pub mod signal;
pub mod splits;

pub use csv::{labels_from_csv, series_from_csv, series_to_csv, CsvError};
pub use datasets::{generate, Dataset, DatasetKind, GenConfig, PaperStats};
pub use preprocess::{Normalizer, Windows};
pub use series::{Labels, TimeSeries};
pub use signal::SignalRng;
pub use splits::{limited_data_subsets, random_subsequence, train_val_split};

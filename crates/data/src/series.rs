//! Multivariate time-series containers and ground-truth labels.

use tranad_tensor::Tensor;

/// A multivariate time series: `len` timestamps × `dims` modes, stored
/// row-major (timestamp-major).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    data: Vec<f64>,
    len: usize,
    dims: usize,
}

impl TimeSeries {
    /// Creates a series from row-major data.
    pub fn from_rows(data: Vec<f64>, len: usize, dims: usize) -> Self {
        assert_eq!(data.len(), len * dims, "data size mismatch");
        TimeSeries { data, len, dims }
    }

    /// An all-zeros series.
    pub fn zeros(len: usize, dims: usize) -> Self {
        TimeSeries { data: vec![0.0; len * dims], len, dims }
    }

    /// Builds a series from per-dimension column vectors.
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        let len = columns[0].len();
        let dims = columns.len();
        let mut data = vec![0.0; len * dims];
        for (d, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), len, "ragged columns");
            for (t, &v) in col.iter().enumerate() {
                data[t * dims + d] = v;
            }
        }
        TimeSeries { data, len, dims }
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the series has no timestamps.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of modes (dimensions).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The datapoint at timestamp `t` (a slice of `dims` values).
    pub fn row(&self, t: usize) -> &[f64] {
        &self.data[t * self.dims..(t + 1) * self.dims]
    }

    /// Mutable datapoint at timestamp `t`.
    pub fn row_mut(&mut self, t: usize) -> &mut [f64] {
        &mut self.data[t * self.dims..(t + 1) * self.dims]
    }

    /// One value.
    pub fn get(&self, t: usize, d: usize) -> f64 {
        self.data[t * self.dims + d]
    }

    /// Sets one value.
    pub fn set(&mut self, t: usize, d: usize, v: f64) {
        self.data[t * self.dims + d] = v;
    }

    /// Copies out one dimension as a column vector.
    pub fn column(&self, d: usize) -> Vec<f64> {
        (0..self.len).map(|t| self.get(t, d)).collect()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// A `[len, dims]` tensor view of the series.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), [self.len, self.dims])
    }

    /// The sub-series of timestamps `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> TimeSeries {
        assert!(start <= end && end <= self.len, "slice out of range");
        TimeSeries {
            data: self.data[start * self.dims..end * self.dims].to_vec(),
            len: end - start,
            dims: self.dims,
        }
    }

    /// Per-dimension minimum over time.
    pub fn min_per_dim(&self) -> Vec<f64> {
        let mut mins = vec![f64::INFINITY; self.dims];
        for t in 0..self.len {
            for (m, &v) in mins.iter_mut().zip(self.row(t)) {
                *m = m.min(v);
            }
        }
        mins
    }

    /// Per-dimension maximum over time.
    pub fn max_per_dim(&self) -> Vec<f64> {
        let mut maxs = vec![f64::NEG_INFINITY; self.dims];
        for t in 0..self.len {
            for (m, &v) in maxs.iter_mut().zip(self.row(t)) {
                *m = m.max(v);
            }
        }
        maxs
    }
}

/// Ground-truth anomaly labels: per-timestamp and per-dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    /// Per-dimension labels, row-major `[len * dims]`.
    per_dim: Vec<bool>,
    len: usize,
    dims: usize,
}

impl Labels {
    /// All-normal labels.
    pub fn normal(len: usize, dims: usize) -> Self {
        Labels { per_dim: vec![false; len * dims], len, dims }
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Marks dimension `d` anomalous over `[start, end)`.
    pub fn mark(&mut self, start: usize, end: usize, d: usize) {
        for t in start..end.min(self.len) {
            self.per_dim[t * self.dims + d] = true;
        }
    }

    /// Per-dimension label at `(t, d)`.
    pub fn at(&self, t: usize, d: usize) -> bool {
        self.per_dim[t * self.dims + d]
    }

    /// Timestamp label: true if *any* dimension is anomalous at `t`.
    pub fn point(&self, t: usize) -> bool {
        self.per_dim[t * self.dims..(t + 1) * self.dims]
            .iter()
            .any(|&b| b)
    }

    /// Per-timestamp label vector.
    pub fn point_labels(&self) -> Vec<bool> {
        (0..self.len).map(|t| self.point(t)).collect()
    }

    /// Per-dimension labels at timestamp `t`.
    pub fn dim_labels(&self, t: usize) -> Vec<bool> {
        self.per_dim[t * self.dims..(t + 1) * self.dims].to_vec()
    }

    /// Fraction of anomalous timestamps.
    pub fn anomaly_rate(&self) -> f64 {
        let anom = (0..self.len).filter(|&t| self.point(t)).count();
        anom as f64 / self.len.max(1) as f64
    }

    /// The sub-labels of timestamps `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Labels {
        assert!(start <= end && end <= self.len, "slice out of range");
        Labels {
            per_dim: self.per_dim[start * self.dims..end * self.dims].to_vec(),
            len: end - start,
            dims: self.dims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_columns_layout() {
        let ts = TimeSeries::from_columns(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dims(), 2);
        assert_eq!(ts.row(0), &[1.0, 10.0]);
        assert_eq!(ts.row(1), &[2.0, 20.0]);
        assert_eq!(ts.column(1), vec![10.0, 20.0]);
    }

    #[test]
    fn slice_preserves_dims() {
        let ts = TimeSeries::from_rows((0..12).map(|v| v as f64).collect(), 4, 3);
        let s = ts.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn min_max_per_dim() {
        let ts = TimeSeries::from_columns(&[vec![1.0, -2.0, 5.0], vec![0.0, 3.0, 1.0]]);
        assert_eq!(ts.min_per_dim(), vec![-2.0, 0.0]);
        assert_eq!(ts.max_per_dim(), vec![5.0, 3.0]);
    }

    #[test]
    fn labels_mark_and_point() {
        let mut labels = Labels::normal(5, 2);
        labels.mark(1, 3, 1);
        assert!(!labels.point(0));
        assert!(labels.point(1));
        assert!(labels.point(2));
        assert!(!labels.point(3));
        assert!(labels.at(1, 1));
        assert!(!labels.at(1, 0));
        assert_eq!(labels.anomaly_rate(), 0.4);
    }

    #[test]
    fn labels_mark_clamps_to_len() {
        let mut labels = Labels::normal(3, 1);
        labels.mark(2, 100, 0);
        assert!(labels.point(2));
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn to_tensor_shape() {
        let ts = TimeSeries::zeros(7, 3);
        assert_eq!(ts.to_tensor().shape().dims(), &[7, 3]);
    }
}

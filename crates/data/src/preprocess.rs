//! Data preprocessing (paper §3.2): min-max normalization fitted on the
//! training series, and sliding windows with replication padding.

use crate::series::TimeSeries;
use std::borrow::Cow;
use tranad_tensor::Tensor;

/// Min-max normalizer fitted per dimension on the training series
/// (Eq. 1: `x ← (x - min) / (max - min + ε)`).
#[derive(Debug, Clone)]
pub struct Normalizer {
    mins: Vec<f64>,
    ranges: Vec<f64>, // max - min + eps
}

/// Small constant preventing zero division in Eq. 1.
const EPS: f64 = 1e-4;

impl Normalizer {
    /// Fits the per-dimension ranges on `train`.
    pub fn fit(train: &TimeSeries) -> Normalizer {
        let mins = train.min_per_dim();
        let maxs = train.max_per_dim();
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| hi - lo + EPS)
            .collect();
        Normalizer { mins, ranges }
    }

    /// Applies the fitted transform. Values outside the training range are
    /// clamped to `[-0.5, 1.5]` to keep extreme test anomalies finite while
    /// still letting them stand out from the nominal `[0, 1)` band.
    pub fn transform(&self, series: &TimeSeries) -> TimeSeries {
        assert_eq!(series.dims(), self.mins.len(), "dimension mismatch");
        let mut out = series.clone();
        for t in 0..out.len() {
            let row = out.row_mut(t);
            for ((v, &lo), &range) in row.iter_mut().zip(&self.mins).zip(&self.ranges) {
                *v = ((*v - lo) / range).clamp(-0.5, 1.5);
            }
        }
        out
    }

    /// Applies the fitted transform to one raw row, writing into `dst` —
    /// the allocation-free single-point path the serving layer runs per
    /// streamed datapoint. Element-for-element the same arithmetic as
    /// [`Normalizer::transform`], so streaming and batch scores agree
    /// bitwise.
    pub fn transform_row_into(&self, row: &[f64], dst: &mut [f64]) {
        assert_eq!(row.len(), self.mins.len(), "dimension mismatch");
        assert_eq!(row.len(), dst.len(), "destination width mismatch");
        for (((o, &v), &lo), &range) in dst.iter_mut().zip(row).zip(&self.mins).zip(&self.ranges) {
            *o = ((v - lo) / range).clamp(-0.5, 1.5);
        }
    }

    /// Fits on `train` and transforms both series.
    pub fn fit_transform(train: &TimeSeries, test: &TimeSeries) -> (TimeSeries, TimeSeries) {
        let norm = Normalizer::fit(train);
        (norm.transform(train), norm.transform(test))
    }

    /// Exports the fitted state `(mins, ranges)` for persistence.
    pub fn to_parts(&self) -> (Vec<f64>, Vec<f64>) {
        (self.mins.clone(), self.ranges.clone())
    }

    /// Rebuilds a normalizer from persisted state.
    pub fn from_parts(mins: Vec<f64>, ranges: Vec<f64>) -> Normalizer {
        assert_eq!(mins.len(), ranges.len(), "mins/ranges length mismatch");
        assert!(ranges.iter().all(|&r| r > 0.0), "ranges must be positive");
        Normalizer { mins, ranges }
    }
}

/// Sliding windows over a series with replication padding for `t < K`
/// (paper §3.2). Window `t` covers timestamps `t-K+1 ..= t`; positions
/// before the start of the series are filled with the first datapoint, as
/// in the reference implementation.
///
/// The series is held as a `Cow`: [`Windows::new`] takes ownership, while
/// [`Windows::borrowed`] wraps a reference so scoring paths never copy the
/// full series just to slide a window over it.
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    series: Cow<'a, TimeSeries>,
    k: usize,
}

impl Windows<'static> {
    /// Creates windows of length `k`, taking ownership of `series`.
    pub fn new(series: TimeSeries, k: usize) -> Windows<'static> {
        Windows::from_cow(Cow::Owned(series), k)
    }
}

impl<'a> Windows<'a> {
    /// Creates windows of length `k` over a borrowed series (no copy).
    pub fn borrowed(series: &'a TimeSeries, k: usize) -> Windows<'a> {
        Windows::from_cow(Cow::Borrowed(series), k)
    }

    fn from_cow(series: Cow<'a, TimeSeries>, k: usize) -> Windows<'a> {
        assert!(k >= 1, "window length must be positive");
        assert!(!series.is_empty(), "cannot window an empty series");
        Windows { series, k }
    }

    /// Number of windows (= series length).
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if there are no windows.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Window length `K`.
    pub fn window_len(&self) -> usize {
        self.k
    }

    /// Number of modes.
    pub fn dims(&self) -> usize {
        self.series.dims()
    }

    /// The underlying series.
    pub fn series(&self) -> &TimeSeries {
        self.series.as_ref()
    }

    /// Copies the `len` timestamps ending at `t` (replication-padded) into
    /// `dst`, which must hold exactly `len * dims` elements.
    fn fill(&self, t: usize, len: usize, dst: &mut [f64]) {
        let m = self.series.dims();
        debug_assert_eq!(dst.len(), len * m);
        for (offset, row) in dst.chunks_exact_mut(m).enumerate() {
            let pos = (t + offset + 1).checked_sub(len);
            row.copy_from_slice(self.series.row(pos.unwrap_or(0)));
        }
    }

    /// Window at timestamp `t` as a `[k, dims]` tensor.
    pub fn window(&self, t: usize) -> Tensor {
        let m = self.series.dims();
        let mut out = Tensor::zeros([self.k, m]);
        self.fill(t, self.k, out.data_mut());
        out
    }

    /// A batch of windows `[batch, k, dims]` for the given timestamps.
    pub fn batch(&self, ts: &[usize]) -> Tensor {
        let m = self.series.dims();
        let stride = self.k * m;
        let mut out = Tensor::zeros([ts.len(), self.k, m]);
        let data = out.data_mut();
        for (&t, plane) in ts.iter().zip(data.chunks_exact_mut(stride)) {
            self.fill(t, self.k, plane);
        }
        out
    }

    /// A batch of windows for the contiguous timestamp range `start..end` —
    /// equivalent to `batch(&[start, start+1, ..])` without materializing
    /// the index list. Shape `[end - start, k, dims]`.
    pub fn batch_range(&self, start: usize, end: usize) -> Tensor {
        let m = self.series.dims();
        let stride = self.k * m;
        let mut out = Tensor::zeros([end - start, self.k, m]);
        let data = out.data_mut();
        for (t, plane) in (start..end).zip(data.chunks_exact_mut(stride)) {
            self.fill(t, self.k, plane);
        }
        out
    }

    /// The context slice `C_t`: the last `max_context` timestamps up to and
    /// including `t`, replication-padded at the start like windows. Shape
    /// `[max_context, dims]`.
    pub fn context(&self, t: usize, max_context: usize) -> Tensor {
        let m = self.series.dims();
        let mut out = Tensor::zeros([max_context, m]);
        self.fill(t, max_context, out.data_mut());
        out
    }

    /// A batch of contexts `[batch, max_context, dims]`.
    pub fn context_batch(&self, ts: &[usize], max_context: usize) -> Tensor {
        let m = self.series.dims();
        let stride = max_context * m;
        let mut out = Tensor::zeros([ts.len(), max_context, m]);
        let data = out.data_mut();
        for (&t, plane) in ts.iter().zip(data.chunks_exact_mut(stride)) {
            self.fill(t, max_context, plane);
        }
        out
    }

    /// A batch of contexts for the contiguous timestamp range `start..end`.
    /// Shape `[end - start, max_context, dims]`.
    pub fn context_batch_range(&self, start: usize, end: usize, max_context: usize) -> Tensor {
        let m = self.series.dims();
        let stride = max_context * m;
        let mut out = Tensor::zeros([end - start, max_context, m]);
        let data = out.data_mut();
        for (t, plane) in (start..end).zip(data.chunks_exact_mut(stride)) {
            self.fill(t, max_context, plane);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_1d(values: &[f64]) -> TimeSeries {
        TimeSeries::from_columns(&[values.to_vec()])
    }

    #[test]
    fn normalizer_maps_train_to_unit_interval() {
        let train = series_1d(&[2.0, 4.0, 6.0]);
        let norm = Normalizer::fit(&train);
        let out = norm.transform(&train);
        assert!(out.data().iter().all(|&v| (0.0..1.0).contains(&v)));
        assert!((out.get(0, 0) - 0.0).abs() < 1e-9);
        assert!(out.get(2, 0) < 1.0 && out.get(2, 0) > 0.99);
    }

    #[test]
    fn normalizer_clamps_extreme_test_values() {
        let train = series_1d(&[0.0, 1.0]);
        let norm = Normalizer::fit(&train);
        let test = series_1d(&[1000.0, -1000.0]);
        let out = norm.transform(&test);
        assert_eq!(out.get(0, 0), 1.5);
        assert_eq!(out.get(1, 0), -0.5);
    }

    #[test]
    fn normalizer_constant_dimension() {
        let train = series_1d(&[3.0, 3.0, 3.0]);
        let norm = Normalizer::fit(&train);
        let out = norm.transform(&train);
        assert!(out.data().iter().all(|v| v.is_finite()));
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn window_full_history() {
        let ws = Windows::new(series_1d(&[1.0, 2.0, 3.0, 4.0]), 3);
        let w = ws.window(3);
        assert_eq!(w.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn window_replication_padding() {
        let ws = Windows::new(series_1d(&[10.0, 20.0, 30.0]), 3);
        // t=0: two pad copies of x_0 + x_0
        assert_eq!(ws.window(0).data(), &[10.0, 10.0, 10.0]);
        // t=1: one pad copy + x_0, x_1
        assert_eq!(ws.window(1).data(), &[10.0, 10.0, 20.0]);
    }

    #[test]
    fn window_multivariate_shape() {
        let ts = TimeSeries::from_columns(&[vec![1.0, 2.0], vec![5.0, 6.0]]);
        let ws = Windows::new(ts, 2);
        let w = ws.window(1);
        assert_eq!(w.shape().dims(), &[2, 2]);
        assert_eq!(w.data(), &[1.0, 5.0, 2.0, 6.0]);
    }

    #[test]
    fn batch_stacks_windows() {
        let ws = Windows::new(series_1d(&[1.0, 2.0, 3.0, 4.0]), 2);
        let b = ws.batch(&[1, 3]);
        assert_eq!(b.shape().dims(), &[2, 2, 1]);
        assert_eq!(b.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn context_longer_than_window() {
        let ws = Windows::new(series_1d(&[1.0, 2.0, 3.0, 4.0, 5.0]), 2);
        let c = ws.context(4, 4);
        assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
        let c0 = ws.context(0, 4);
        assert_eq!(c0.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn windows_cover_every_timestamp() {
        let ws = Windows::new(series_1d(&[1.0; 17]), 5);
        assert_eq!(ws.len(), 17);
        for t in 0..17 {
            assert_eq!(ws.window(t).shape().dims(), &[5, 1]);
        }
    }

    #[test]
    fn borrowed_windows_match_owned() {
        let series = series_1d(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let owned = Windows::new(series.clone(), 3);
        let borrowed = Windows::borrowed(&series, 3);
        for t in 0..series.len() {
            assert_eq!(owned.window(t).data(), borrowed.window(t).data());
            assert_eq!(
                owned.context(t, 4).data(),
                borrowed.context(t, 4).data()
            );
        }
        assert_eq!(
            owned.batch(&[0, 2, 4]).data(),
            borrowed.batch(&[0, 2, 4]).data()
        );
    }

    #[test]
    fn range_batches_match_index_batches() {
        let ts = TimeSeries::from_columns(&[vec![1.0, 2.0, 3.0, 4.0, 5.0], vec![6.0, 7.0, 8.0, 9.0, 10.0]]);
        let ws = Windows::new(ts, 3);
        let idx: Vec<usize> = (1..4).collect();
        let by_range = ws.batch_range(1, 4);
        let by_index = ws.batch(&idx);
        assert_eq!(by_range.shape().dims(), by_index.shape().dims());
        assert_eq!(by_range.data(), by_index.data());
        let c_range = ws.context_batch_range(1, 4, 4);
        let c_index = ws.context_batch(&idx, 4);
        assert_eq!(c_range.shape().dims(), c_index.shape().dims());
        assert_eq!(c_range.data(), c_index.data());
        assert_eq!(ws.batch_range(2, 2).shape().dims(), &[0, 3, 2]);
    }

    #[test]
    fn transform_row_into_matches_series_transform_bitwise() {
        let train = TimeSeries::from_columns(&[vec![0.0, 2.0, 4.0], vec![-1.0, 1.0, 3.0]]);
        let norm = Normalizer::fit(&train);
        // Includes values outside the training range to cover the clamp.
        let test = TimeSeries::from_rows(vec![1.0, 0.5, -9.0, 2.0, 7.0, -3.0], 3, 2);
        let expected = norm.transform(&test);
        let mut dst = [0.0; 2];
        for t in 0..test.len() {
            norm.transform_row_into(test.row(t), &mut dst);
            for (d, (&a, &b)) in dst.iter().zip(expected.row(t)).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "t={t} dim {d}");
            }
        }
    }
}

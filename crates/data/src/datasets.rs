//! Synthetic generators for the paper's nine benchmark datasets (Table 1).
//!
//! The real datasets are either license-gated (SWaT, WADI), large downloads
//! (SMD, SMAP/MSL), or both; per the substitution policy in DESIGN.md each
//! generator reproduces the *published statistics* of its dataset —
//! dimensionality, train/test length (scaled by `GenConfig::scale`), anomaly
//! rate — and the anomaly character the paper discusses (mild anomalies in
//! SMD, cascading faults in MSDS, noisy large-scale WADI, etc.).

use crate::anomaly::{plan_segments, Injector};
use crate::series::{Labels, TimeSeries};
use crate::signal::{actuator, bursty, ecg, random_walk, sine, tank_level, telemetry, SignalRng};

/// The nine benchmark datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Numenta Anomaly Benchmark (univariate infrastructure traces).
    Nab,
    /// HexagonML/UCR KDD-cup traces (univariate physiological).
    Ucr,
    /// MIT-BIH Supraventricular Arrhythmia (2-lead ECG).
    Mba,
    /// Soil Moisture Active Passive satellite telemetry.
    Smap,
    /// Mars Science Laboratory rover telemetry.
    Msl,
    /// Secure Water Treatment testbed.
    Swat,
    /// Water Distribution testbed.
    Wadi,
    /// Server Machine Dataset (compute-cluster metrics).
    Smd,
    /// Multi-Source Distributed System dataset.
    Msds,
}

/// Published statistics of a dataset (paper Table 1).
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// Training length.
    pub train: usize,
    /// Test length.
    pub test: usize,
    /// Number of dimensions.
    pub dims: usize,
    /// Anomalous fraction of the test set, in percent.
    pub anomaly_pct: f64,
    /// Number of traces in the dataset repository.
    pub traces: usize,
}

impl DatasetKind {
    /// All nine datasets, in Table 1 order.
    pub fn all() -> [DatasetKind; 9] {
        use DatasetKind::*;
        [Nab, Ucr, Mba, Smap, Msl, Swat, Wadi, Smd, Msds]
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Nab => "NAB",
            DatasetKind::Ucr => "UCR",
            DatasetKind::Mba => "MBA",
            DatasetKind::Smap => "SMAP",
            DatasetKind::Msl => "MSL",
            DatasetKind::Swat => "SWaT",
            DatasetKind::Wadi => "WADI",
            DatasetKind::Smd => "SMD",
            DatasetKind::Msds => "MSDS",
        }
    }

    /// Parses a (case-insensitive) dataset name.
    pub fn parse(name: &str) -> Option<DatasetKind> {
        DatasetKind::all()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Table 1 statistics.
    pub fn paper_stats(self) -> PaperStats {
        match self {
            DatasetKind::Nab => PaperStats { train: 4033, test: 4033, dims: 1, anomaly_pct: 0.92, traces: 6 },
            DatasetKind::Ucr => PaperStats { train: 1600, test: 5900, dims: 1, anomaly_pct: 1.88, traces: 4 },
            DatasetKind::Mba => PaperStats { train: 100_000, test: 100_000, dims: 2, anomaly_pct: 0.14, traces: 8 },
            DatasetKind::Smap => PaperStats { train: 135_183, test: 427_617, dims: 25, anomaly_pct: 13.13, traces: 55 },
            DatasetKind::Msl => PaperStats { train: 58_317, test: 73_729, dims: 55, anomaly_pct: 10.72, traces: 3 },
            DatasetKind::Swat => PaperStats { train: 496_800, test: 449_919, dims: 51, anomaly_pct: 11.98, traces: 1 },
            DatasetKind::Wadi => PaperStats { train: 1_048_571, test: 172_801, dims: 123, anomaly_pct: 5.99, traces: 1 },
            DatasetKind::Smd => PaperStats { train: 708_405, test: 708_420, dims: 38, anomaly_pct: 4.16, traces: 4 },
            DatasetKind::Msds => PaperStats { train: 146_430, test: 146_430, dims: 10, anomaly_pct: 5.37, traces: 1 },
        }
    }

    /// The paper's per-dataset POT low quantile (§4): 0.07 for SMAP, 0.01
    /// for MSL, 0.001 for the rest.
    pub fn pot_low_quantile(self) -> f64 {
        match self {
            DatasetKind::Smap => 0.07,
            DatasetKind::Msl => 0.01,
            _ => 0.001,
        }
    }
}

/// Generation configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Length multiplier applied to the paper's train/test lengths
    /// (lengths are clamped to at least `min_len`).
    pub scale: f64,
    /// Minimum generated length per split.
    pub min_len: usize,
    /// Base RNG seed; everything downstream derives from it.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { scale: 0.02, min_len: 400, seed: 42 }
    }
}

impl GenConfig {
    /// Config with a specific scale.
    pub fn with_scale(scale: f64) -> Self {
        GenConfig { scale, ..Default::default() }
    }

    fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(self.min_len)
    }
}

/// A generated dataset: training series (anomaly-free), test series, and
/// the test set's ground-truth labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which benchmark this imitates.
    pub kind: DatasetKind,
    /// Training series (nominal behaviour only).
    pub train: TimeSeries,
    /// Test series (nominal behaviour plus injected anomalies).
    pub test: TimeSeries,
    /// Ground-truth labels for the test series.
    pub labels: Labels,
}

impl Dataset {
    /// Convenience: per-timestamp test labels.
    pub fn point_labels(&self) -> Vec<bool> {
        self.labels.point_labels()
    }

    /// Dimensions of the series.
    pub fn dims(&self) -> usize {
        self.train.dims()
    }
}

/// Generates the synthetic counterpart of `kind`.
pub fn generate(kind: DatasetKind, config: GenConfig) -> Dataset {
    let stats = kind.paper_stats();
    let train_len = config.scaled(stats.train);
    let test_len = config.scaled(stats.test);
    let seed = config.seed ^ (kind as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = SignalRng::new(seed);
    let total = train_len + test_len;

    // One long nominal trace, split into train | test, so the test regime
    // matches the training regime (as in the real benchmarks).
    let nominal = match kind {
        DatasetKind::Nab => gen_nab(&mut rng, total),
        DatasetKind::Ucr => gen_ucr(&mut rng, total),
        DatasetKind::Mba => gen_mba(&mut rng, total),
        DatasetKind::Smap => gen_telemetry_platform(&mut rng, total, 25, 12.0 / total as f64),
        DatasetKind::Msl => gen_telemetry_platform(&mut rng, total, 55, 16.0 / total as f64),
        DatasetKind::Swat => gen_water_plant(&mut rng, total, 51, 0.01),
        DatasetKind::Wadi => gen_water_plant(&mut rng, total, 123, 0.04),
        DatasetKind::Smd => gen_server_metrics(&mut rng, total, 38),
        DatasetKind::Msds => gen_distributed_system(&mut rng, total, 10),
    };
    let train = nominal.slice(0, train_len);
    let mut test = nominal.slice(train_len, total);
    let mut labels = Labels::normal(test_len, stats.dims);

    if kind == DatasetKind::Wadi {
        apply_unlabeled_drift(&mut rng, &mut test);
    }
    inject_anomalies(kind, &mut rng, &mut test, &mut labels, stats.anomaly_pct / 100.0);

    Dataset { kind, train, test, labels }
}

// ---- nominal signal builders -----------------------------------------------

fn gen_nab(rng: &mut SignalRng, len: usize) -> TimeSeries {
    // CPU-utilization-like: daily sine + mean-reverting load walk + noise.
    // The walk reverts quickly so the train and test halves share a regime,
    // as in the real NAB traces.
    let daily = sine(rng, len, 288.0, 1.0, 0.0, 0.05);
    let walk = random_walk(rng, len, 0.0, 0.08, 0.05);
    let col: Vec<f64> = daily
        .iter()
        .zip(&walk)
        .map(|(&a, &b)| 50.0 + 20.0 * a + 5.0 * b)
        .collect();
    TimeSeries::from_columns(&[col])
}

fn gen_ucr(rng: &mut SignalRng, len: usize) -> TimeSeries {
    // Physiological pulse train (InternalBleeding / ECG style).
    TimeSeries::from_columns(&[ecg(rng, len, 64, 4.0, 0.08)])
}

fn gen_mba(rng: &mut SignalRng, len: usize) -> TimeSeries {
    // Two ECG leads sharing rhythm: lead II plus a scaled, lagged lead V.
    let lead2 = ecg(rng, len, 72, 5.0, 0.06);
    let lead_v: Vec<f64> = (0..len)
        .map(|t| 0.6 * lead2[t.saturating_sub(2)] + 0.04 * rng.normal())
        .collect();
    TimeSeries::from_columns(&[lead2, lead_v])
}

fn gen_telemetry_platform(rng: &mut SignalRng, len: usize, dims: usize, switch_p: f64) -> TimeSeries {
    // Spacecraft-style channels: one continuous primary channel, the rest
    // piecewise-constant discrete telemetry with occasional regime switches.
    let mut cols = Vec::with_capacity(dims);
    cols.push(
        sine(rng, len, 200.0, 1.0, 0.0, 0.05)
            .iter()
            .zip(random_walk(rng, len, 0.0, 0.08, 0.05))
            .map(|(&a, b)| a + 0.5 * b)
            .collect(),
    );
    for d in 1..dims {
        let n_levels = 2 + d % 4;
        let levels: Vec<f64> = (0..n_levels).map(|l| l as f64 / n_levels as f64).collect();
        cols.push(telemetry(rng, len, &levels, switch_p, 0.02));
    }
    TimeSeries::from_columns(&cols)
}

fn gen_water_plant(rng: &mut SignalRng, len: usize, dims: usize, noise: f64) -> TimeSeries {
    // ICS process: tank levels (sawtooth integrators), flow rates driven by
    // the tanks, and binary actuators.
    let n_tanks = dims / 5 + 1;
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dims);
    let mut tanks: Vec<Vec<f64>> = Vec::with_capacity(n_tanks);
    for i in 0..n_tanks {
        let period_scale = 1.0 + i as f64 * 0.3;
        tanks.push(tank_level(
            rng,
            len,
            1.0,
            9.0,
            0.04 * period_scale,
            0.06 * period_scale,
            noise,
        ));
    }
    for d in 0..dims {
        let tank = &tanks[d % n_tanks];
        match d % 5 {
            0 => cols.push(tank.clone()),
            1 | 2 => {
                // Flow sensor: derivative-ish of the driving tank + noise.
                let col: Vec<f64> = (0..len)
                    .map(|t| {
                        let dv = if t > 0 { tank[t] - tank[t - 1] } else { 0.0 };
                        2.0 + 10.0 * dv + noise * rng.normal()
                    })
                    .collect();
                cols.push(col);
            }
            _ => cols.push(actuator(rng, tank, noise * 0.05)),
        }
    }
    TimeSeries::from_columns(&cols)
}

fn gen_server_metrics(rng: &mut SignalRng, len: usize, dims: usize) -> TimeSeries {
    // Machine metrics: periodic load with small bursts (CPU/requests),
    // channels correlated in pairs (cpu <-> load), tight memory-like walks
    // and smooth utilization waves. Nominal behaviour is predictable so
    // the paper's "mild anomalies close to normal data" remain the hard
    // part, not the baseline noise.
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dims);
    for d in 0..dims {
        match d % 4 {
            0 => {
                // Periodic load: the period is short relative to the
                // training split so the full value range is seen during
                // training (min-max normalization needs representative
                // ranges; the real SMD traces span five weeks).
                cols.push(sine(rng, len, 150.0 + (d as f64) * 7.0, 0.25, 0.5, 0.03));
            }
            1 => {
                // Correlated with the previous load channel.
                let prev = cols.last().expect("d%4==1 follows d%4==0").clone();
                let col: Vec<f64> = prev
                    .iter()
                    .map(|&v| 0.7 * v + 0.1 + 0.015 * rng.normal())
                    .collect();
                cols.push(col);
            }
            2 => cols.push(random_walk(rng, len, 0.5, 0.1, 0.01)),
            _ => cols.push(sine(rng, len, 400.0, 0.2, 0.5, 0.02)),
        }
    }
    TimeSeries::from_columns(&cols)
}

fn gen_distributed_system(rng: &mut SignalRng, len: usize, dims: usize) -> TimeSeries {
    // Distributed-system golden signals: latency, error-ish, saturation,
    // traffic per service, with cross-service coupling.
    let traffic = sine(rng, len, 500.0, 0.5, 1.0, 0.05);
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dims);
    for d in 0..dims {
        let coupling = 0.3 + 0.1 * (d % 3) as f64;
        let base = bursty(rng, len, 0.2, 0.004, 0.3, 0.9, 0.02);
        let col: Vec<f64> = (0..len)
            .map(|t| base[t] + coupling * traffic[t] + 0.02 * rng.normal())
            .collect();
        cols.push(col);
    }
    TimeSeries::from_columns(&cols)
}

/// Unlabeled nominal drift applied to the WADI test split: a fraction of
/// sensors slowly shift operating point, mimicking the train/test regime
/// gap of the real testbed. This is *not* ground-truth anomalous.
fn apply_unlabeled_drift(rng: &mut SignalRng, test: &mut TimeSeries) {
    let dims = test.dims();
    let len = test.len();
    let drifting = (dims / 5).max(1);
    for _ in 0..drifting {
        let d = rng.index(0, dims);
        let col = test.column(d);
        let mean = col.iter().sum::<f64>() / len as f64;
        let std = (col.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / len as f64)
            .sqrt()
            .max(1e-6);
        let target = rng.uniform(0.5, 1.2) * std * if rng.chance(0.5) { 1.0 } else { -1.0 };
        for t in 0..len {
            let frac = t as f64 / len as f64;
            let v = test.get(t, d);
            test.set(t, d, v + frac * target);
        }
    }
}

// ---- anomaly plans ----------------------------------------------------------

fn inject_anomalies(
    kind: DatasetKind,
    rng: &mut SignalRng,
    test: &mut TimeSeries,
    labels: &mut Labels,
    rate: f64,
) {
    let dims = test.dims();
    let len = test.len();
    let mut inj = Injector::new(test, labels);
    match kind {
        DatasetKind::Nab => {
            // Short point-ish anomalies with varied shape and sign so
            // separate incidents do not "twin" (which would hide them from
            // discord-based detectors).
            for (i, (s, e)) in plan_segments(rng, len, rate, 1, 6).into_iter().enumerate() {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                for t in s..e {
                    inj.spike(t, 0, sign * rng.uniform(4.0, 8.0));
                }
            }
        }
        DatasetKind::Ucr => {
            // Distorted beats: noise bursts and local level shifts.
            for (i, (s, e)) in plan_segments(rng, len, rate, 8, 40).into_iter().enumerate() {
                if i % 2 == 0 {
                    inj.noise_burst(rng, s, e, 0, 4.0);
                } else {
                    inj.level_shift(s, e, 0, 3.0);
                }
            }
        }
        DatasetKind::Mba => {
            // Arrhythmia episodes: runs of abnormal rhythm visible in both
            // leads (supraventricular contractions raise the baseline;
            // premature beats add irregular energy).
            for (i, (s, e)) in plan_segments(rng, len, rate, 8, 30).into_iter().enumerate() {
                if i % 2 == 0 {
                    inj.level_shift(s, e, 0, 3.0);
                    inj.level_shift(s, e, 1, 2.5);
                } else {
                    inj.noise_burst(rng, s, e, 0, 4.0);
                    inj.noise_burst(rng, s, e, 1, 3.0);
                }
            }
        }
        DatasetKind::Smap | DatasetKind::Msl => {
            // Long telemetry faults on a couple of channels per segment.
            // Shifts push channels outside their sanctioned level range so
            // faults are distinguishable from ordinary regime switches
            // (flatlines would be invisible on piecewise-constant
            // telemetry, so only the continuous channel 0 gets them).
            for (i, (s, e)) in plan_segments(rng, len, rate, 20, len / 8)
                .into_iter()
                .enumerate()
            {
                let d0 = rng.index(0, dims);
                match i % 3 {
                    0 => inj.level_shift(s, e, d0, rng.uniform(4.0, 8.0)),
                    1 if d0 == 0 => inj.flatline(s, e, 0),
                    1 => inj.noise_burst(rng, s, e, d0, 3.0),
                    _ => inj.drift(s, e, d0, 6.0),
                }
                let d1 = (d0 + 1 + rng.index(0, dims - 1)) % dims;
                inj.level_shift(s, e, d1, 4.0);
                if rng.chance(0.5) {
                    let d2 = (d0 + 2 + rng.index(0, dims - 1)) % dims;
                    inj.level_shift(s, e, d2, 4.0);
                }
            }
        }
        DatasetKind::Swat => {
            // Attacks: actuators/sensors stuck at abnormal levels plus
            // shifted process variables for sustained periods. Real SWaT
            // attacks propagate through the physical process, so several
            // related channels deviate together.
            for (s, e) in plan_segments(rng, len, rate, 30, len / 6) {
                let attacked = 3 + rng.index(0, 4.min(dims));
                let first = rng.index(0, dims);
                for i in 0..attacked {
                    let d = (first + i * 5) % dims; // spread across process units
                    if rng.chance(0.5) {
                        inj.stuck_at(s, e, d, rng.uniform(2.0, 4.0));
                    } else {
                        inj.level_shift(s, e, d, rng.uniform(2.0, 4.0));
                    }
                }
            }
        }
        DatasetKind::Wadi => {
            // The hard dataset: attacks are *mild* (barely outside nominal
            // variation) and the nominal regime drifts between the training
            // and attack periods (14 vs 2 days in the real testbed), which
            // is what collapses every method's precision in Table 2.
            for (s, e) in plan_segments(rng, len, rate, 20, len / 10) {
                let attacked = 1 + rng.index(0, 2);
                for _ in 0..attacked {
                    let d = rng.index(0, dims);
                    if rng.chance(0.5) {
                        inj.stuck_at(s, e, d, rng.uniform(0.8, 1.6));
                    } else {
                        inj.level_shift(s, e, d, rng.uniform(0.8, 1.6));
                    }
                }
            }
        }
        DatasetKind::Smd => {
            // Mild anomalies close to normal data (§4.3): small shifts and
            // modest extra bursts.
            for (i, (s, e)) in plan_segments(rng, len, rate, 10, 60).into_iter().enumerate() {
                let d = rng.index(0, dims);
                if i % 2 == 0 {
                    inj.level_shift(s, e, d, rng.uniform(2.0, 3.0));
                } else {
                    inj.noise_burst(rng, s, e, d, 2.5);
                }
                if rng.chance(0.5) {
                    let d2 = (d + 1) % dims;
                    inj.level_shift(s, e, d2, 1.5);
                }
            }
        }
        DatasetKind::Msds => {
            // Cascading faults across services (Figure 5 discussion).
            for (s, e) in plan_segments(rng, len, rate, 25, 120) {
                let n = 2 + rng.index(0, 4.min(dims - 1));
                let first = rng.index(0, dims);
                let chain: Vec<usize> = (0..n).map(|i| (first + i) % dims).collect();
                let lag = 3 + rng.index(0, 5);
                inj.cascade(s, e, &chain, lag, rng.uniform(2.5, 4.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenConfig {
        GenConfig { scale: 0.002, min_len: 400, seed: 7 }
    }

    #[test]
    fn all_datasets_generate() {
        for kind in DatasetKind::all() {
            let ds = generate(kind, small());
            let stats = kind.paper_stats();
            assert_eq!(ds.dims(), stats.dims, "{}", kind.name());
            assert!(ds.train.len() >= 400);
            assert!(ds.test.len() >= 400);
            assert_eq!(ds.labels.len(), ds.test.len());
            assert!(ds.train.data().iter().all(|v| v.is_finite()));
            assert!(ds.test.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn anomaly_rates_roughly_match_paper() {
        for kind in DatasetKind::all() {
            let ds = generate(kind, GenConfig { scale: 0.01, min_len: 2000, seed: 1 });
            let target = kind.paper_stats().anomaly_pct / 100.0;
            let actual = ds.labels.anomaly_rate();
            assert!(
                actual > target * 0.3 && actual < target * 2.5 + 0.01,
                "{}: target {target:.4}, actual {actual:.4}",
                kind.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetKind::Smd, small());
        let b = generate(DatasetKind::Smd, small());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetKind::Nab, GenConfig { seed: 1, ..small() });
        let b = generate(DatasetKind::Nab, GenConfig { seed: 2, ..small() });
        assert_ne!(a.test, b.test);
    }

    #[test]
    fn train_split_is_clean() {
        // Training data must contain no labeled anomalies by construction;
        // sanity check the test labels exist instead.
        let ds = generate(DatasetKind::Msds, small());
        assert!(ds.labels.anomaly_rate() > 0.0);
    }

    #[test]
    fn msds_anomalies_touch_multiple_dims() {
        let ds = generate(DatasetKind::Msds, GenConfig { scale: 0.01, min_len: 1000, seed: 3 });
        let multi = (0..ds.labels.len())
            .filter(|&t| ds.labels.dim_labels(t).iter().filter(|&&b| b).count() >= 2)
            .count();
        assert!(multi > 0, "cascades should label several dimensions");
    }

    #[test]
    fn parse_names() {
        assert_eq!(DatasetKind::parse("swat"), Some(DatasetKind::Swat));
        assert_eq!(DatasetKind::parse("WADI"), Some(DatasetKind::Wadi));
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn pot_quantiles_match_paper() {
        assert_eq!(DatasetKind::Smap.pot_low_quantile(), 0.07);
        assert_eq!(DatasetKind::Msl.pot_low_quantile(), 0.01);
        assert_eq!(DatasetKind::Smd.pot_low_quantile(), 0.001);
    }
}

//! Training-data splits: the 80/20 train/validation split (paper §4) and
//! the random 20–100 % training subsets of Table 3 / Figure 6.

use crate::series::TimeSeries;
use crate::signal::SignalRng;

/// Splits a training series into (train, validation) with the given train
/// fraction, preserving temporal order (paper §4 uses 80/20).
pub fn train_val_split(series: &TimeSeries, train_frac: f64) -> (TimeSeries, TimeSeries) {
    assert!(
        train_frac > 0.0 && train_frac < 1.0,
        "train fraction must be in (0,1)"
    );
    let cut = ((series.len() as f64 * train_frac).round() as usize)
        .clamp(1, series.len().saturating_sub(1));
    (series.slice(0, cut), series.slice(cut, series.len()))
}

/// A random contiguous subsequence covering `frac` of the series (§5.3:
/// models are "given the same randomly sampled subsequence of 20% to 100%
/// size as that of the training data").
pub fn random_subsequence(series: &TimeSeries, frac: f64, seed: u64) -> TimeSeries {
    assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0,1]");
    let take = ((series.len() as f64 * frac).round() as usize).max(2);
    if take >= series.len() {
        return series.clone();
    }
    let mut rng = SignalRng::new(seed);
    let start = rng.index(0, series.len() - take);
    series.slice(start, start + take)
}

/// The five seeded 20 % subsets used for the averaged F1*/AUC* numbers
/// (paper §4.2.1: "We train on the five sets of 20% training data and
/// report average results").
pub fn limited_data_subsets(series: &TimeSeries, frac: f64, seed: u64) -> Vec<TimeSeries> {
    (0..5)
        .map(|i| random_subsequence(series, frac, seed.wrapping_add(i * 7919)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize) -> TimeSeries {
        TimeSeries::from_columns(&[(0..len).map(|t| t as f64).collect()])
    }

    #[test]
    fn split_80_20() {
        let s = series(100);
        let (train, val) = train_val_split(&s, 0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
        // order preserved: validation is the tail
        assert_eq!(val.get(0, 0), 80.0);
    }

    #[test]
    fn split_tiny_series() {
        let s = series(2);
        let (train, val) = train_val_split(&s, 0.8);
        assert_eq!(train.len() + val.len(), 2);
        assert!(!train.is_empty() && !val.is_empty());
    }

    #[test]
    fn subsequence_is_contiguous_and_sized() {
        let s = series(1000);
        let sub = random_subsequence(&s, 0.2, 1);
        assert_eq!(sub.len(), 200);
        for t in 1..sub.len() {
            assert_eq!(sub.get(t, 0) - sub.get(t - 1, 0), 1.0);
        }
    }

    #[test]
    fn subsequence_full_fraction_is_identity() {
        let s = series(50);
        assert_eq!(random_subsequence(&s, 1.0, 9), s);
    }

    #[test]
    fn five_subsets_differ() {
        let s = series(10_000);
        let subs = limited_data_subsets(&s, 0.2, 3);
        assert_eq!(subs.len(), 5);
        let starts: Vec<i64> = subs.iter().map(|x| x.get(0, 0) as i64).collect();
        let distinct = starts
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct >= 4, "starts {starts:?}");
    }
}

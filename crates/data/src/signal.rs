//! Signal primitives used by the synthetic dataset generators: seeded noise,
//! periodic waves, random walks, ECG-like pulse trains, and process-control
//! dynamics (tank levels, actuator states).

use tranad_tensor::Rng;

/// Seeded random source for signal generation.
pub struct SignalRng {
    rng: Rng,
}

impl SignalRng {
    /// Creates a seeded source.
    pub fn new(seed: u64) -> Self {
        SignalRng { rng: Rng::new(seed) }
    }

    /// Uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_usize(lo, hi)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        self.rng.normal()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

/// A sine wave `amplitude * sin(2π t / period + phase) + offset` with
/// additive Gaussian noise.
pub fn sine(
    rng: &mut SignalRng,
    len: usize,
    period: f64,
    amplitude: f64,
    offset: f64,
    noise: f64,
) -> Vec<f64> {
    let phase = rng.uniform(0.0, std::f64::consts::TAU);
    (0..len)
        .map(|t| {
            amplitude * (std::f64::consts::TAU * t as f64 / period + phase).sin()
                + offset
                + noise * rng.normal()
        })
        .collect()
}

/// A mean-reverting random walk (Ornstein–Uhlenbeck-style):
/// `x_{t+1} = x_t + theta (mu - x_t) + sigma N(0,1)`.
pub fn random_walk(rng: &mut SignalRng, len: usize, mu: f64, theta: f64, sigma: f64) -> Vec<f64> {
    let mut x = mu;
    (0..len)
        .map(|_| {
            x += theta * (mu - x) + sigma * rng.normal();
            x
        })
        .collect()
}

/// An ECG-like pulse train: sharp QRS-style spikes every `period` steps (with
/// jitter), smaller P/T bumps, and baseline noise. Used for UCR/MBA-style
/// physiological traces.
pub fn ecg(rng: &mut SignalRng, len: usize, period: usize, amplitude: f64, noise: f64) -> Vec<f64> {
    assert!(period >= 8, "ECG period too short");
    let mut out = vec![0.0; len];
    let mut t = rng.index(0, period);
    while t < len {
        // P wave
        add_bump(&mut out, t.saturating_sub(period / 5), period / 10, amplitude * 0.15);
        // QRS complex: down, sharp up, down
        if t >= 1 {
            out[t - 1] -= amplitude * 0.2;
        }
        out[t] += amplitude;
        if t + 1 < len {
            out[t + 1] -= amplitude * 0.3;
        }
        // T wave
        add_bump(&mut out, t + period / 6, period / 8, amplitude * 0.25);
        let jitter = rng.index(0, (period / 10).max(1) + 1);
        t += period - period / 20 + jitter;
    }
    for v in &mut out {
        *v += noise * rng.normal();
    }
    out
}

fn add_bump(out: &mut [f64], center: usize, half_width: usize, height: f64) {
    let hw = half_width.max(1);
    let lo = center.saturating_sub(hw);
    let hi = (center + hw).min(out.len().saturating_sub(1));
    for t in lo..=hi {
        if t >= out.len() {
            break;
        }
        let d = (t as f64 - center as f64) / hw as f64;
        out[t] += height * (1.0 - d * d).max(0.0);
    }
}

/// A sawtooth "tank level" process: rises at `fill_rate` until a threshold,
/// then drains faster; with sensor noise. Models SWaT/WADI water processes.
pub fn tank_level(
    rng: &mut SignalRng,
    len: usize,
    low: f64,
    high: f64,
    fill_rate: f64,
    drain_rate: f64,
    noise: f64,
) -> Vec<f64> {
    let mut level = rng.uniform(low, high);
    let mut filling = rng.chance(0.5);
    (0..len)
        .map(|_| {
            if filling {
                level += fill_rate * (1.0 + 0.1 * rng.normal());
                if level >= high {
                    filling = false;
                }
            } else {
                level -= drain_rate * (1.0 + 0.1 * rng.normal());
                if level <= low {
                    filling = true;
                }
            }
            level + noise * rng.normal()
        })
        .collect()
}

/// A binary actuator trace derived from a continuous signal: 1 while the
/// signal is above its midpoint, 0 otherwise, with rare random toggles.
pub fn actuator(rng: &mut SignalRng, driver: &[f64], toggle_p: f64) -> Vec<f64> {
    let min = driver.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = driver.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mid = 0.5 * (min + max);
    driver
        .iter()
        .map(|&v| {
            let base = if v > mid { 1.0 } else { 0.0 };
            if rng.chance(toggle_p) {
                1.0 - base
            } else {
                base
            }
        })
        .collect()
}

/// A bursty server-metric-like trace: baseline load plus Poisson-ish bursts
/// with exponential decay (CPU / requests / IO patterns for SMD).
pub fn bursty(
    rng: &mut SignalRng,
    len: usize,
    baseline: f64,
    burst_p: f64,
    burst_height: f64,
    decay: f64,
    noise: f64,
) -> Vec<f64> {
    let mut burst = 0.0;
    (0..len)
        .map(|_| {
            if rng.chance(burst_p) {
                burst += burst_height * rng.uniform(0.5, 1.5);
            }
            burst *= decay;
            (baseline + burst + noise * rng.normal()).max(0.0)
        })
        .collect()
}

/// Piecewise-constant telemetry with occasional regime switches
/// (SMAP/MSL-style spacecraft channels). Transitions ramp over a few steps
/// — physical actuators slew rather than jump, which is what lets models
/// distinguish sanctioned mode changes from step-change faults.
pub fn telemetry(
    rng: &mut SignalRng,
    len: usize,
    levels: &[f64],
    switch_p: f64,
    noise: f64,
) -> Vec<f64> {
    assert!(!levels.is_empty(), "need at least one level");
    const RAMP: f64 = 0.25; // fraction of the remaining gap closed per step
    let mut target = levels[rng.index(0, levels.len())];
    let mut level = target;
    (0..len)
        .map(|_| {
            if rng.chance(switch_p) {
                target = levels[rng.index(0, levels.len())];
            }
            level += RAMP * (target - level);
            level + noise * rng.normal()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_has_expected_stats() {
        let mut rng = SignalRng::new(1);
        let s = sine(&mut rng, 10_000, 50.0, 2.0, 5.0, 0.0);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 7.0).abs() < 0.05, "max {max}");
    }

    #[test]
    fn random_walk_mean_reverts() {
        let mut rng = SignalRng::new(2);
        let s = random_walk(&mut rng, 20_000, 10.0, 0.05, 0.5);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn ecg_has_periodic_peaks() {
        let mut rng = SignalRng::new(3);
        let s = ecg(&mut rng, 2_000, 50, 5.0, 0.05);
        let peaks = s.iter().filter(|&&v| v > 2.5).count();
        // Roughly one QRS spike per period.
        assert!((25..=80).contains(&peaks), "peaks {peaks}");
    }

    #[test]
    fn tank_level_stays_in_band() {
        let mut rng = SignalRng::new(4);
        let s = tank_level(&mut rng, 5_000, 1.0, 9.0, 0.05, 0.08, 0.01);
        assert!(s.iter().all(|&v| v > 0.0 && v < 10.0));
        // It must actually oscillate, not settle.
        let lo_hits = s.iter().filter(|&&v| v < 2.0).count();
        let hi_hits = s.iter().filter(|&&v| v > 8.0).count();
        assert!(lo_hits > 0 && hi_hits > 0);
    }

    #[test]
    fn actuator_is_binaryish() {
        let mut rng = SignalRng::new(5);
        let driver = sine(&mut rng, 1_000, 100.0, 1.0, 0.0, 0.0);
        let a = actuator(&mut rng, &driver, 0.0);
        assert!(a.iter().all(|&v| v == 0.0 || v == 1.0));
        let ones = a.iter().filter(|&&v| v == 1.0).count();
        assert!(ones > 300 && ones < 700, "ones {ones}");
    }

    #[test]
    fn bursty_nonnegative_with_bursts() {
        let mut rng = SignalRng::new(6);
        let s = bursty(&mut rng, 10_000, 0.2, 0.01, 1.0, 0.95, 0.02);
        assert!(s.iter().all(|&v| v >= 0.0));
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 0.6, "no bursts observed, max {max}");
    }

    #[test]
    fn telemetry_visits_levels() {
        let mut rng = SignalRng::new(7);
        let s = telemetry(&mut rng, 10_000, &[0.0, 1.0, 2.0], 0.01, 0.01);
        for target in [0.0, 1.0, 2.0] {
            assert!(
                s.iter().any(|&v| (v - target).abs() < 0.1),
                "level {target} never visited"
            );
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = sine(&mut SignalRng::new(9), 100, 20.0, 1.0, 0.0, 0.1);
        let b = sine(&mut SignalRng::new(9), 100, 20.0, 1.0, 0.0, 0.1);
        assert_eq!(a, b);
    }
}

//! Anomaly injection: the fault types the paper's datasets contain
//! (point spikes, contextual deviations, collective level shifts, flatlined
//! sensors, drifts, noise bursts, and MSDS-style cascading faults), each
//! writing both the corrupted values and the per-dimension ground truth.

use crate::series::{Labels, TimeSeries};
use crate::signal::SignalRng;

/// Injects anomalies into a series while maintaining ground-truth labels.
pub struct Injector<'a> {
    series: &'a mut TimeSeries,
    labels: &'a mut Labels,
    stds: Vec<f64>,
}

impl<'a> Injector<'a> {
    /// Creates an injector. Per-dimension standard deviations are captured
    /// up front so anomaly magnitudes scale with the nominal signal.
    pub fn new(series: &'a mut TimeSeries, labels: &'a mut Labels) -> Self {
        assert_eq!(series.len(), labels.len(), "series/label length mismatch");
        assert_eq!(series.dims(), labels.dims(), "series/label dims mismatch");
        let stds = (0..series.dims())
            .map(|d| {
                let col = series.column(d);
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                let var =
                    col.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
                var.sqrt().max(1e-6)
            })
            .collect();
        Injector { series, labels, stds }
    }

    /// Scale unit: the pre-injection standard deviation of dimension `d`.
    pub fn std(&self, d: usize) -> f64 {
        self.stds[d]
    }

    /// A single-point spike of `magnitude` standard deviations.
    pub fn spike(&mut self, t: usize, d: usize, magnitude: f64) {
        let v = self.series.get(t, d);
        self.series.set(t, d, v + magnitude * self.stds[d]);
        self.labels.mark(t, t + 1, d);
    }

    /// A sustained level shift over `[start, end)`.
    pub fn level_shift(&mut self, start: usize, end: usize, d: usize, magnitude: f64) {
        let delta = magnitude * self.stds[d];
        for t in start..end.min(self.series.len()) {
            let v = self.series.get(t, d);
            self.series.set(t, d, v + delta);
        }
        self.labels.mark(start, end, d);
    }

    /// A stuck-at-level fault: the sensor reports a constant abnormal
    /// value `magnitude` standard deviations above its local value (the
    /// classic ICS attack: an actuator forced to an extreme position).
    pub fn stuck_at(&mut self, start: usize, end: usize, d: usize, magnitude: f64) {
        let level = self.series.get(start, d) + magnitude * self.stds[d];
        for t in start..end.min(self.series.len()) {
            self.series.set(t, d, level);
        }
        self.labels.mark(start, end, d);
    }

    /// A stuck-at fault: the sensor repeats its value at `start`.
    pub fn flatline(&mut self, start: usize, end: usize, d: usize) {
        let frozen = self.series.get(start, d);
        for t in start..end.min(self.series.len()) {
            self.series.set(t, d, frozen);
        }
        self.labels.mark(start, end, d);
    }

    /// A burst of extra Gaussian noise.
    pub fn noise_burst(
        &mut self,
        rng: &mut SignalRng,
        start: usize,
        end: usize,
        d: usize,
        magnitude: f64,
    ) {
        for t in start..end.min(self.series.len()) {
            let v = self.series.get(t, d);
            self.series
                .set(t, d, v + magnitude * self.stds[d] * rng.normal());
        }
        self.labels.mark(start, end, d);
    }

    /// A linear drift reaching `magnitude` standard deviations at the end.
    pub fn drift(&mut self, start: usize, end: usize, d: usize, magnitude: f64) {
        let end = end.min(self.series.len());
        let span = (end - start).max(1) as f64;
        for t in start..end {
            let frac = (t - start + 1) as f64 / span;
            let v = self.series.get(t, d);
            self.series.set(t, d, v + frac * magnitude * self.stds[d]);
        }
        self.labels.mark(start, end, d);
    }

    /// A cascading fault (MSDS-style): dimension `dims[i]` shifts starting
    /// at `start + i * lag`, all segments ending together at `end`.
    pub fn cascade(&mut self, start: usize, end: usize, dims: &[usize], lag: usize, magnitude: f64) {
        for (i, &d) in dims.iter().enumerate() {
            let s = (start + i * lag).min(end);
            self.level_shift(s, end, d, magnitude);
        }
    }
}

/// Plans non-overlapping anomaly segments totalling approximately
/// `target_rate` of the series, each `min_len..=max_len` long. Segments are
/// separated by at least `min_len` normal points.
pub fn plan_segments(
    rng: &mut SignalRng,
    len: usize,
    target_rate: f64,
    min_len: usize,
    max_len: usize,
) -> Vec<(usize, usize)> {
    assert!(min_len >= 1 && max_len >= min_len, "bad segment bounds");
    let budget = (target_rate * len as f64).round() as usize;
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut used = 0usize;
    let mut attempts = 0;
    while used < budget && attempts < 10_000 {
        attempts += 1;
        let seg_len = rng.index(min_len, max_len + 1).min(budget - used + min_len);
        if seg_len >= len {
            break;
        }
        let start = rng.index(0, len - seg_len);
        let end = start + seg_len;
        let clash = segments.iter().any(|&(s, e)| {
            start < e + min_len && s < end + min_len // enforce a gap
        });
        if clash {
            continue;
        }
        segments.push((start, end));
        used += seg_len;
    }
    segments.sort_unstable();
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(len: usize, dims: usize) -> (TimeSeries, Labels) {
        let cols: Vec<Vec<f64>> = (0..dims)
            .map(|d| (0..len).map(|t| ((t + d) as f64 * 0.1).sin()).collect())
            .collect();
        let series = TimeSeries::from_columns(&cols);
        let labels = Labels::normal(len, dims);
        (series, labels)
    }

    #[test]
    fn spike_changes_value_and_label() {
        let (mut s, mut l) = fixture(100, 2);
        let before = s.get(50, 1);
        Injector::new(&mut s, &mut l).spike(50, 1, 5.0);
        assert!((s.get(50, 1) - before).abs() > 1.0);
        assert!(l.at(50, 1));
        assert!(!l.at(50, 0));
        assert!(!l.point(49));
    }

    #[test]
    fn level_shift_marks_range() {
        let (mut s, mut l) = fixture(100, 1);
        Injector::new(&mut s, &mut l).level_shift(10, 20, 0, 3.0);
        assert!((10..20).all(|t| l.point(t)));
        assert!(!(0..10).any(|t| l.point(t)));
    }

    #[test]
    fn stuck_at_holds_abnormal_level() {
        let (mut s, mut l) = fixture(100, 1);
        let mut inj = Injector::new(&mut s, &mut l);
        let expected = inj.std(0);
        inj.stuck_at(30, 40, 0, 3.0);
        let level = s.get(30, 0);
        assert!((30..40).all(|t| s.get(t, 0) == level));
        // The stuck level sits ~3 sigma above the pre-fault value.
        assert!(level > 3.0 * expected - 1.5, "level {level}");
        assert!(l.at(35, 0));
    }

    #[test]
    fn flatline_freezes_values() {
        let (mut s, mut l) = fixture(100, 1);
        Injector::new(&mut s, &mut l).flatline(30, 40, 0);
        let frozen = s.get(30, 0);
        assert!((30..40).all(|t| s.get(t, 0) == frozen));
        assert!(l.at(35, 0));
    }

    #[test]
    fn drift_grows_monotonically() {
        let (mut s, mut l) = fixture(200, 1);
        let baseline = s.clone();
        Injector::new(&mut s, &mut l).drift(50, 150, 0, 4.0);
        let early = s.get(55, 0) - baseline.get(55, 0);
        let late = s.get(149, 0) - baseline.get(149, 0);
        assert!(late > early && early > 0.0);
    }

    #[test]
    fn cascade_staggers_starts() {
        let (mut s, mut l) = fixture(100, 4);
        Injector::new(&mut s, &mut l).cascade(10, 40, &[0, 1, 2], 5, 3.0);
        assert!(l.at(10, 0));
        assert!(!l.at(10, 1));
        assert!(l.at(15, 1));
        assert!(!l.at(15, 2));
        assert!(l.at(20, 2));
        assert!(!l.point(45));
    }

    #[test]
    fn noise_burst_increases_variance() {
        let (mut s, mut l) = fixture(500, 1);
        let before: Vec<f64> = (100..200).map(|t| s.get(t, 0)).collect();
        let mut rng = SignalRng::new(1);
        Injector::new(&mut s, &mut l).noise_burst(&mut rng, 100, 200, 0, 5.0);
        let after: Vec<f64> = (100..200).map(|t| s.get(t, 0)).collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&after) > 4.0 * var(&before));
    }

    #[test]
    fn plan_segments_respects_rate_and_separation() {
        let mut rng = SignalRng::new(2);
        let segs = plan_segments(&mut rng, 10_000, 0.05, 5, 50);
        let total: usize = segs.iter().map(|(s, e)| e - s).sum();
        let rate = total as f64 / 10_000.0;
        assert!(rate > 0.03 && rate < 0.08, "rate {rate}");
        for w in segs.windows(2) {
            assert!(w[0].1 + 5 <= w[1].0, "segments overlap or touch: {w:?}");
        }
    }

    #[test]
    fn plan_segments_zero_rate() {
        let mut rng = SignalRng::new(3);
        assert!(plan_segments(&mut rng, 1000, 0.0, 5, 10).is_empty());
    }
}

//! Prometheus text-exposition (format 0.0.4) rendering over telemetry
//! snapshots and engine observability state.
//!
//! Everything here is pure string building over already-snapshotted data —
//! no locks, no I/O — so a scrape's lock hold is exactly the snapshot
//! clone, never the render. Output is deterministic: recorder metrics
//! render in the snapshot's name order (a `BTreeMap` walk), engine
//! families in a fixed code order, and per-stream series sorted by stream
//! name, so two scrapes of the same state are byte-identical.

use crate::state::{HealthReport, ObsSnapshot, StreamStats};
use std::fmt::Write;
use tranad_telemetry::{Histogram, Metric, MetricsSnapshot, BUCKETS};

/// Prefix applied to every exported metric name.
const PREFIX: &str = "tranad_";

/// Rewrites an internal metric name (e.g. `serve.push_us`) into a valid
/// Prometheus metric-name body: every character outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if c.is_ascii_digit() && i == 0 {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the text exposition format: backslash, double
/// quote and newline become `\\`, `\"` and `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value. Rust's `Display` for `f64` is already in the
/// accepted grammar for finite values; infinities and NaN use the
/// exposition spellings `+Inf` / `-Inf` / `NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Exported name of a counter family: sanitized, prefixed, `_total`-suffixed
/// (unless the name already carries the suffix).
fn counter_name(name: &str) -> String {
    let body = sanitize_name(name);
    if body.ends_with("_total") {
        format!("{PREFIX}{body}")
    } else {
        format!("{PREFIX}{body}_total")
    }
}

/// Renders every metric in a recorder snapshot as one Prometheus family
/// each: counters with a `_total` suffix, gauges as-is, and log2
/// histograms as cumulative `_bucket{le=...}` series (only non-empty
/// buckets plus the mandatory `+Inf`) with `_sum` and `_count`.
pub fn render_metrics(snap: &MetricsSnapshot, out: &mut String) {
    for (name, metric) in snap.iter() {
        match metric {
            Metric::Counter(c) => {
                let full = counter_name(name);
                let _ = writeln!(out, "# TYPE {full} counter");
                let _ = writeln!(out, "{full} {c}");
            }
            Metric::Gauge(g) => {
                let full = format!("{PREFIX}{}", sanitize_name(name));
                let _ = writeln!(out, "# TYPE {full} gauge");
                let _ = writeln!(out, "{full} {}", fmt_value(*g));
            }
            Metric::Histogram(h) => render_histogram(name, h, out),
        }
    }
}

fn render_histogram(name: &str, h: &Histogram, out: &mut String) {
    let full = format!("{PREFIX}{}", sanitize_name(name));
    let _ = writeln!(out, "# TYPE {full} histogram");
    let mut cum = 0u64;
    for i in 0..BUCKETS {
        if h.buckets[i] == 0 {
            continue;
        }
        cum += h.buckets[i];
        let le = Histogram::bucket_upper(i);
        if le.is_finite() {
            let _ = writeln!(out, "{full}_bucket{{le=\"{}\"}} {cum}", fmt_value(le));
        }
    }
    let _ = writeln!(out, "{full}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{full}_sum {}", fmt_value(h.sum));
    let _ = writeln!(out, "{full}_count {}", h.count);
    if h.dropped > 0 {
        let _ = writeln!(out, "# TYPE {full}_dropped_total counter");
        let _ = writeln!(out, "{full}_dropped_total {}", h.dropped);
    }
}

/// One labeled per-stream family: a TYPE line, then one series per stream
/// in sorted-name order.
fn render_stream_family(
    streams: &[&StreamStats],
    family: &str,
    kind: &str,
    value: impl Fn(&StreamStats) -> f64,
    out: &mut String,
) {
    let _ = writeln!(out, "# TYPE {PREFIX}{family} {kind}");
    for s in streams {
        let _ = writeln!(
            out,
            "{PREFIX}{family}{{stream=\"{}\"}} {}",
            escape_label(&s.name),
            fmt_value(value(s))
        );
    }
}

/// Renders the engine's published state: engine-level counters/gauges,
/// evaluated health conditions, and the per-stream stats table as labeled
/// families. `report` must come from the same state (the exporter
/// evaluates it off one snapshot so a scrape is self-consistent).
pub fn render_engine(snap: &ObsSnapshot, report: &HealthReport, out: &mut String) {
    let s = &snap.status;
    let gauge = |out: &mut String, family: &str, v: f64| {
        let _ = writeln!(out, "# TYPE {PREFIX}{family} gauge");
        let _ = writeln!(out, "{PREFIX}{family} {}", fmt_value(v));
    };
    let counter = |out: &mut String, family: &str, v: u64| {
        let _ = writeln!(out, "# TYPE {PREFIX}{family} counter");
        let _ = writeln!(out, "{PREFIX}{family} {v}");
    };
    gauge(out, "engine_streams", s.streams as f64);
    counter(out, "engine_processed_total", s.processed);
    counter(out, "engine_shed_total", s.shed);
    counter(out, "engine_batches_total", s.batches);
    gauge(out, "engine_queue_saturation", s.queue_saturation);
    gauge(out, "engine_checkpoint_lag_points", s.checkpoint_lag as f64);
    gauge(out, "engine_shed_rate", s.shed_rate());
    if let Some(age) = snap.last_batch_age_s {
        gauge(out, "engine_last_batch_age_seconds", age);
    }
    if let Some(age) = snap.last_checkpoint_age_s {
        gauge(out, "engine_checkpoint_age_seconds", age);
    }
    gauge(out, "engine_ready", if report.ready { 1.0 } else { 0.0 });
    gauge(out, "engine_healthy", if report.healthy { 1.0 } else { 0.0 });
    let _ = writeln!(out, "# TYPE {PREFIX}engine_health_ok gauge");
    for c in &report.conditions {
        let _ = writeln!(
            out,
            "{PREFIX}engine_health_ok{{condition=\"{}\"}} {}",
            escape_label(c.name),
            u8::from(c.ok)
        );
    }

    let mut streams: Vec<&StreamStats> = snap.streams.iter().collect();
    streams.sort_by(|a, b| a.name.cmp(&b.name));
    render_stream_family(&streams, "stream_seen_total", "counter", |s| s.seen as f64, out);
    render_stream_family(&streams, "stream_queued", "gauge", |s| s.queued as f64, out);
    render_stream_family(
        &streams,
        "stream_queue_high_watermark",
        "gauge",
        |s| s.queue_hwm as f64,
        out,
    );
    render_stream_family(&streams, "stream_shed_total", "counter", |s| s.shed as f64, out);
    render_stream_family(
        &streams,
        "stream_anomalies_total",
        "counter",
        |s| s.anomalies as f64,
        out,
    );
    render_stream_family(&streams, "stream_last_score", "gauge", |s| s.last_score, out);
    render_stream_family(&streams, "stream_spot_threshold", "gauge", |s| s.threshold, out);
}

/// Renders the plain-text `/streams` table: a fixed header line, then one
/// row per stream (sorted by name), space-separated.
pub fn render_streams_table(snap: &ObsSnapshot, out: &mut String) {
    let _ = writeln!(out, "stream seen queued queue_hwm shed anomalies last_score threshold");
    let mut streams: Vec<&StreamStats> = snap.streams.iter().collect();
    streams.sort_by(|a, b| a.name.cmp(&b.name));
    for s in streams {
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {}",
            escape_label(&s.name),
            s.seen,
            s.queued,
            s.queue_hwm,
            s.shed,
            s.anomalies,
            fmt_value(s.last_score),
            fmt_value(s.threshold)
        );
    }
}

/// Renders the `/healthz` (or `/readyz`) body: a verdict line followed by
/// one line per condition.
pub fn render_health(report: &HealthReport, ready_mode: bool, out: &mut String) {
    let verdict = if ready_mode {
        if report.ready {
            "ready"
        } else if report.healthy {
            "not ready: engine has not completed a batch"
        } else {
            "not ready: unhealthy"
        }
    } else if report.healthy {
        "ok"
    } else {
        "unhealthy"
    };
    let _ = writeln!(out, "{verdict}");
    for c in &report.conditions {
        let _ = writeln!(
            out,
            "{} {} limit {}{}",
            c.name,
            fmt_value(c.value),
            fmt_value(c.limit),
            if c.ok { "" } else { " FAIL" }
        );
    }
}

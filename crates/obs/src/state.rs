//! Shared engine observability state: the `Arc` a serving engine publishes
//! per-stream stats and health inputs into, and the exporter reads from.
//!
//! The contract between the two sides is "bounded lock hold on both ends":
//! the publisher updates a preallocated table in place (no allocation in
//! steady state — stream names are cloned once at registration), and the
//! reader clones the whole (small) table out and renders outside the lock.
//! Scraping therefore never blocks the serving hot path for longer than
//! one `memcpy` of a few hundred bytes per stream.

use std::sync::Mutex;
use std::time::Instant;

/// Health thresholds a serving engine publishes alongside its state
/// (configured via the engine's config). A threshold of `0` (or `0.0`)
/// disables that condition — useful for engines without checkpointing or
/// with an external batch driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Unhealthy when the fullest stream queue exceeds this fraction of
    /// its capacity (`0.0` disables; default `0.9`).
    pub max_queue_saturation: f64,
    /// Unhealthy when more than this many points were processed since the
    /// last checkpoint (`0` disables; default `0` — engines without
    /// checkpoint directories should not fail health on lag).
    pub max_checkpoint_lag: u64,
    /// Unhealthy when the lifetime shed fraction
    /// `shed / (shed + processed)` exceeds this (`0.0` disables; default
    /// `0.5`).
    pub max_shed_rate: f64,
    /// Unhealthy when the last completed batch is older than this many
    /// seconds (`0.0` disables; default `0.0` — batch cadence is the
    /// driver's business unless the operator opts in).
    pub max_batch_age_s: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            max_queue_saturation: 0.9,
            max_checkpoint_lag: 0,
            max_shed_rate: 0.5,
            max_batch_age_s: 0.0,
        }
    }
}

impl HealthConfig {
    /// Validates the thresholds: fractions must lie in `[0, 1]` and no
    /// threshold may be negative or NaN.
    pub fn check(&self) -> Result<(), String> {
        for (name, v) in [
            ("max_queue_saturation", self.max_queue_saturation),
            ("max_shed_rate", self.max_shed_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a fraction in [0, 1], got {v}"));
            }
        }
        if !self.max_batch_age_s.is_finite() || self.max_batch_age_s < 0.0 {
            return Err(format!(
                "max_batch_age_s must be a non-negative number of seconds, got {}",
                self.max_batch_age_s
            ));
        }
        Ok(())
    }
}

/// The per-stream stats row a serving engine publishes after every batch.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Stream name (set once when the stream is registered).
    pub name: String,
    /// Points the stream has consumed (scored) over its lifetime.
    pub seen: u64,
    /// Points currently queued (accepted but not yet scored).
    pub queued: usize,
    /// Highest queue depth ever observed for this stream.
    pub queue_hwm: usize,
    /// Points shed by this stream's bounded queue over its lifetime.
    pub shed: u64,
    /// Points whose verdict was anomalous over the stream's lifetime.
    pub anomalies: u64,
    /// The stream's most recent anomaly score (max across dimensions;
    /// NaN until the first verdict).
    pub last_score: f64,
    /// The stream's live SPOT threshold (max across dimensions; NaN until
    /// the first publish).
    pub threshold: f64,
}

impl Default for StreamStats {
    fn default() -> Self {
        StreamStats {
            name: String::new(),
            seen: 0,
            queued: 0,
            queue_hwm: 0,
            shed: 0,
            anomalies: 0,
            last_score: f64::NAN,
            threshold: f64::NAN,
        }
    }
}

/// Engine-level counters published after every batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStatus {
    /// Registered streams.
    pub streams: usize,
    /// Lifetime points scored.
    pub processed: u64,
    /// Lifetime points shed by backpressure.
    pub shed: u64,
    /// Batches completed.
    pub batches: u64,
    /// Fullest stream queue as a fraction of its capacity, at publish time.
    pub queue_saturation: f64,
    /// Points processed since the last checkpoint (0 when checkpointing is
    /// disabled or a checkpoint just completed).
    pub checkpoint_lag: u64,
}

impl EngineStatus {
    /// Lifetime shed fraction `shed / (shed + processed)` (0 when idle).
    pub fn shed_rate(&self) -> f64 {
        let total = self.shed + self.processed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

/// A point-in-time copy of everything the engine has published, with the
/// instant-typed fields already turned into ages. This is what the
/// exporter renders from, outside the lock.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Engine-level counters.
    pub status: EngineStatus,
    /// `true` once the engine has completed (and published) a batch.
    pub published: bool,
    /// Seconds since the last completed batch (`None` before the first).
    pub last_batch_age_s: Option<f64>,
    /// Seconds since the last checkpoint (`None` before the first).
    pub last_checkpoint_age_s: Option<f64>,
    /// Per-stream stats rows, in registration order.
    pub streams: Vec<StreamStats>,
}

/// One evaluated health condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthCondition {
    /// Condition name (stable, snake_case).
    pub name: &'static str,
    /// `true` when the condition passes.
    pub ok: bool,
    /// The observed value.
    pub value: f64,
    /// The configured limit.
    pub limit: f64,
}

/// The evaluated health of a serving engine.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// `true` once the engine has completed at least one batch *and* every
    /// health condition passes — the `/readyz` answer.
    pub ready: bool,
    /// `true` when every enabled health condition passes — the `/healthz`
    /// answer (an engine that has not served yet can still be healthy).
    pub healthy: bool,
    /// Every enabled condition, in a fixed order.
    pub conditions: Vec<HealthCondition>,
}

struct ObsInner {
    status: EngineStatus,
    published: bool,
    last_batch: Option<Instant>,
    last_checkpoint: Option<Instant>,
    streams: Vec<StreamStats>,
}

/// The shared observability state of one serving engine. The engine owns
/// an `Arc<EngineObs>` and publishes into it after every batch; any number
/// of readers (the HTTP exporter, tests, an embedding application) take
/// snapshots concurrently.
pub struct EngineObs {
    thresholds: HealthConfig,
    inner: Mutex<ObsInner>,
}

impl EngineObs {
    /// Fresh, unpublished state carrying the engine's health thresholds.
    pub fn new(thresholds: HealthConfig) -> EngineObs {
        EngineObs {
            thresholds,
            inner: Mutex::new(ObsInner {
                status: EngineStatus::default(),
                published: false,
                last_batch: None,
                last_checkpoint: None,
                streams: Vec::new(),
            }),
        }
    }

    /// The health thresholds this state was built with.
    pub fn thresholds(&self) -> HealthConfig {
        self.thresholds
    }

    /// Publisher side: appends a named, zeroed stats row (registration
    /// order defines the row index the engine uses in
    /// [`EngineObs::publish_batch`]). The one place a publish path
    /// allocates — once per stream, never per batch.
    pub fn register_stream(&self, name: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner.streams.push(StreamStats { name: name.to_string(), ..StreamStats::default() });
        inner.status.streams = inner.streams.len();
    }

    /// Publisher side: records the outcome of one batch. `fill` is called
    /// once per registered stream with its index and mutable stats row;
    /// it must not block (the lock is held across the loop — the bounded
    /// lock hold the exporter's scrape contends with).
    pub fn publish_batch(
        &self,
        status: EngineStatus,
        mut fill: impl FnMut(usize, &mut StreamStats),
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.status = status;
        inner.status.streams = inner.streams.len();
        inner.last_batch = Some(Instant::now());
        inner.published = true;
        for (i, row) in inner.streams.iter_mut().enumerate() {
            fill(i, row);
        }
    }

    /// Publisher side: stamps "a checkpoint just completed".
    pub fn note_checkpoint(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.last_checkpoint = Some(Instant::now());
        inner.status.checkpoint_lag = 0;
    }

    /// Reader side: a point-in-time copy of the published state. Holds the
    /// lock only for the clone.
    pub fn snapshot(&self) -> ObsSnapshot {
        let inner = self.inner.lock().unwrap();
        ObsSnapshot {
            status: inner.status,
            published: inner.published,
            last_batch_age_s: inner.last_batch.map(|t| t.elapsed().as_secs_f64()),
            last_checkpoint_age_s: inner.last_checkpoint.map(|t| t.elapsed().as_secs_f64()),
            streams: inner.streams.clone(),
        }
    }

    /// Reader side: evaluates the health conditions against the published
    /// state. Conditions with a zero threshold are reported but always
    /// pass (disabled).
    pub fn health(&self) -> HealthReport {
        let snap = self.snapshot();
        Self::evaluate(&snap, self.thresholds)
    }

    /// Evaluates `thresholds` against an already-taken snapshot (pure; the
    /// exporter uses this so one scrape takes one lock, not two).
    pub fn evaluate(snap: &ObsSnapshot, thresholds: HealthConfig) -> HealthReport {
        let enabled = |limit: f64| limit > 0.0;
        let batch_age = snap.last_batch_age_s.unwrap_or(0.0);
        let conditions = vec![
            HealthCondition {
                name: "queue_saturation",
                ok: !enabled(thresholds.max_queue_saturation)
                    || snap.status.queue_saturation <= thresholds.max_queue_saturation,
                value: snap.status.queue_saturation,
                limit: thresholds.max_queue_saturation,
            },
            HealthCondition {
                name: "checkpoint_lag",
                ok: thresholds.max_checkpoint_lag == 0
                    || snap.status.checkpoint_lag <= thresholds.max_checkpoint_lag,
                value: snap.status.checkpoint_lag as f64,
                limit: thresholds.max_checkpoint_lag as f64,
            },
            HealthCondition {
                name: "shed_rate",
                ok: !enabled(thresholds.max_shed_rate)
                    || snap.status.shed_rate() <= thresholds.max_shed_rate,
                value: snap.status.shed_rate(),
                limit: thresholds.max_shed_rate,
            },
            HealthCondition {
                name: "batch_age_s",
                ok: !enabled(thresholds.max_batch_age_s)
                    || batch_age <= thresholds.max_batch_age_s,
                value: batch_age,
                limit: thresholds.max_batch_age_s,
            },
        ];
        let healthy = conditions.iter().all(|c| c.ok);
        HealthReport { ready: snap.published && healthy, healthy, conditions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_config_rejects_out_of_range_thresholds() {
        assert!(HealthConfig::default().check().is_ok());
        let bad = HealthConfig { max_queue_saturation: 1.5, ..HealthConfig::default() };
        assert!(bad.check().is_err());
        let bad = HealthConfig { max_shed_rate: -0.1, ..HealthConfig::default() };
        assert!(bad.check().is_err());
        let bad = HealthConfig { max_shed_rate: f64::NAN, ..HealthConfig::default() };
        assert!(bad.check().is_err());
        let bad = HealthConfig { max_batch_age_s: -1.0, ..HealthConfig::default() };
        assert!(bad.check().is_err());
    }

    #[test]
    fn unpublished_state_is_healthy_but_not_ready() {
        let obs = EngineObs::new(HealthConfig::default());
        let report = obs.health();
        assert!(report.healthy, "an idle engine is healthy");
        assert!(!report.ready, "an engine that never batched is not ready");
        assert!(!obs.snapshot().published);
    }

    #[test]
    fn publish_flips_ready_and_conditions_track_thresholds() {
        let obs = EngineObs::new(HealthConfig {
            max_queue_saturation: 0.5,
            max_checkpoint_lag: 10,
            ..HealthConfig::default()
        });
        obs.register_stream("a");
        obs.publish_batch(
            EngineStatus { processed: 4, queue_saturation: 0.25, checkpoint_lag: 3, ..Default::default() },
            |_, row| {
                row.seen = 4;
                row.threshold = 1.5;
            },
        );
        let report = obs.health();
        assert!(report.ready && report.healthy);
        let snap = obs.snapshot();
        assert_eq!(snap.streams.len(), 1);
        assert_eq!(snap.streams[0].name, "a");
        assert_eq!(snap.streams[0].seen, 4);
        assert!(snap.last_batch_age_s.unwrap() >= 0.0);
        assert!(snap.last_checkpoint_age_s.is_none());

        // Saturate past the threshold: unhealthy AND unready.
        obs.publish_batch(
            EngineStatus { queue_saturation: 0.9, ..snap.status },
            |_, _| {},
        );
        let report = obs.health();
        assert!(!report.healthy && !report.ready);
        let failing: Vec<_> =
            report.conditions.iter().filter(|c| !c.ok).map(|c| c.name).collect();
        assert_eq!(failing, vec!["queue_saturation"]);

        // Checkpoint lag over the limit also fails; note_checkpoint clears it.
        obs.publish_batch(
            EngineStatus { queue_saturation: 0.1, checkpoint_lag: 99, ..snap.status },
            |_, _| {},
        );
        assert!(!obs.health().healthy);
        obs.note_checkpoint();
        assert!(obs.health().healthy);
        assert!(obs.snapshot().last_checkpoint_age_s.is_some());
    }

    #[test]
    fn zero_thresholds_disable_their_conditions() {
        let obs = EngineObs::new(HealthConfig {
            max_queue_saturation: 0.0,
            max_checkpoint_lag: 0,
            max_shed_rate: 0.0,
            max_batch_age_s: 0.0,
        });
        obs.publish_batch(
            EngineStatus {
                queue_saturation: 1.0,
                checkpoint_lag: u64::MAX,
                shed: 1000,
                processed: 1,
                ..Default::default()
            },
            |_, _| {},
        );
        let report = obs.health();
        assert!(report.healthy && report.ready, "disabled conditions must not fail");
        assert!(report.conditions.iter().all(|c| c.ok));
    }

    #[test]
    fn shed_rate_is_a_fraction_of_offered_load() {
        let s = EngineStatus { processed: 75, shed: 25, ..Default::default() };
        assert_eq!(s.shed_rate(), 0.25);
        assert_eq!(EngineStatus::default().shed_rate(), 0.0);
    }
}

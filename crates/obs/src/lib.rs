//! # tranad-obs
//!
//! Pull-based operational observability for live TranAD processes, with no
//! dependencies beyond `std::net` and the workspace's own
//! `tranad-telemetry`. Where the tracing layer (PRs 3–4) answers "what did
//! this run do?" after the fact from a JSONL file, this crate answers
//! "what is this process doing *right now*?" over HTTP:
//!
//! - **`/metrics`** — every recorder counter, gauge and log2 histogram
//!   (rendered from [`tranad_telemetry::Recorder::snapshot`], the cheap
//!   point-in-time [`tranad_telemetry::MetricsSnapshot`] view) plus, when a
//!   serving engine is attached, engine health gauges and a per-stream
//!   stats table as labeled families — all in Prometheus text exposition
//!   format 0.0.4 with deterministic family ordering.
//! - **`/healthz`** — 200/503 from the engine's published health inputs
//!   (queue saturation, checkpoint lag, shed rate, batch age) evaluated
//!   against thresholds the engine was configured with ([`HealthConfig`]).
//! - **`/readyz`** — like `/healthz`, but additionally requires that the
//!   engine has completed at least one batch.
//! - **`/streams`** — a plain-text per-stream table: points seen, queued,
//!   shed, anomaly count, last score and the live SPOT threshold.
//!
//! The seam between a serving engine and this crate is [`EngineObs`]: a
//! shared `Arc` the engine publishes into after every batch (in-place
//! updates, bounded lock hold, no steady-state allocation) and the
//! [`Exporter`] snapshots out of per scrape. Scraping never blocks the
//! scoring hot path — see `DESIGN.md` "Operational observability".
//!
//! ```no_run
//! use tranad_obs::Exporter;
//!
//! // Any process: export its recorder's metrics on an ephemeral port.
//! let rec = tranad_telemetry::global().clone();
//! let exporter = Exporter::bind("127.0.0.1:0", rec, None).unwrap();
//! println!("scrape http://{}/metrics", exporter.addr());
//! ```

mod http;
pub mod prom;
mod state;

pub use http::Exporter;
pub use state::{
    EngineObs, EngineStatus, HealthCondition, HealthConfig, HealthReport, ObsSnapshot,
    StreamStats,
};

//! A tiny blocking HTTP/1.0 exporter over `std::net` — just enough
//! protocol to be scraped by Prometheus, a load balancer's health checker,
//! or a `TcpStream` in a smoke test. No external dependencies, no async
//! runtime: one background thread accepts connections and answers them
//! serially.
//!
//! ## Threading model
//!
//! The exporter thread never touches engine or recorder internals beyond
//! two bounded-lock-hold reads per request: `Recorder::snapshot()` (clone
//! of the metric table under the recorder's metrics mutex) and
//! `EngineObs::snapshot()` (clone of the published stats table). Rendering
//! happens outside both locks, so a slow scraper can delay *other
//! scrapers* (requests are serial) but never the serving hot path.
//! Per-connection read/write timeouts bound how long a stalled client can
//! wedge the exporter itself.

use crate::prom;
use crate::state::EngineObs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tranad_telemetry::Recorder;

/// How long one scrape connection may stall reads or writes before the
/// exporter drops it and serves the next one.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Maximum request head the exporter will buffer before answering 400.
const MAX_REQUEST: usize = 8 * 1024;

/// The live metrics/health endpoint of one process: serves `/metrics`,
/// `/healthz`, `/readyz` and `/streams` until dropped or shut down.
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Exporter {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`Exporter::addr`]) and starts the background accept loop. `rec` is
    /// the recorder whose metric snapshot `/metrics` renders; `engine` is
    /// the serving engine's published state, or `None` for a process that
    /// only exports recorder metrics (then `/healthz` and `/readyz` always
    /// answer 200 and `/streams` is an empty table).
    pub fn bind(
        addr: impl ToSocketAddrs,
        rec: Recorder,
        engine: Option<Arc<EngineObs>>,
    ) -> std::io::Result<Exporter> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("tranad-obs-exporter".to_string())
            .spawn(move || accept_loop(listener, rec, engine, thread_stop))?;
        Ok(Exporter { addr, stop, handle: Some(handle) })
    }

    /// The bound address — the actual port when bound with port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the exporter thread. Also runs on
    /// drop; the explicit form exists for callers that want the join to
    /// happen at a chosen point.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    rec: Recorder,
    engine: Option<Arc<EngineObs>>,
    stop: Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut conn) = conn else { continue };
        let _ = conn.set_read_timeout(Some(IO_TIMEOUT));
        let _ = conn.set_write_timeout(Some(IO_TIMEOUT));
        // A failed scrape must never take the exporter down.
        let _ = handle_request(&mut conn, &rec, engine.as_deref());
    }
}

/// Reads the request head (through the blank line) and answers it.
fn handle_request(
    conn: &mut TcpStream,
    rec: &Recorder,
    engine: Option<&EngineObs>,
) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && !head.windows(2).any(|w| w == b"\n\n") {
        if head.len() > MAX_REQUEST {
            return respond(conn, 400, "request head too large\n");
        }
        let n = conn.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(conn, 405, "only GET is supported\n");
    }
    let path = target.split('?').next().unwrap_or("");
    match path {
        "/metrics" => {
            let mut body = String::new();
            prom::render_metrics(&rec.snapshot(), &mut body);
            if let Some(obs) = engine {
                let snap = obs.snapshot();
                let report = EngineObs::evaluate(&snap, obs.thresholds());
                prom::render_engine(&snap, &report, &mut body);
            }
            respond(conn, 200, &body)
        }
        "/healthz" | "/readyz" => {
            let ready_mode = path == "/readyz";
            match engine {
                Some(obs) => {
                    let report = obs.health();
                    let ok = if ready_mode { report.ready } else { report.healthy };
                    let mut body = String::new();
                    prom::render_health(&report, ready_mode, &mut body);
                    respond(conn, if ok { 200 } else { 503 }, &body)
                }
                None => respond(conn, 200, "ok (no engine)\n"),
            }
        }
        "/streams" => {
            let mut body = String::new();
            match engine {
                Some(obs) => prom::render_streams_table(&obs.snapshot(), &mut body),
                None => prom::render_streams_table(
                    &crate::state::ObsSnapshot {
                        status: Default::default(),
                        published: false,
                        last_batch_age_s: None,
                        last_checkpoint_age_s: None,
                        streams: Vec::new(),
                    },
                    &mut body,
                ),
            }
            respond(conn, 200, &body)
        }
        _ => respond(conn, 404, "not found; try /metrics /healthz /readyz /streams\n"),
    }
}

fn respond(conn: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.0 {status} {reason}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(header.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

//! The blocking HTTP/1.0 exporter end to end over a real socket: bind on
//! an ephemeral port, scrape every endpoint with a raw `TcpStream`, check
//! status codes and bodies, and shut down cleanly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tranad_obs::{EngineObs, EngineStatus, Exporter, HealthConfig};
use tranad_telemetry::{MemorySink, Recorder};

/// One raw HTTP/1.0 exchange: returns (status, body).
fn scrape(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to exporter");
    conn.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    scrape(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"))
}

#[test]
fn exporter_serves_all_endpoints_over_a_real_socket() {
    let rec = Recorder::new(MemorySink::new(64));
    rec.add("events", 5);
    rec.observe("lat_us", 3.0);
    let obs = Arc::new(EngineObs::new(HealthConfig::default()));
    obs.register_stream("web");
    let exporter = Exporter::bind("127.0.0.1:0", rec.clone(), Some(obs.clone())).unwrap();
    let addr = exporter.addr();

    // Not ready before the first published batch, but healthy.
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 503);
    assert!(body.starts_with("not ready: engine has not completed a batch"), "{body}");
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with("ok\n"), "{body}");

    // Publish one batch: ready flips, /metrics carries both recorder and
    // engine families, /streams lists the stream.
    obs.publish_batch(
        EngineStatus { streams: 1, processed: 8, batches: 1, ..Default::default() },
        |_, row| {
            row.seen = 8;
            row.threshold = 2.5;
        },
    );
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 200);
    assert!(body.starts_with("ready\n"), "{body}");
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE tranad_events_total counter",
        "tranad_events_total 5",
        "tranad_lat_us_count 1",
        "tranad_engine_ready 1",
        "tranad_engine_processed_total 8",
        "tranad_stream_seen_total{stream=\"web\"} 8",
        "tranad_stream_spot_threshold{stream=\"web\"} 2.5",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    let (status, body) = get(addr, "/streams");
    assert_eq!(status, 200);
    assert!(body.contains("web 8 "), "{body}");

    // Recorder updates are visible to the next scrape (live snapshot, not
    // a render-once cache).
    rec.add("events", 1);
    let (_, body) = get(addr, "/metrics");
    assert!(body.contains("tranad_events_total 6"), "{body}");

    // Protocol edges: unknown path, non-GET method, query strings.
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = scrape(addr, "POST /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, 405);
    let (status, _) = get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200, "query strings are ignored");

    exporter.shutdown();
    // The port is released: a scrape after shutdown must fail to connect
    // or be refused service (no half-dead accept loop).
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can still accept; the loop must not answer.
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").ok();
            let mut buf = String::new();
            conn.read_to_string(&mut buf).ok();
            buf.is_empty()
        }
    );
}

#[test]
fn exporter_without_an_engine_still_serves_recorder_metrics() {
    let rec = Recorder::new(MemorySink::new(64));
    rec.gauge("depth", 2.0);
    let exporter = Exporter::bind("127.0.0.1:0", rec, None).unwrap();
    let addr = exporter.addr();
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("tranad_depth 2"));
    assert!(!body.contains("tranad_engine_"), "no engine families without an engine");
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("no engine"));
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/streams");
    assert_eq!(status, 200);
    assert_eq!(body.lines().count(), 1, "header only:\n{body}");
}

#[test]
fn exporter_with_a_disabled_recorder_serves_an_empty_snapshot() {
    // The disabled-path contract: snapshot() allocates nothing and the
    // exporter renders an empty (but valid) exposition.
    let exporter = Exporter::bind("127.0.0.1:0", Recorder::disabled(), None).unwrap();
    let (status, body) = get(exporter.addr(), "/metrics");
    assert_eq!(status, 200);
    assert_eq!(body, "", "no metrics families from a disabled recorder");
}

#[test]
fn oversized_request_heads_are_rejected() {
    let exporter = Exporter::bind("127.0.0.1:0", Recorder::disabled(), None).unwrap();
    let mut conn = TcpStream::connect(exporter.addr()).unwrap();
    // Just over the 8 KiB cap, but small enough that the server consumes
    // every byte before answering (a close with unread data would RST the
    // connection and race the client's read of the 400).
    let junk = format!("GET /metrics HTTP/1.0\r\nX-Junk: {}\r\n", "a".repeat(8_360));
    conn.write_all(junk.as_bytes()).unwrap();
    let mut bytes = Vec::new();
    let _ = conn.read_to_end(&mut bytes);
    let response = String::from_utf8_lossy(&bytes);
    assert!(response.starts_with("HTTP/1.0 400"), "{response}");
}

//! Prometheus text-exposition renderer: golden-text fixture, metric-name
//! sanitization, label-value escaping, and deterministic family ordering
//! across runs.

use tranad_obs::prom::{escape_label, render_streams_table, sanitize_name};
use tranad_obs::{EngineObs, EngineStatus, HealthConfig, ObsSnapshot, StreamStats};
use tranad_telemetry::{MemorySink, Recorder};

fn recorded_snapshot() -> tranad_telemetry::MetricsSnapshot {
    let rec = Recorder::new(MemorySink::new(64));
    rec.add("serve.shed", 3);
    rec.gauge("serve.queue_depth", 2.5);
    // 1.0 lands in the [1, 2) bucket (le="2"), 3.0 in [2, 4) (le="4").
    rec.observe("serve.push_us", 1.0);
    rec.observe("serve.push_us", 3.0);
    rec.snapshot()
}

#[test]
fn golden_text_fixture_for_recorder_metrics() {
    let snap = recorded_snapshot();
    let mut out = String::new();
    tranad_obs::prom::render_metrics(&snap, &mut out);
    let expected = "\
# TYPE tranad_serve_push_us histogram
tranad_serve_push_us_bucket{le=\"2\"} 1
tranad_serve_push_us_bucket{le=\"4\"} 2
tranad_serve_push_us_bucket{le=\"+Inf\"} 2
tranad_serve_push_us_sum 4
tranad_serve_push_us_count 2
# TYPE tranad_serve_queue_depth gauge
tranad_serve_queue_depth 2.5
# TYPE tranad_serve_shed_total counter
tranad_serve_shed_total 3
";
    assert_eq!(out, expected);
}

#[test]
fn histogram_dropped_observations_export_as_their_own_counter() {
    let rec = Recorder::new(MemorySink::new(64));
    rec.observe("lat", 1.0);
    rec.observe("lat", f64::NAN);
    rec.observe("lat", f64::INFINITY);
    let mut out = String::new();
    tranad_obs::prom::render_metrics(&rec.snapshot(), &mut out);
    assert!(out.contains("tranad_lat_count 1"), "non-finite samples are not counted:\n{out}");
    assert!(out.contains("# TYPE tranad_lat_dropped_total counter\ntranad_lat_dropped_total 2"));
}

#[test]
fn metric_names_are_sanitized_into_the_prometheus_charset() {
    assert_eq!(sanitize_name("serve.push_us"), "serve_push_us");
    assert_eq!(sanitize_name("serve.batch-rate"), "serve_batch_rate");
    assert_eq!(sanitize_name("a:b_c9"), "a:b_c9");
    assert_eq!(sanitize_name("9lives"), "_9lives", "a leading digit gains an underscore");
    assert_eq!(sanitize_name("with space/slash"), "with_space_slash");
}

#[test]
fn label_values_escape_backslash_quote_and_newline() {
    assert_eq!(escape_label("plain"), "plain");
    assert_eq!(escape_label("a\\b"), "a\\\\b");
    assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
    assert_eq!(escape_label("line1\nline2"), "line1\\nline2");
    assert_eq!(escape_label("\\\"\n"), "\\\\\\\"\\n", "all three in one value");
}

#[test]
fn stream_labels_are_escaped_in_the_rendered_output() {
    let obs = EngineObs::new(HealthConfig::default());
    obs.register_stream("web\n\"prod\"\\1");
    obs.publish_batch(EngineStatus::default(), |_, _| {});
    let snap = obs.snapshot();
    let report = EngineObs::evaluate(&snap, obs.thresholds());
    let mut out = String::new();
    tranad_obs::prom::render_engine(&snap, &report, &mut out);
    assert!(
        out.contains("tranad_stream_seen_total{stream=\"web\\n\\\"prod\\\"\\\\1\"} 0"),
        "label escaping missing:\n{out}"
    );
}

#[test]
fn counter_names_gain_total_exactly_once() {
    let rec = Recorder::new(MemorySink::new(64));
    rec.add("events", 1);
    rec.add("requests_total", 2);
    let mut out = String::new();
    tranad_obs::prom::render_metrics(&rec.snapshot(), &mut out);
    assert!(out.contains("tranad_events_total 1"));
    assert!(out.contains("tranad_requests_total 2"));
    assert!(!out.contains("requests_total_total"), "no double suffix:\n{out}");
}

#[test]
fn family_ordering_is_deterministic_across_runs() {
    // Recorder metrics: identical insertion in shuffled orders must render
    // byte-identically (BTreeMap name order).
    let mut outs = Vec::new();
    for shuffle in 0..2 {
        let rec = Recorder::new(MemorySink::new(64));
        if shuffle == 0 {
            rec.add("b_counter", 1);
            rec.gauge("a_gauge", 1.0);
            rec.observe("c_hist", 1.0);
        } else {
            rec.observe("c_hist", 1.0);
            rec.add("b_counter", 1);
            rec.gauge("a_gauge", 1.0);
        }
        let mut out = String::new();
        tranad_obs::prom::render_metrics(&rec.snapshot(), &mut out);
        outs.push(out);
    }
    assert_eq!(outs[0], outs[1]);
    let a = outs[0].find("tranad_a_gauge").unwrap();
    let b = outs[0].find("tranad_b_counter").unwrap();
    let c = outs[0].find("tranad_c_hist").unwrap();
    assert!(a < b && b < c, "families render in name order:\n{}", outs[0]);

    // Engine families: streams registered in any order render sorted.
    let obs = EngineObs::new(HealthConfig::default());
    obs.register_stream("zeta");
    obs.register_stream("alpha");
    obs.publish_batch(EngineStatus::default(), |_, _| {});
    let snap = obs.snapshot();
    let report = EngineObs::evaluate(&snap, obs.thresholds());
    let mut out = String::new();
    tranad_obs::prom::render_engine(&snap, &report, &mut out);
    let alpha = out.find("tranad_stream_seen_total{stream=\"alpha\"}").unwrap();
    let zeta = out.find("tranad_stream_seen_total{stream=\"zeta\"}").unwrap();
    assert!(alpha < zeta, "per-stream series sort by name:\n{out}");
    // Two renders of the same snapshot are byte-identical.
    let mut again = String::new();
    tranad_obs::prom::render_engine(&snap, &report, &mut again);
    assert_eq!(out, again);
}

#[test]
fn engine_families_render_health_and_readiness() {
    let obs = EngineObs::new(HealthConfig::default());
    obs.register_stream("web");
    obs.publish_batch(
        EngineStatus {
            streams: 1,
            processed: 10,
            shed: 2,
            batches: 3,
            queue_saturation: 0.25,
            checkpoint_lag: 4,
        },
        |_, row| {
            row.seen = 10;
            row.queued = 1;
            row.queue_hwm = 5;
            row.shed = 2;
            row.anomalies = 1;
            row.last_score = 0.75;
            row.threshold = 1.5;
        },
    );
    let snap = obs.snapshot();
    let report = EngineObs::evaluate(&snap, obs.thresholds());
    let mut out = String::new();
    tranad_obs::prom::render_engine(&snap, &report, &mut out);
    for needle in [
        "tranad_engine_streams 1",
        "tranad_engine_processed_total 10",
        "tranad_engine_shed_total 2",
        "tranad_engine_batches_total 3",
        "tranad_engine_queue_saturation 0.25",
        "tranad_engine_checkpoint_lag_points 4",
        "tranad_engine_ready 1",
        "tranad_engine_healthy 1",
        "tranad_engine_health_ok{condition=\"queue_saturation\"} 1",
        "tranad_stream_seen_total{stream=\"web\"} 10",
        "tranad_stream_queued{stream=\"web\"} 1",
        "tranad_stream_queue_high_watermark{stream=\"web\"} 5",
        "tranad_stream_shed_total{stream=\"web\"} 2",
        "tranad_stream_anomalies_total{stream=\"web\"} 1",
        "tranad_stream_last_score{stream=\"web\"} 0.75",
        "tranad_stream_spot_threshold{stream=\"web\"} 1.5",
        "tranad_engine_last_batch_age_seconds",
    ] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
}

#[test]
fn streams_table_has_a_fixed_header_and_sorted_rows() {
    let snap = ObsSnapshot {
        status: EngineStatus::default(),
        published: true,
        last_batch_age_s: None,
        last_checkpoint_age_s: None,
        streams: vec![
            StreamStats { name: "zeta".to_string(), seen: 7, ..StreamStats::default() },
            StreamStats { name: "alpha".to_string(), seen: 3, ..StreamStats::default() },
        ],
    };
    let mut out = String::new();
    render_streams_table(&snap, &mut out);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[0], "stream seen queued queue_hwm shed anomalies last_score threshold");
    assert!(lines[1].starts_with("alpha 3 "));
    assert!(lines[2].starts_with("zeta 7 "));
    assert!(lines[1].ends_with("NaN NaN"), "unset score/threshold render as NaN");
}

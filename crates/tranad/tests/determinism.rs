//! Thread-count independence: the thread pool must not change any numeric
//! result. Training losses, anomaly scores and POT thresholds are compared
//! bitwise between a fully serial run (`with_threads(1)`) and a run capped
//! at 8 threads — chunk boundaries depend only on problem sizes, every task
//! writes disjoint output, and no reduction crosses task boundaries, so the
//! two runs must agree exactly on any machine.

use tranad::{train, PotConfig, TranadConfig};
use tranad_data::{SignalRng, TimeSeries};
use tranad_tensor::pool;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| (t as f64 / (6.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

fn fast_config() -> TranadConfig {
    TranadConfig {
        epochs: 2,
        window: 6,
        context: 12,
        ff_hidden: 16,
        dropout: 0.1,
        batch_size: 32,
        ..TranadConfig::default()
    }
}

#[test]
fn training_and_detection_identical_across_thread_counts() {
    let series = toy_series(280, 3, 21);
    let test = toy_series(120, 3, 22);
    let config = fast_config();

    let (serial_losses, serial_scores, serial_thresholds) = pool::with_threads(1, || {
        let (trained, report) = train(&series, config);
        let det = trained.detect(&test, PotConfig::default());
        (report.train_losses, det.scores, det.thresholds)
    });

    let (par_losses, par_scores, par_thresholds) = pool::with_threads(8, || {
        let (trained, report) = train(&series, config);
        let det = trained.detect(&test, PotConfig::default());
        (report.train_losses, det.scores, det.thresholds)
    });

    // Bitwise equality — not approximate: the pool must not reorder any
    // floating-point reduction.
    assert_eq!(serial_losses, par_losses, "train losses diverged");
    assert_eq!(serial_scores, par_scores, "anomaly scores diverged");
    assert_eq!(serial_thresholds, par_thresholds, "POT thresholds diverged");
}

#[test]
fn scoring_identical_across_thread_counts() {
    let series = toy_series(260, 2, 31);
    let config = fast_config();
    let (trained, _) = pool::with_threads(1, || train(&series, config));

    let serial = pool::with_threads(1, || trained.score_series(&series));
    let parallel = pool::with_threads(8, || trained.score_series(&series));
    assert_eq!(serial, parallel);
}

//! Thread-count independence: the thread pool must not change any numeric
//! result. Training losses, anomaly scores and POT thresholds are compared
//! bitwise between a fully serial run (`with_threads(1)`) and a run capped
//! at 8 threads — chunk boundaries depend only on problem sizes, every task
//! writes disjoint output, and no reduction crosses task boundaries, so the
//! two runs must agree exactly on any machine. Telemetry must not perturb
//! this: a live JSONL sink attached to the run leaves every number bitwise
//! identical to the untraced run.

use std::sync::Arc;
use tranad::{train, train_with, PotConfig, TranadConfig};
use tranad_data::{SignalRng, TimeSeries};
use tranad_telemetry::{JsonlSink, Recorder};
use tranad_tensor::pool;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| (t as f64 / (6.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

fn fast_config() -> TranadConfig {
    TranadConfig {
        epochs: 2,
        window: 6,
        context: 12,
        ff_hidden: 16,
        dropout: 0.1,
        batch_size: 32,
        ..TranadConfig::default()
    }
}

#[test]
fn training_and_detection_identical_across_thread_counts() {
    let series = toy_series(280, 3, 21);
    let test = toy_series(120, 3, 22);
    let config = fast_config();

    let (serial_losses, serial_scores, serial_thresholds) = pool::with_threads(1, || {
        let (trained, report) = train(&series, config).unwrap();
        let det = trained.detect(&test, PotConfig::default()).unwrap();
        (report.train_losses, det.scores, det.thresholds)
    });

    let (par_losses, par_scores, par_thresholds) = pool::with_threads(8, || {
        let (trained, report) = train(&series, config).unwrap();
        let det = trained.detect(&test, PotConfig::default()).unwrap();
        (report.train_losses, det.scores, det.thresholds)
    });

    // Bitwise equality — not approximate: the pool must not reorder any
    // floating-point reduction.
    assert_eq!(serial_losses, par_losses, "train losses diverged");
    assert_eq!(serial_scores, par_scores, "anomaly scores diverged");
    assert_eq!(serial_thresholds, par_thresholds, "POT thresholds diverged");
}

#[test]
fn scoring_identical_across_thread_counts() {
    let series = toy_series(260, 2, 31);
    let config = fast_config();
    let (trained, _) = pool::with_threads(1, || train(&series, config).unwrap());

    let serial = pool::with_threads(1, || trained.score_series(&series));
    let parallel = pool::with_threads(8, || trained.score_series(&series));
    assert_eq!(serial, parallel);
}

#[test]
fn live_jsonl_sink_preserves_determinism() {
    let series = toy_series(240, 2, 41);
    let test = toy_series(100, 2, 42);
    let config = fast_config();

    let run = |threads: usize, rec: Recorder| {
        pool::with_threads(threads, || {
            let (trained, report) = train_with(&series, config, &rec).unwrap();
            let det = trained.detect_with(&test, PotConfig::default(), &rec).unwrap();
            (report.train_losses, det.scores, det.thresholds)
        })
    };

    // Untraced serial run is the reference.
    let reference = run(1, Recorder::disabled());

    // Traced runs at 1 and 8 threads: numbers must stay bitwise identical
    // AND both traces must be valid JSONL.
    let dir = std::env::temp_dir().join("tranad_determinism_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let mut span_sequences: Vec<Vec<(String, u64)>> = Vec::new();
    for threads in [1usize, 8] {
        let path = dir.join(format!("trace_t{threads}.jsonl"));
        let rec = Recorder::with_sink(Arc::new(JsonlSink::create(&path).unwrap()));
        let traced = run(threads, rec.clone());
        assert_eq!(traced, reference, "telemetry perturbed results at {threads} threads");
        rec.flush_metrics();
        rec.flush();

        let text = std::fs::read_to_string(&path).unwrap();
        let mut epochs = 0;
        let mut spans: Vec<(String, u64)> = Vec::new();
        for line in text.lines() {
            let v = tranad_json::parse(line)
                .unwrap_or_else(|e| panic!("bad trace line {line:?}: {e:?}"));
            let name = v.get("event").and_then(|n| n.as_str()).expect("event name");
            if name == "train.epoch" {
                epochs += 1;
            }
            if name == "span" {
                spans.push((
                    v.get("name").and_then(|n| n.as_str()).expect("span name").to_string(),
                    v.get("depth").and_then(|d| d.as_f64()).expect("span depth") as u64,
                ));
            }
        }
        assert_eq!(epochs, 2, "expected one train.epoch line per epoch");
        assert!(!spans.is_empty(), "traced run emitted no spans");
        span_sequences.push(spans);
        std::fs::remove_file(&path).ok();
    }
    // Spans are emitted serially from the orchestrating thread, so the
    // exact (name, depth) sequence — not just the multiset — must be
    // independent of the pool size.
    assert_eq!(
        span_sequences[0], span_sequences[1],
        "span sequence differs between 1 and 8 threads"
    );
}

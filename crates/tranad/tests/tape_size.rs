//! Regression test pinning the autograd tape size of one TranAD training
//! step. The fused ops (linear+bias+activation, layer-norm affine, scaled
//! q·kᵀ) each collapse several tape nodes into one; if a code path quietly
//! falls back to the unfused chain, the node count grows and this test
//! fails. Update the constants deliberately when the architecture changes.

use tranad::config::TranadConfig;
use tranad::model::TranadModel;
use tranad_nn::{Ctx, Init, ParamStore};
use tranad_tensor::Tensor;

fn tiny_config() -> TranadConfig {
    TranadConfig {
        epochs: 1,
        batch_size: 4,
        dropout: 0.0,
        context: 12,
        window: 6,
        ff_hidden: 16,
        ..TranadConfig::default()
    }
}

fn step_tape_len(config: TranadConfig, dims: usize) -> usize {
    let mut store = ParamStore::new();
    let mut init = Init::with_seed(7);
    let model = TranadModel::new(&mut store, &mut init, dims, config);

    let ctx = Ctx::train(&store, 11);
    let b = 4;
    let wv = ctx.input(Tensor::from_fn([b, config.window, dims], |i| {
        (i as f64 * 0.17).sin()
    }));
    let cv = ctx.input(Tensor::from_fn([b, config.context, dims], |i| {
        (i as f64 * 0.29).cos()
    }));
    let out = model.forward(&ctx, &wv, &cv);
    // The phase-1/phase-2 loss of training update 1 (Eq. 10 at epoch 0).
    let loss = out
        .o1
        .mse(&wv)
        .scale(1.0)
        .add(&out.o2_hat.mse(&wv).scale(0.0));
    loss.backward();
    ctx.tape().len()
}

#[test]
fn transformer_step_tape_size_is_pinned() {
    // One full two-phase forward + loss on the transformer trunk. Fused
    // linear/layer-norm/attention nodes keep this count flat; the unfused
    // chains would add 2 nodes per linear+activation, 2 per layer norm and
    // 2 per attention score product.
    assert_eq!(step_tape_len(tiny_config(), 2), 446);
}

#[test]
fn feedforward_ablation_step_tape_size_is_pinned() {
    let config = TranadConfig {
        use_transformer: false,
        ..tiny_config()
    };
    assert_eq!(step_tape_len(config, 2), 34);
}

//! Taped vs tape-free parity gate.
//!
//! The tape-free `InferCtx` path must be a drop-in replacement for the
//! tape-backed `Ctx::eval` path: identical kernels applied in identical
//! order, so forward outputs and the anomaly scores derived from them are
//! **bitwise** equal — across random configurations, every ablation
//! variant, and any thread-pool size.

use tranad::{train_with, Ablation, OnlineState, PotConfig, TrainedTranad, TranadConfig};
use tranad_data::{SignalRng, TimeSeries, Windows};
use tranad_nn::{Ctx, Fwd, InferCtx};
use tranad_tensor::pool;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| ((t as f64) / (9.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
    }
}

fn flat(scores: &[Vec<f64>]) -> Vec<f64> {
    scores.iter().flatten().copied().collect()
}

fn train_tiny(series: &TimeSeries, config: TranadConfig) -> TrainedTranad {
    let rec = tranad_telemetry::Recorder::disabled();
    train_with(series, config, &rec).expect("training failed").0
}

/// The pre-refactor reference: scores every window through the tape-backed
/// `Ctx::eval` path with the same batch boundaries as `score_normalized`.
fn taped_scores(trained: &TrainedTranad, series: &TimeSeries) -> Vec<Vec<f64>> {
    let normalized = trained.normalizer.transform(series);
    let config = *trained.model.config();
    let windows = Windows::borrowed(&normalized, config.window);
    let (k, m) = (config.window, normalized.dims());
    let n = windows.len();
    let bs = config.batch_size.max(1);
    let mut out = Vec::with_capacity(n);
    for start in (0..n).step_by(bs) {
        let end = (start + bs).min(n);
        let ctx = Ctx::eval(&trained.store);
        let w = ctx.input(windows.batch_range(start, end));
        let c = ctx.input(windows.context_batch_range(start, end, config.context));
        let fwd = trained.model.forward(&ctx, &w, &c);
        let (o1, o2h, wv) = (fwd.o1.value(), fwd.o2_hat.value(), w.value());
        for bi in 0..end - start {
            let base = (bi * k + (k - 1)) * m;
            out.push(
                (0..m)
                    .map(|d| {
                        let target = wv.data()[base + d];
                        let e1 = o1.data()[base + d] - target;
                        let e2 = o2h.data()[base + d] - target;
                        0.5 * e1 * e1 + 0.5 * e2 * e2
                    })
                    .collect(),
            );
        }
    }
    out
}

#[test]
fn forward_and_scores_bitwise_match_across_random_configs() {
    let mut rng = SignalRng::new(0xF0D);
    for trial in 0..4u64 {
        let window = 4 + rng.index(0, 5); // 4..=8
        let config = TranadConfig {
            epochs: 2,
            window,
            context: window * (1 + rng.index(0, 3)), // 1-3 windows of context
            ff_hidden: [8, 12, 16][rng.index(0, 3)],
            batch_size: 16 + rng.index(0, 48),
            dropout: 0.0,
            ..TranadConfig::default()
        };
        let dims = 1 + rng.index(0, 3);
        let series = toy_series(90, dims, 0xBEEF ^ trial);
        let trained = train_tiny(&series, config);

        // Raw forward outputs, full batch: taped vs tape-free.
        let normalized = trained.normalizer.transform(&series);
        let windows = Windows::borrowed(&normalized, config.window);
        let n = windows.len();
        let w_t = windows.batch_range(0, n);
        let c_t = windows.context_batch_range(0, n, config.context);

        let ctx = Ctx::eval(&trained.store);
        let taped = trained.model.forward(&ctx, &ctx.input(w_t.clone()), &ctx.input(c_t.clone()));
        let ictx = InferCtx::new(&trained.store);
        let free = trained.model.forward(&ictx, &ictx.input(w_t), &ictx.input(c_t));

        assert_bits_eq(taped.o1.value().data(), free.o1.data(), "o1");
        assert_bits_eq(taped.o2.value().data(), free.o2.data(), "o2");
        assert_bits_eq(taped.o2_hat.value().data(), free.o2_hat.data(), "o2_hat");
        assert_bits_eq(taped.focus.data(), free.focus.data(), "focus");

        // End-to-end anomaly scores through the public (tape-free) API.
        let tape_free = trained.score_series(&series);
        assert_bits_eq(&flat(&taped_scores(&trained, &series)), &flat(&tape_free), "scores");
    }
}

#[test]
fn every_ablation_variant_scores_bitwise_match() {
    let base = TranadConfig {
        epochs: 2,
        window: 5,
        context: 10,
        ff_hidden: 8,
        batch_size: 32,
        dropout: 0.0,
        ..TranadConfig::default()
    };
    let series = toy_series(70, 2, 7);
    for ablation in [
        Ablation::Full,
        Ablation::NoTransformer,
        Ablation::NoSelfConditioning,
        Ablation::NoAdversarial,
        Ablation::NoMaml,
    ] {
        let trained = train_tiny(&series, ablation.apply(base));
        let tape_free = trained.score_series(&series);
        assert_bits_eq(
            &flat(&taped_scores(&trained, &series)),
            &flat(&tape_free),
            ablation.name(),
        );
    }
}

#[test]
fn thread_count_does_not_change_batch_or_online_scores() {
    let config = TranadConfig {
        epochs: 2,
        window: 6,
        context: 12,
        ff_hidden: 8,
        batch_size: 16, // several chunks, so the pool actually fans out
        dropout: 0.0,
        ..TranadConfig::default()
    };
    let series = toy_series(120, 2, 99);
    let trained = train_tiny(&series, config);

    let one = pool::with_threads(1, || trained.score_series(&series));
    let eight = pool::with_threads(8, || trained.score_series(&series));
    assert_bits_eq(&flat(&one), &flat(&eight), "batch scores 1 vs 8 threads");

    let stream = |_: usize| -> Vec<f64> {
        // Re-run the stream under a given pool size.
        let mut state = OnlineState::new(&trained, PotConfig::default()).unwrap();
        let mut scores = Vec::new();
        for t in 0..series.len() {
            let v = state.push(&trained, series.row(t)).unwrap();
            scores.extend(v.scores);
        }
        scores
    };
    let s1 = pool::with_threads(1, || stream(1));
    let s8 = pool::with_threads(8, || stream(8));
    assert_bits_eq(&s1, &s8, "online scores 1 vs 8 threads");

    // Streamed tail scores equal the batch path bitwise once the ring holds
    // a full window+context of real history.
    let tail = series.len() - 1;
    let batch_tail = &one[tail];
    let online_tail = &s1[tail * series.dims()..(tail + 1) * series.dims()];
    assert_bits_eq(batch_tail, online_tail, "online tail vs batch");
}

//! Model introspection for the paper's Figure 3: per-timestamp averaged
//! attention weights and focus scores.

use crate::train::TrainedTranad;
use tranad_data::{TimeSeries, Windows};
use tranad_nn::{Fwd, InferCtx};

/// Attention and focus traces over a series.
#[derive(Debug, Clone)]
pub struct Introspection {
    /// Average attention weight the current timestamp places on its context
    /// window (mean over heads and key positions), per timestamp.
    pub attention: Vec<f64>,
    /// Focus score per timestamp and dimension (`(O₁−W)²` at the window
    /// tail).
    pub focus: Vec<Vec<f64>>,
}

impl TrainedTranad {
    /// Computes attention and focus traces on a raw series.
    ///
    /// Returns `None` for the feed-forward ablation (no attention exists).
    pub fn introspect(&self, series: &TimeSeries) -> Option<Introspection> {
        let config = *self.model.config();
        let normalized = self.normalizer.transform(series);
        let windows = Windows::new(normalized, config.window);
        let m = series.dims();
        let k = config.window;
        let c_len = config.context;

        let mut attention = Vec::with_capacity(windows.len());
        let mut focus = Vec::with_capacity(windows.len());
        let n = windows.len();
        let bs = config.batch_size.max(1);
        for start in (0..n).step_by(bs) {
            let end = (start + bs).min(n);
            let ctx = InferCtx::new(&self.store);
            let w = ctx.input(windows.batch_range(start, end));
            let c = ctx.input(windows.context_batch_range(start, end, c_len));
            let attn = self.model.context_attention(&ctx, &w, &c)?;
            let out = self.model.forward(&ctx, &w, &c);
            for bi in 0..end - start {
                // Attention from the last (current) context position,
                // averaged over the keys it attends to — the variance of
                // that row signals how concentrated attention is; we report
                // the max weight as the "attention score".
                let row_start = (bi * c_len + (c_len - 1)) * c_len;
                let row = &attn.data()[row_start..row_start + c_len];
                let max_w = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                attention.push(max_w);
                let base = (bi * k + (k - 1)) * m;
                focus.push(out.focus.data()[base..base + m].to_vec());
            }
        }
        Some(Introspection { attention, focus })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TranadConfig;
    use crate::train::train;
    use tranad_data::SignalRng;

    fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
        let mut rng = SignalRng::new(seed);
        let cols: Vec<Vec<f64>> = (0..dims)
            .map(|_| (0..len).map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal()).collect())
            .collect();
        TimeSeries::from_columns(&cols)
    }

    fn cfg() -> TranadConfig {
        TranadConfig {
            epochs: 2,
            window: 6,
            context: 12,
            ff_hidden: 16,
            dropout: 0.0,
            ..TranadConfig::default()
        }
    }

    #[test]
    fn introspection_covers_series() {
        let series = toy_series(150, 2, 1);
        let (trained, _) = train(&series, cfg()).unwrap();
        let intro = trained.introspect(&series).expect("transformer model");
        assert_eq!(intro.attention.len(), series.len());
        assert_eq!(intro.focus.len(), series.len());
        assert_eq!(intro.focus[0].len(), 2);
        assert!(intro.attention.iter().all(|a| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn focus_correlates_with_anomalies() {
        let series = toy_series(300, 1, 2);
        let (trained, _) = train(&series, cfg()).unwrap();
        let mut test = series.clone();
        for t in 150..155 {
            test.set(t, 0, 8.0);
        }
        let intro = trained.introspect(&test).unwrap();
        let anom: f64 = (150..155).map(|t| intro.focus[t][0]).sum::<f64>() / 5.0;
        let norm: f64 = (20..120).map(|t| intro.focus[t][0]).sum::<f64>() / 100.0;
        assert!(anom > 3.0 * norm, "focus anom {anom} vs norm {norm}");
    }

    #[test]
    fn feed_forward_ablation_has_no_attention() {
        let series = toy_series(120, 1, 3);
        let (trained, _) = train(
            &series,
            TranadConfig { use_transformer: false, ..cfg() },
        )
        .unwrap();
        assert!(trained.introspect(&series).is_none());
    }
}

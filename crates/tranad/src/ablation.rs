//! The ablation variants of Table 6 (§5.1): TranAD with each major
//! component removed.

use crate::config::TranadConfig;

/// A named ablation of the TranAD model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// The full model.
    Full,
    /// Transformer encoders replaced by a feed-forward network.
    NoTransformer,
    /// Phase-2 focus score fixed to zero.
    NoSelfConditioning,
    /// Single-phase training with pure reconstruction loss.
    NoAdversarial,
    /// No meta-learning step.
    NoMaml,
}

impl Ablation {
    /// All variants, in Table 6 row order.
    pub fn all() -> [Ablation; 5] {
        [
            Ablation::Full,
            Ablation::NoTransformer,
            Ablation::NoSelfConditioning,
            Ablation::NoAdversarial,
            Ablation::NoMaml,
        ]
    }

    /// Table 6 row label.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Full => "TranAD",
            Ablation::NoTransformer => "w/o transformer",
            Ablation::NoSelfConditioning => "w/o self-condition",
            Ablation::NoAdversarial => "w/o adversarial training",
            Ablation::NoMaml => "w/o MAML",
        }
    }

    /// Applies the ablation to a base configuration.
    pub fn apply(self, base: TranadConfig) -> TranadConfig {
        match self {
            Ablation::Full => base,
            Ablation::NoTransformer => TranadConfig { use_transformer: false, ..base },
            Ablation::NoSelfConditioning => TranadConfig { self_conditioning: false, ..base },
            Ablation::NoAdversarial => TranadConfig { adversarial: false, ..base },
            Ablation::NoMaml => TranadConfig { maml: false, ..base },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_flips_exactly_one_flag() {
        let base = TranadConfig::default();
        let flags = |c: &TranadConfig| {
            [c.use_transformer, c.self_conditioning, c.adversarial, c.maml]
        };
        assert_eq!(flags(&Ablation::Full.apply(base)), [true; 4]);
        for (ab, idx) in [
            (Ablation::NoTransformer, 0),
            (Ablation::NoSelfConditioning, 1),
            (Ablation::NoAdversarial, 2),
            (Ablation::NoMaml, 3),
        ] {
            let f = flags(&ab.apply(base));
            for (i, &v) in f.iter().enumerate() {
                assert_eq!(v, i != idx, "{ab:?} flag {i}");
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            Ablation::all().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 5);
    }
}

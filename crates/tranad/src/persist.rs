//! Model persistence: save a trained detector to JSON and load it back.
//!
//! The file stores the configuration, dimensionality, normalizer state,
//! every parameter tensor and the POT calibration scores. Loading rebuilds
//! the network from the configuration (parameter registration order is
//! deterministic) and restores the weights, so a loaded detector scores
//! bit-identically to the original.

use crate::config::TranadConfig;
use crate::model::TranadModel;
use crate::train::TrainedTranad;
use std::path::Path;
use tranad_data::Normalizer;
use tranad_nn::{Init, ParamStore};
use tranad_json::{FromJson, ToJson};
use tranad_tensor::Tensor;

/// Serializable snapshot of a trained detector.
struct SavedModel {
    format_version: u32,
    config: TranadConfig,
    dims: usize,
    normalizer_mins: Vec<f64>,
    normalizer_ranges: Vec<f64>,
    /// `(shape, data)` per parameter, in registration order.
    params: Vec<(Vec<usize>, Vec<f64>)>,
    train_scores: Vec<Vec<f64>>,
}

const FORMAT_VERSION: u32 = 1;

/// Errors from saving/loading a model.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON encode/decode failure.
    Json(tranad_json::JsonError),
    /// The file's structure does not match the configuration.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<tranad_json::JsonError> for PersistError {
    fn from(e: tranad_json::JsonError) -> Self {
        PersistError::Json(e)
    }
}

tranad_json::impl_json_struct!(SavedModel {
    format_version,
    config,
    dims,
    normalizer_mins,
    normalizer_ranges,
    params,
    train_scores,
});

impl TrainedTranad {
    /// Saves the detector to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let (mins, ranges) = self.normalizer.to_parts();
        let params: Vec<(Vec<usize>, Vec<f64>)> = self
            .store
            .snapshot()
            .into_iter()
            .map(|t| (t.shape().dims().to_vec(), t.data().to_vec()))
            .collect();
        let saved = SavedModel {
            format_version: FORMAT_VERSION,
            config: *self.model.config(),
            dims: self.model.dims(),
            normalizer_mins: mins,
            normalizer_ranges: ranges,
            params,
            train_scores: self.train_scores.clone(),
        };
        std::fs::write(path, saved.to_json().to_string())?;
        Ok(())
    }

    /// Loads a detector from a JSON file written by [`TrainedTranad::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<TrainedTranad, PersistError> {
        let text = std::fs::read_to_string(path)?;
        let saved = SavedModel::from_json(&tranad_json::parse(&text)?)?;
        if saved.format_version != FORMAT_VERSION {
            return Err(PersistError::Corrupt(format!(
                "format version {} (expected {FORMAT_VERSION})",
                saved.format_version
            )));
        }
        // Rebuild the network: registration order is deterministic, so the
        // freshly initialized store has the same layout as the saved one.
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(saved.config.seed);
        let model = TranadModel::new(&mut store, &mut init, saved.dims, saved.config);
        if store.len() != saved.params.len() {
            return Err(PersistError::Corrupt(format!(
                "{} parameters in file, model has {}",
                saved.params.len(),
                store.len()
            )));
        }
        let tensors: Result<Vec<Tensor>, PersistError> = saved
            .params
            .into_iter()
            .enumerate()
            .map(|(i, (shape, data))| {
                let expected: usize = shape.iter().product();
                if expected != data.len() {
                    return Err(PersistError::Corrupt(format!(
                        "parameter {i}: shape {shape:?} vs {} values",
                        data.len()
                    )));
                }
                Ok(Tensor::from_vec(data, shape))
            })
            .collect();
        let tensors = tensors?;
        for (id, t) in store.ids().zip(&tensors).map(|(id, t)| (id, t.clone())).collect::<Vec<_>>() {
            if store.get(id).shape() != t.shape() {
                return Err(PersistError::Corrupt(format!(
                    "parameter {} shape mismatch",
                    id.index()
                )));
            }
            store.set(id, t);
        }
        Ok(TrainedTranad {
            store,
            model,
            normalizer: Normalizer::from_parts(saved.normalizer_mins, saved.normalizer_ranges),
            train_scores: saved.train_scores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train;
    use tranad_data::{SignalRng, TimeSeries};

    fn toy() -> (TimeSeries, TranadConfig) {
        let mut rng = SignalRng::new(17);
        let cols: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..300).map(|t| (t as f64 / 8.0).sin() + 0.05 * rng.normal()).collect())
            .collect();
        let config = TranadConfig {
            epochs: 2,
            window: 6,
            context: 12,
            ff_hidden: 16,
            dropout: 0.0,
            ..TranadConfig::default()
        };
        (TimeSeries::from_columns(&cols), config)
    }

    #[test]
    fn save_load_roundtrip_scores_identically() {
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let dir = std::env::temp_dir().join("tranad_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        trained.save(&path).unwrap();
        let loaded = TrainedTranad::load(&path).unwrap();
        assert_eq!(trained.score_series(&series), loaded.score_series(&series));
        assert_eq!(trained.train_scores, loaded.train_scores);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_version() {
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let dir = std::env::temp_dir().join("tranad_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_version.json");
        trained.save(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"format_version\":1", "\"format_version\":99");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            TrainedTranad::load(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(matches!(
            TrainedTranad::load("/nonexistent/model.json"),
            Err(PersistError::Io(_))
        ));
    }
}

//! Model persistence: save a trained detector to JSON and load it back.
//!
//! The file stores the configuration, dimensionality, normalizer state,
//! every parameter tensor and the POT calibration scores. Loading rebuilds
//! the network from the configuration (parameter registration order is
//! deterministic) and restores the weights, so a loaded detector scores
//! bit-identically to the original.
//!
//! **Crash safety.** Checkpoints are written atomically: the JSON goes to a
//! temp file in the target directory, is fsynced, and is renamed over the
//! destination. A crash mid-write leaves the previous checkpoint intact —
//! readers never observe a torn file.
//!
//! **Format v2.** A checkpoint may embed the streaming state of an
//! [`crate::OnlineDetector`] (its bounded history ring, point counter and
//! per-dimension SPOT tail models) under the optional `streaming` key, so a
//! restarted serving process resumes labeling exactly where it stopped.
//! Format-v1 files (no streaming key) still load.

use crate::config::TranadConfig;
use crate::model::TranadModel;
use crate::online::OnlineSnapshot;
use crate::train::TrainedTranad;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use tranad_data::Normalizer;
use tranad_nn::{Init, ParamStore};
use tranad_json::{FromJson, Json, ToJson};
use tranad_tensor::Tensor;

/// Serializable snapshot of a trained detector.
struct SavedModel {
    format_version: u32,
    config: TranadConfig,
    dims: usize,
    normalizer_mins: Vec<f64>,
    normalizer_ranges: Vec<f64>,
    /// `(shape, data)` per parameter, in registration order.
    params: Vec<(Vec<usize>, Vec<f64>)>,
    train_scores: Vec<Vec<f64>>,
}

/// Current write version. v2 adds the optional embedded streaming state.
const FORMAT_VERSION: u32 = 2;
/// Oldest version [`TrainedTranad::load`] still accepts.
const MIN_FORMAT_VERSION: u32 = 1;

/// Errors from saving/loading a model.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON encode/decode failure.
    Json(tranad_json::JsonError),
    /// The file's structure does not match the configuration.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<tranad_json::JsonError> for PersistError {
    fn from(e: tranad_json::JsonError) -> Self {
        PersistError::Json(e)
    }
}

tranad_json::impl_json_struct!(SavedModel {
    format_version,
    config,
    dims,
    normalizer_mins,
    normalizer_ranges,
    params,
    train_scores,
});

/// Atomically replaces `path` with `contents`: writes a uniquely named
/// temp file in the same directory, fsyncs it, then renames it over the
/// destination (and best-effort fsyncs the directory so the rename itself
/// is durable). A crash at any point leaves either the old file or the new
/// one — never a torn mix. Used for model checkpoints here and for serving
/// checkpoints in `tranad-serve`.
pub fn atomic_write(path: impl AsRef<Path>, contents: &str) -> Result<(), PersistError> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| PersistError::Corrupt(format!("{} has no file name", path.display())))?;
    // Unique per process *and* per call, so concurrent writers (or a
    // leftover temp file from a crashed run) never collide.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        // Never leave temp droppings next to the checkpoint on failure.
        std::fs::remove_file(&tmp).ok();
    }
    result?;
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

impl TrainedTranad {
    /// Saves the detector to a JSON checkpoint, written atomically (temp
    /// file + fsync + rename): a crash mid-save leaves any previous
    /// checkpoint at `path` intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_with_streaming(path, None)
    }

    /// [`TrainedTranad::save`] with optional embedded streaming state (a
    /// format-v2 checkpoint): pass the [`OnlineSnapshot`] of a live
    /// [`crate::OnlineDetector`] to make the checkpoint resumable
    /// mid-stream via [`TrainedTranad::load_with_streaming`].
    pub fn save_with_streaming(
        &self,
        path: impl AsRef<Path>,
        streaming: Option<&OnlineSnapshot>,
    ) -> Result<(), PersistError> {
        let (mins, ranges) = self.normalizer.to_parts();
        let params: Vec<(Vec<usize>, Vec<f64>)> = self
            .store
            .snapshot()
            .into_iter()
            .map(|t| (t.shape().dims().to_vec(), t.data().to_vec()))
            .collect();
        let saved = SavedModel {
            format_version: FORMAT_VERSION,
            config: *self.model.config(),
            dims: self.model.dims(),
            normalizer_mins: mins,
            normalizer_ranges: ranges,
            params,
            train_scores: self.train_scores.clone(),
        };
        let mut json = saved.to_json();
        if let (Json::Obj(pairs), Some(snap)) = (&mut json, streaming) {
            pairs.push(("streaming".to_string(), snap.to_json()));
        }
        atomic_write(path, &json.to_string())
    }

    /// Loads a detector from a JSON file written by [`TrainedTranad::save`]
    /// (any supported format version; embedded streaming state is ignored —
    /// use [`TrainedTranad::load_with_streaming`] to recover it).
    pub fn load(path: impl AsRef<Path>) -> Result<TrainedTranad, PersistError> {
        Ok(Self::load_with_streaming(path)?.0)
    }

    /// Loads a detector plus the embedded streaming state, if the
    /// checkpoint carries one. Format-v1 files load with `None`.
    pub fn load_with_streaming(
        path: impl AsRef<Path>,
    ) -> Result<(TrainedTranad, Option<OnlineSnapshot>), PersistError> {
        let text = std::fs::read_to_string(path)?;
        let json = tranad_json::parse(&text)?;
        let saved = SavedModel::from_json(&json)?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&saved.format_version) {
            return Err(PersistError::Corrupt(format!(
                "format version {} (supported: {MIN_FORMAT_VERSION}..={FORMAT_VERSION})",
                saved.format_version
            )));
        }
        let streaming = match json.get("streaming") {
            Some(v) => Some(OnlineSnapshot::from_json(v)?),
            None => None,
        };
        // Rebuild the network: registration order is deterministic, so the
        // freshly initialized store has the same layout as the saved one.
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(saved.config.seed);
        let model = TranadModel::new(&mut store, &mut init, saved.dims, saved.config);
        if store.len() != saved.params.len() {
            return Err(PersistError::Corrupt(format!(
                "{} parameters in file, model has {}",
                saved.params.len(),
                store.len()
            )));
        }
        let tensors: Result<Vec<Tensor>, PersistError> = saved
            .params
            .into_iter()
            .enumerate()
            .map(|(i, (shape, data))| {
                let expected: usize = shape.iter().product();
                if expected != data.len() {
                    return Err(PersistError::Corrupt(format!(
                        "parameter {i}: shape {shape:?} vs {} values",
                        data.len()
                    )));
                }
                Ok(Tensor::from_vec(data, shape))
            })
            .collect();
        let tensors = tensors?;
        for (id, t) in store.ids().zip(&tensors).map(|(id, t)| (id, t.clone())).collect::<Vec<_>>() {
            if store.get(id).shape() != t.shape() {
                return Err(PersistError::Corrupt(format!(
                    "parameter {} shape mismatch",
                    id.index()
                )));
            }
            store.set(id, t);
        }
        let trained = TrainedTranad {
            store,
            model,
            normalizer: Normalizer::from_parts(saved.normalizer_mins, saved.normalizer_ranges),
            train_scores: saved.train_scores,
        };
        Ok((trained, streaming))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train;
    use tranad_data::{SignalRng, TimeSeries};

    fn toy() -> (TimeSeries, TranadConfig) {
        let mut rng = SignalRng::new(17);
        let cols: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..300).map(|t| (t as f64 / 8.0).sin() + 0.05 * rng.normal()).collect())
            .collect();
        let config = TranadConfig {
            epochs: 2,
            window: 6,
            context: 12,
            ff_hidden: 16,
            dropout: 0.0,
            ..TranadConfig::default()
        };
        (TimeSeries::from_columns(&cols), config)
    }

    #[test]
    fn save_load_roundtrip_scores_identically() {
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let dir = std::env::temp_dir().join("tranad_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        trained.save(&path).unwrap();
        let loaded = TrainedTranad::load(&path).unwrap();
        assert_eq!(trained.score_series(&series), loaded.score_series(&series));
        assert_eq!(trained.train_scores, loaded.train_scores);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_version() {
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let dir = std::env::temp_dir().join("tranad_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_version.json");
        trained.save(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"format_version\":2", "\"format_version\":99");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            TrainedTranad::load(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_still_load() {
        // A v1 file is structurally a v2 file without the streaming key and
        // with format_version 1 — exactly what the pre-v2 writer produced.
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let dir = std::env::temp_dir().join("tranad_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1_model.json");
        trained.save(&path).unwrap();
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"format_version\":2", "\"format_version\":1");
        std::fs::write(&path, text).unwrap();
        let (loaded, streaming) = TrainedTranad::load_with_streaming(&path).unwrap();
        assert!(streaming.is_none(), "v1 files carry no streaming state");
        assert_eq!(trained.score_series(&series), loaded.score_series(&series));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_checkpoint_is_an_error_never_a_panic_or_partial_load() {
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let dir = std::env::temp_dir().join("tranad_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.json");
        trained.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Simulate a torn write at every interesting cut point: mid-token,
        // mid-array and just shy of the closing brace. Each truncation must
        // surface as a typed error, never a panic or a silently partial
        // model.
        for cut in [1, text.len() / 3, text.len() / 2, text.len() - 1] {
            std::fs::write(&path, &text[..cut]).unwrap();
            let err = TrainedTranad::load(&path).map(|_| ()).unwrap_err();
            assert!(
                matches!(err, PersistError::Json(_) | PersistError::Corrupt(_)),
                "cut at {cut}: expected Json/Corrupt error, got {err:?}",
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_existing_checkpoint_atomically() {
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let dir = std::env::temp_dir().join("tranad_persist_test_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        // Pre-existing garbage at the destination must be replaced whole.
        std::fs::write(&path, "{not json").unwrap();
        trained.save(&path).unwrap();
        TrainedTranad::load(&path).unwrap();
        // No temp droppings left behind in the checkpoint directory.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_state_roundtrips_through_v2_checkpoint() {
        use crate::online::OnlineDetector;
        use tranad_evt::PotConfig;
        let (series, config) = toy();
        let (trained, _) = train(&series, config).unwrap();
        let mut rng = SignalRng::new(23);
        let stream: Vec<Vec<f64>> =
            (0..40).map(|t| vec![(t as f64 / 8.0).sin(), 0.05 * rng.normal()]).collect();

        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        for point in &stream[..25] {
            online.push(point).unwrap();
        }
        let snap = online.snapshot();

        let dir = std::env::temp_dir().join("tranad_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("with_streaming.json");
        trained.save_with_streaming(&path, Some(&snap)).unwrap();

        let (loaded, restored_snap) = TrainedTranad::load_with_streaming(&path).unwrap();
        let restored_snap = restored_snap.expect("v2 checkpoint carries streaming state");
        assert_eq!(restored_snap, snap);
        // The restored detector continues the stream bitwise-identically.
        let mut restored = OnlineDetector::restore(&loaded, &restored_snap).unwrap();
        for (t, point) in stream[25..].iter().enumerate() {
            let a = online.push(point).unwrap();
            let b = restored.push(point).unwrap();
            assert_eq!(a.dim_labels, b.dim_labels, "t={t}");
            for (x, y) in a.scores.iter().zip(&b.scores) {
                assert_eq!(x.to_bits(), y.to_bits(), "t={t}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(matches!(
            TrainedTranad::load("/nonexistent/model.json"),
            Err(PersistError::Io(_))
        ));
    }
}

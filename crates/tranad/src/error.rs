//! The shared error type of the detection API.
//!
//! One `DetectorError` covers TranAD itself, every baseline detector and
//! the bench harness, so fallible `fit`/`score`/`detect` signatures compose
//! without per-crate error conversions. `tranad-evt`'s [`PotError`] maps in
//! with the dimension that failed attached.

use std::fmt;
use tranad_evt::PotError;

/// Why a detector could not fit, score or threshold.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorError {
    /// A configuration field (or combination) is out of range.
    InvalidConfig(String),
    /// The input series has no timestamps (or no score rows were given).
    EmptySeries,
    /// The input series is shorter than the method's minimum.
    SeriesTooShort {
        /// Minimum number of timestamps the method needs.
        needed: usize,
        /// Timestamps actually supplied.
        got: usize,
    },
    /// The input's dimensionality does not match what was fitted/expected.
    DimensionMismatch {
        /// Expected number of dimensions.
        expected: usize,
        /// Dimensions actually supplied.
        got: usize,
    },
    /// Training produced a non-finite loss (diverged or NaN-poisoned).
    NonFiniteLoss {
        /// 0-based epoch at which the loss left the finite range.
        epoch: usize,
    },
    /// A streamed datapoint contains NaN or ±Inf. Scoring it would poison
    /// the model window and streaming SPOT state, so it is rejected before
    /// any state is touched — the detector keeps working on the next valid
    /// point.
    NonFiniteInput {
        /// 0-based dimension of the first non-finite value.
        dim: usize,
    },
    /// A score row is empty or contains NaN — the detector produced no
    /// usable score for that timestamp.
    MalformedScores {
        /// 0-based timestamp of the first malformed row.
        timestamp: usize,
    },
    /// POT/SPOT calibration failed for a dimension.
    PotFitFailed {
        /// 0-based score dimension (`usize::MAX` for the aggregate score).
        dim: usize,
        /// Human-readable cause from the EVT layer.
        detail: String,
    },
    /// `score`/`train_scores` was called before a successful `fit`.
    NotFitted,
    /// A method-specific failure that fits no other variant.
    Failed(String),
}

impl DetectorError {
    /// Wraps an EVT-layer error with the dimension it occurred on (use
    /// `usize::MAX` for the aggregate score).
    pub fn pot(dim: usize, e: PotError) -> Self {
        DetectorError::PotFitFailed { dim, detail: e.to_string() }
    }
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            DetectorError::EmptySeries => write!(f, "input series is empty"),
            DetectorError::SeriesTooShort { needed, got } => {
                write!(f, "series too short: need at least {needed} timestamps, got {got}")
            }
            DetectorError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            DetectorError::NonFiniteLoss { epoch } => {
                write!(f, "non-finite training loss at epoch {epoch}")
            }
            DetectorError::NonFiniteInput { dim } => {
                write!(f, "non-finite (NaN/Inf) input value at dimension {dim}")
            }
            DetectorError::MalformedScores { timestamp } => {
                write!(f, "malformed (empty or NaN) score row at timestamp {timestamp}")
            }
            DetectorError::PotFitFailed { dim, detail } => {
                if *dim == usize::MAX {
                    write!(f, "POT fit failed on the aggregate score: {detail}")
                } else {
                    write!(f, "POT fit failed on dimension {dim}: {detail}")
                }
            }
            DetectorError::NotFitted => write!(f, "detector used before fit"),
            DetectorError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DetectorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = DetectorError::SeriesTooShort { needed: 5, got: 2 };
        assert!(e.to_string().contains("need at least 5"));
        let e = DetectorError::pot(3, PotError::EmptyCalibration);
        assert!(e.to_string().contains("dimension 3"));
        let e = DetectorError::pot(usize::MAX, PotError::NonFiniteScores);
        assert!(e.to_string().contains("aggregate"));
    }
}

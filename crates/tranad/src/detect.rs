//! Online inference, anomaly detection and diagnosis (paper Algorithm 2 and
//! §3.5): POT-thresholded per-dimension labels, OR-reduced to timestamp
//! labels.

use crate::error::DetectorError;
use crate::train::TrainedTranad;
use std::time::Instant;
use tranad_data::TimeSeries;
use tranad_evt::{PotConfig, PotError, Spot};
use tranad_telemetry::Recorder;
use tranad_tensor::pool;

/// Detection output for a test series.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Per-dimension anomaly scores `s_i` per timestamp.
    pub scores: Vec<Vec<f64>>,
    /// Aggregate per-timestamp score (mean over dimensions) — used for AUC.
    pub aggregate: Vec<f64>,
    /// Per-dimension labels `y_i = 1(s_i >= POT(s_i))`.
    pub dim_labels: Vec<Vec<bool>>,
    /// Timestamp labels `y = ∨_i y_i` (Eq. 14).
    pub labels: Vec<bool>,
    /// The per-dimension POT thresholds.
    pub thresholds: Vec<f64>,
}

impl TrainedTranad {
    /// Runs Algorithm 2 on a raw test series: scores every timestamp,
    /// fits POT per dimension on the training scores, and labels. Traces
    /// to the process-global recorder; see [`TrainedTranad::detect_with`].
    pub fn detect(&self, test: &TimeSeries, pot: PotConfig) -> Result<Detection, DetectorError> {
        self.detect_with(test, pot, tranad_telemetry::global())
    }

    /// [`TrainedTranad::detect`] with an explicit recorder: emits a
    /// `detect.score` event (window count, wall time, mean per-window
    /// latency, also observed on the `detect.window_us` histogram) and one
    /// `pot.dim` event per dimension.
    pub fn detect_with(
        &self,
        test: &TimeSeries,
        pot: PotConfig,
        rec: &Recorder,
    ) -> Result<Detection, DetectorError> {
        if test.is_empty() {
            return Err(DetectorError::EmptySeries);
        }
        if test.dims() != self.model.dims() {
            return Err(DetectorError::DimensionMismatch {
                expected: self.model.dims(),
                got: test.dims(),
            });
        }
        let _scope = rec.span_scope();
        let _span = tranad_telemetry::span::enter("detect.run");
        let started = Instant::now();
        let scores = {
            let _s = tranad_telemetry::span::enter("detect.score_windows");
            self.score_series(test)
        };
        if rec.enabled() {
            let seconds = started.elapsed().as_secs_f64();
            let us_per_window = 1e6 * seconds / test.len().max(1) as f64;
            rec.observe("detect.window_us", us_per_window);
            rec.emit("detect.score", |e| {
                e.u64("windows", test.len() as u64)
                    .f64("seconds", seconds)
                    .f64("us_per_window", us_per_window);
            });
        }
        detect_from_scores_with(&self.train_scores, &scores, pot, rec)
    }
}

/// Thresholds per-dimension `test_scores` with POT fitted on the
/// corresponding dimension of `calibration_scores` (both `[t][m]`).
///
/// Exposed separately so baseline detectors share the identical decision
/// procedure (the paper applies POT uniformly "for fair comparison").
pub fn detect_from_scores(
    calibration_scores: &[Vec<f64>],
    test_scores: &[Vec<f64>],
    pot: PotConfig,
) -> Result<Detection, DetectorError> {
    detect_from_scores_with(calibration_scores, test_scores, pot, &Recorder::disabled())
}

/// [`detect_from_scores`] with telemetry: after the parallel SPOT walks,
/// one `pot.dim` event per dimension (threshold, peak count, streaming
/// re-calibrations) is emitted serially in dimension order, so the trace
/// is deterministic and the computation itself is untouched.
pub fn detect_from_scores_with(
    calibration_scores: &[Vec<f64>],
    test_scores: &[Vec<f64>],
    pot: PotConfig,
    rec: &Recorder,
) -> Result<Detection, DetectorError> {
    if test_scores.is_empty() || calibration_scores.is_empty() {
        return Err(DetectorError::EmptySeries);
    }
    let m = test_scores[0].len();
    if let Some(bad) = calibration_scores.iter().find(|r| r.len() != m) {
        return Err(DetectorError::DimensionMismatch { expected: m, got: bad.len() });
    }

    let _scope = rec.span_scope();
    let _span = tranad_telemetry::span::enter("pot.calibrate");
    // One streaming SPOT per dimension: initialized on the nominal
    // (training) score distribution, adapting on non-alarm test scores so
    // slow regime drift does not flood the detector with false positives.
    // Dimensions are independent, so they run on the thread pool; each
    // dimension's SPOT walk stays sequential, so the result is identical
    // for any thread count.
    type DimResult = Result<(Vec<bool>, f64, usize, u64), PotError>;
    let mut per_dim: Vec<DimResult> = vec![Ok((Vec::new(), 0.0, 0, 0)); m];
    pool::parallel_chunks_mut(&mut per_dim, 1, |d, slot| {
        let calib: Vec<f64> = calibration_scores.iter().map(|r| r[d]).collect();
        slot[0] = Spot::try_init(&calib, pot).map(|mut spot| {
            let labels: Vec<bool> = test_scores.iter().map(|row| spot.step(row[d])).collect();
            (labels, spot.threshold, spot.n_peaks(), spot.refits())
        });
    });
    let mut thresholds = Vec::with_capacity(m);
    let mut dim_labels = vec![vec![false; m]; test_scores.len()];
    for (d, result) in per_dim.into_iter().enumerate() {
        let (labels, threshold, n_peaks, refits) = result.map_err(|e| DetectorError::pot(d, e))?;
        for (t, l) in labels.into_iter().enumerate() {
            dim_labels[t][d] = l;
        }
        rec.emit("pot.dim", |e| {
            e.u64("dim", d as u64)
                .f64("threshold", threshold)
                .u64("n_peaks", n_peaks as u64)
                .u64("refits", refits);
        });
        thresholds.push(threshold);
    }
    let labels: Vec<bool> = dim_labels.iter().map(|row| row.iter().any(|&b| b)).collect();
    let aggregate: Vec<f64> = test_scores
        .iter()
        .map(|row| row.iter().sum::<f64>() / m as f64)
        .collect();
    Ok(Detection { scores: test_scores.to_vec(), aggregate, dim_labels, labels, thresholds })
}

/// Labels a test series from the *aggregate* (dimension-averaged) score
/// with a single streaming SPOT — the decision procedure the official
/// TranAD evaluation uses for the detection metrics (the per-dimension OR
/// of Eq. 14 is used for diagnosis).
pub fn detect_aggregate(
    calibration_scores: &[Vec<f64>],
    test_scores: &[Vec<f64>],
    pot: PotConfig,
) -> Result<Vec<bool>, DetectorError> {
    detect_aggregate_with(calibration_scores, test_scores, pot, &Recorder::disabled())
}

/// [`detect_aggregate`] with telemetry: emits one `pot.aggregate` event
/// (final threshold, peak count, streaming re-calibrations).
pub fn detect_aggregate_with(
    calibration_scores: &[Vec<f64>],
    test_scores: &[Vec<f64>],
    pot: PotConfig,
    rec: &Recorder,
) -> Result<Vec<bool>, DetectorError> {
    if test_scores.is_empty() || calibration_scores.is_empty() {
        return Err(DetectorError::EmptySeries);
    }
    let _scope = rec.span_scope();
    let _span = tranad_telemetry::span::enter("pot.aggregate_walk");
    let mean = |row: &Vec<f64>| row.iter().sum::<f64>() / row.len().max(1) as f64;
    let calib: Vec<f64> = calibration_scores.iter().map(mean).collect();
    let mut spot =
        Spot::try_init(&calib, pot).map_err(|e| DetectorError::pot(usize::MAX, e))?;
    let labels = test_scores.iter().map(|row| spot.step(mean(row))).collect();
    rec.emit("pot.aggregate", |e| {
        e.f64("threshold", spot.threshold)
            .u64("n_peaks", spot.n_peaks() as u64)
            .u64("refits", spot.refits());
    });
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores_with_anomaly() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let calib: Vec<Vec<f64>> = (0..2000)
            .map(|t| vec![0.01 + 0.005 * ((t % 7) as f64), 0.02 + 0.004 * ((t % 5) as f64)])
            .collect();
        let mut test = calib[..500].to_vec();
        for row in test.iter_mut().skip(100).take(5) {
            row[1] = 5.0; // dimension-1 anomaly
        }
        (calib, test)
    }

    #[test]
    fn aggregate_detection_flags_anomaly() {
        let (calib, test) = scores_with_anomaly();
        let labels = detect_aggregate(&calib, &test, PotConfig::default()).unwrap();
        assert!(labels[100..105].iter().all(|&b| b));
        assert!(labels[..100].iter().all(|&b| !b));
    }

    #[test]
    fn detects_and_localizes() {
        let (calib, test) = scores_with_anomaly();
        let det = detect_from_scores(&calib, &test, PotConfig::default()).unwrap();
        assert!(det.labels[100..105].iter().all(|&b| b));
        assert!(det.dim_labels[102][1]);
        assert!(!det.dim_labels[102][0]);
        // Clean region stays clean.
        assert!(det.labels[..100].iter().all(|&b| !b));
    }

    #[test]
    fn aggregate_is_mean() {
        let calib = vec![vec![0.0, 0.0]; 100];
        let test = vec![vec![1.0, 3.0]];
        let det = detect_from_scores(&calib, &test, PotConfig::default()).unwrap();
        assert_eq!(det.aggregate, vec![2.0]);
    }

    #[test]
    fn thresholds_per_dimension_differ() {
        let calib: Vec<Vec<f64>> = (0..3000)
            .map(|t| vec![(t % 10) as f64 * 0.01, (t % 10) as f64 * 1.0])
            .collect();
        let det = detect_from_scores(&calib, &calib[..10], PotConfig::default()).unwrap();
        assert!(det.thresholds[1] > det.thresholds[0] * 10.0);
    }
}

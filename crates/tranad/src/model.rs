//! The TranAD network (paper Figure 1): a context encoder over the complete
//! sequence, a masked window encoder, and two feed-forward decoders, all
//! operating on `d_model = 2m` features (window concatenated with the focus
//! score on the feature axis).

use crate::config::TranadConfig;
use tranad_nn::attention::causal_mask;
use tranad_nn::layers::{Activation, FeedForward, Linear};
use tranad_nn::transformer::{EncoderLayer, PositionalEncoding, WindowEncoderLayer};
use tranad_nn::{Fwd, Init, ParamId, ParamStore, Value};
use tranad_tensor::{Tensor, Var};

/// Encoder trunk: either the paper's transformer pair or the "w/o
/// transformer" ablation's feed-forward stand-in.
#[allow(clippy::large_enum_variant)] // one instance per model
enum Trunk {
    Transformer {
        pos: PositionalEncoding,
        context_encoder: EncoderLayer,
        window_encoder: WindowEncoderLayer,
    },
    /// Position-wise MLP over the concatenated inputs (Table 6 row 2).
    FeedForward(FeedForward),
}

/// The TranAD network with its two decoders.
pub struct TranadModel {
    /// Input embedding, present when `2m` is below the `d_model` floor.
    embed: Option<Linear>,
    trunk: Trunk,
    decoder1: FeedForward,
    decoder2: FeedForward,
    dims: usize,
    config: TranadConfig,
    /// Parameter ids belonging to decoder 2 (the adversarial "discriminator"
    /// side of Eq. 8); everything else belongs to the encoder + decoder 1.
    decoder2_params: Vec<ParamId>,
}

/// Output of one two-phase forward pass. Generic over the forward mode:
/// `TranadOutput<Var>` (the default) from a taped [`TrainCtx`] pass,
/// `TranadOutput<Tensor>` from a tape-free [`InferCtx`] pass.
///
/// [`TrainCtx`]: tranad_nn::TrainCtx
/// [`InferCtx`]: tranad_nn::InferCtx
pub struct TranadOutput<V = Var> {
    /// Phase-1 reconstruction from decoder 1 (`O_1`).
    pub o1: V,
    /// Phase-1 reconstruction from decoder 2 (`O_2`).
    pub o2: V,
    /// Phase-2 self-conditioned reconstruction from decoder 2 (`Ô_2`).
    pub o2_hat: V,
    /// The focus score fed to phase 2 (detached tensor), for introspection.
    pub focus: Tensor,
}

impl TranadModel {
    /// Builds a model for `dims`-dimensional data, registering parameters in
    /// `store`.
    pub fn new(store: &mut ParamStore, init: &mut Init, dims: usize, config: TranadConfig) -> Self {
        // Fallible callers validate first (`train_with` returns the error);
        // direct construction with a bad config is a programming error.
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let d_model = config.d_model(dims);
        let embed = (2 * dims < d_model)
            .then(|| Linear::new(store, init, 2 * dims, d_model));
        let before = store.len();
        let trunk = if config.use_transformer {
            let heads = config.heads_for(dims);
            Trunk::Transformer {
                pos: PositionalEncoding::new(config.context.max(config.window) + 1, d_model),
                context_encoder: EncoderLayer::new(
                    store,
                    init,
                    d_model,
                    heads,
                    config.ff_hidden,
                    config.dropout,
                ),
                window_encoder: WindowEncoderLayer::new(
                    store,
                    init,
                    d_model,
                    heads,
                    config.ff_hidden,
                    config.dropout,
                ),
            }
        } else {
            Trunk::FeedForward(FeedForward::new(
                store,
                init,
                &[d_model, config.ff_hidden, d_model],
                Activation::Relu,
                Activation::Identity,
                config.dropout,
            ))
        };
        let _ = before;
        let decoder1 = FeedForward::new(
            store,
            init,
            &[d_model, dims],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );
        let d2_start = store.len();
        let decoder2 = FeedForward::new(
            store,
            init,
            &[d_model, dims],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );
        let decoder2_params: Vec<ParamId> = store.ids().skip(d2_start).collect();
        TranadModel { embed, trunk, decoder1, decoder2, dims, config, decoder2_params }
    }

    /// Data dimensionality `m`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The model configuration.
    pub fn config(&self) -> &TranadConfig {
        &self.config
    }

    /// Ids of decoder-2 parameters (the max side of Eq. 8).
    pub fn decoder2_param_ids(&self) -> &[ParamId] {
        &self.decoder2_params
    }

    /// Encodes `(W, C, F)` into the window representation `I_2^3` of Eq. 5.
    ///
    /// `window`: `[b, k, m]`, `context`: `[b, c, m]`, `focus`: `[b, k, m]`
    /// (zeros in phase 1, phase-1 squared deviations in phase 2).
    fn encode<F: Fwd>(&self, ctx: &F, window: &F::V, context: &F::V, focus: &F::V) -> F::V {
        // Concatenate the focus score on the feature axis: [b, k, 2m],
        // then embed if 2m sits below the d_model floor.
        let mut win_in = Value::concat_last(&[window.clone(), focus.clone()]);
        if let Some(embed) = &self.embed {
            win_in = embed.forward(ctx, &win_in);
        }
        match &self.trunk {
            Trunk::Transformer { pos, context_encoder, window_encoder } => {
                let dims = context.shape();
                let (b, c_len) = (dims.dim(0), dims.dim(1));
                let k = window.shape().dim(1);
                // Context focus: zero-padded to context length (paper §3.3:
                // "broadcast F to match the dimension ... with appropriate
                // zero-padding"), the focus occupying the final k rows.
                let ctx_focus = ctx.input(zero_pad_focus(&focus.value(), b, c_len, k, self.dims));
                let mut ctx_in = Value::concat_last(&[context.clone(), ctx_focus]);
                if let Some(embed) = &self.embed {
                    ctx_in = embed.forward(ctx, &ctx_in);
                }
                let i1 = pos.forward(ctx, &ctx_in);
                let i1_2 = context_encoder.forward(ctx, &i1, None);
                let i2 = pos.forward(ctx, &win_in);
                // §6 future-work extension: bidirectional window encoding
                // replaces the causal mask with full self-attention.
                let mask = if self.config.bidirectional {
                    ctx.input(Tensor::zeros([k, k]))
                } else {
                    ctx.input(causal_mask(k))
                };
                window_encoder.forward(ctx, &i2, &i1_2, &mask)
            }
            Trunk::FeedForward(ff) => ff.forward(ctx, &win_in),
        }
    }

    /// Phase 1 (Algorithm 1 line 5): reconstructions with `F = 0`.
    pub fn phase1<F: Fwd>(&self, ctx: &F, window: &F::V, context: &F::V) -> (F::V, F::V) {
        let zeros = ctx.input(Tensor::zeros(window.shape()));
        let latent = self.encode(ctx, window, context, &zeros);
        (
            self.decoder1.forward(ctx, &latent),
            self.decoder2.forward(ctx, &latent),
        )
    }

    /// Phase 2 (line 6): decoder-2 reconstruction conditioned on the focus
    /// score. The focus is a detached tensor (no gradient flows through it),
    /// matching the auto-regressive two-phase inference of §3.4.
    pub fn phase2<F: Fwd>(&self, ctx: &F, window: &F::V, context: &F::V, focus: Tensor) -> F::V {
        let f = ctx.input(focus);
        let latent = self.encode(ctx, window, context, &f);
        self.decoder2.forward(ctx, &latent)
    }

    /// Phase-2 pass through decoder 1 (used at test time, Algorithm 2
    /// line 3 produces the pair `(O_1, Ô_2)`; `Ô_1` is discarded but the
    /// shared encoder run is the same).
    pub fn phase2_decoder1<F: Fwd>(
        &self,
        ctx: &F,
        window: &F::V,
        context: &F::V,
        focus: Tensor,
    ) -> F::V {
        let f = ctx.input(focus);
        let latent = self.encode(ctx, window, context, &f);
        self.decoder1.forward(ctx, &latent)
    }

    /// The full two-phase forward pass.
    ///
    /// When `self_conditioning` is disabled (ablation), the phase-2 focus is
    /// fixed to zeros; when `adversarial` is disabled the caller should use
    /// only `o1`/`o2`.
    pub fn forward<F: Fwd>(&self, ctx: &F, window: &F::V, context: &F::V) -> TranadOutput<F::V> {
        let (o1, o2) = self.phase1(ctx, window, context);
        let focus = if self.config.self_conditioning {
            // F = (O1 - W)^2, elementwise squared deviation, detached.
            o1.value().zip(&window.value(), |a, b| (a - b) * (a - b))
        } else {
            Tensor::zeros(window.shape())
        };
        let o2_hat = self.phase2(ctx, window, context, focus.clone());
        TranadOutput { o1, o2, o2_hat, focus }
    }

    /// Averaged context-encoder self-attention weights for the Figure 3
    /// introspection. Returns `[b, c, c]`, or `None` for the feed-forward
    /// ablation.
    pub fn context_attention<F: Fwd>(
        &self,
        ctx: &F,
        window: &F::V,
        context: &F::V,
    ) -> Option<Tensor> {
        match &self.trunk {
            Trunk::Transformer { pos, context_encoder, .. } => {
                let dims = context.shape();
                let (b, c_len) = (dims.dim(0), dims.dim(1));
                let k = window.shape().dim(1);
                let zeros = Tensor::zeros(window.shape());
                let ctx_focus = ctx.input(zero_pad_focus(&zeros, b, c_len, k, self.dims));
                let mut ctx_in = Value::concat_last(&[context.clone(), ctx_focus]);
                if let Some(embed) = &self.embed {
                    ctx_in = embed.forward(ctx, &ctx_in);
                }
                let i1 = pos.forward(ctx, &ctx_in);
                Some(context_encoder.attention_weights(ctx, &i1, None))
            }
            Trunk::FeedForward(_) => None,
        }
    }
}

/// Places the `[b, k, m]` focus tensor into the last `k` rows of a zeroed
/// `[b, c, m]` tensor.
fn zero_pad_focus(focus: &Tensor, b: usize, c_len: usize, k: usize, m: usize) -> Tensor {
    assert!(c_len >= k, "context shorter than window");
    let mut out = Tensor::zeros([b, c_len, m]);
    for bi in 0..b {
        for ki in 0..k {
            let src = (bi * k + ki) * m;
            let dst = (bi * c_len + (c_len - k + ki)) * m;
            out.data_mut()[dst..dst + m].copy_from_slice(&focus.data()[src..src + m]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_nn::Ctx;

    fn build(dims: usize, config: TranadConfig) -> (ParamStore, TranadModel) {
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(config.seed);
        let model = TranadModel::new(&mut store, &mut init, dims, config);
        (store, model)
    }

    fn inputs(ctx: &Ctx, b: usize, k: usize, c: usize, m: usize) -> (Var, Var) {
        let w = ctx.input(Tensor::from_fn([b, k, m], |i| ((i % 17) as f64) / 17.0));
        let cx = ctx.input(Tensor::from_fn([b, c, m], |i| ((i % 13) as f64) / 13.0));
        (w, cx)
    }

    #[test]
    fn forward_shapes() {
        let cfg = TranadConfig::fast();
        let (store, model) = build(3, cfg);
        let ctx = Ctx::eval(&store);
        let (w, c) = inputs(&ctx, 4, cfg.window, cfg.context, 3);
        let out = model.forward(&ctx, &w, &c);
        assert_eq!(out.o1.shape().dims(), &[4, cfg.window, 3]);
        assert_eq!(out.o2.shape().dims(), &[4, cfg.window, 3]);
        assert_eq!(out.o2_hat.shape().dims(), &[4, cfg.window, 3]);
        assert_eq!(out.focus.shape().dims(), &[4, cfg.window, 3]);
    }

    #[test]
    fn outputs_in_unit_range() {
        // Sigmoid decoders must produce values in (0, 1) matching the
        // normalized inputs (Eq. 6).
        let cfg = TranadConfig::fast();
        let (store, model) = build(2, cfg);
        let ctx = Ctx::eval(&store);
        let (w, c) = inputs(&ctx, 2, cfg.window, cfg.context, 2);
        let out = model.forward(&ctx, &w, &c);
        for v in out.o1.value().data() {
            assert!((0.0..=1.0).contains(v));
        }
        for v in out.o2_hat.value().data() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn focus_is_squared_deviation() {
        let cfg = TranadConfig::fast();
        let (store, model) = build(1, cfg);
        let ctx = Ctx::eval(&store);
        let (w, c) = inputs(&ctx, 1, cfg.window, cfg.context, 1);
        let out = model.forward(&ctx, &w, &c);
        let o1 = out.o1.value();
        let wv = w.value();
        for i in 0..o1.numel() {
            let expect = (o1.data()[i] - wv.data()[i]).powi(2);
            assert!((out.focus.data()[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn self_conditioning_off_zeroes_focus() {
        let cfg = TranadConfig { self_conditioning: false, ..TranadConfig::fast() };
        let (store, model) = build(2, cfg);
        let ctx = Ctx::eval(&store);
        let (w, c) = inputs(&ctx, 1, cfg.window, cfg.context, 2);
        let out = model.forward(&ctx, &w, &c);
        assert!(out.focus.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn decoder2_params_disjoint_from_rest() {
        let cfg = TranadConfig::fast();
        let (store, model) = build(2, cfg);
        let d2: std::collections::HashSet<usize> =
            model.decoder2_param_ids().iter().map(|p| p.index()).collect();
        assert!(!d2.is_empty());
        assert!(d2.len() < store.len());
    }

    #[test]
    fn feed_forward_ablation_runs() {
        let cfg = TranadConfig { use_transformer: false, ..TranadConfig::fast() };
        let (store, model) = build(3, cfg);
        let ctx = Ctx::eval(&store);
        let (w, c) = inputs(&ctx, 2, cfg.window, cfg.context, 3);
        let out = model.forward(&ctx, &w, &c);
        assert_eq!(out.o2_hat.shape().dims(), &[2, cfg.window, 3]);
        assert!(model.context_attention(&ctx, &w, &c).is_none());
    }

    #[test]
    fn context_attention_shape() {
        let cfg = TranadConfig::fast();
        let (store, model) = build(2, cfg);
        let ctx = Ctx::eval(&store);
        let (w, c) = inputs(&ctx, 3, cfg.window, cfg.context, 2);
        let attn = model.context_attention(&ctx, &w, &c).unwrap();
        assert_eq!(attn.shape().dims(), &[3, cfg.context, cfg.context]);
    }

    #[test]
    fn gradients_flow_through_both_phases() {
        let cfg = TranadConfig::fast();
        let (store, model) = build(2, cfg);
        let ctx = Ctx::train(&store, 1);
        let (w, c) = inputs(&ctx, 2, cfg.window, cfg.context, 2);
        let out = model.forward(&ctx, &w, &c);
        let loss = out.o1.mse(&w).add(&out.o2_hat.mse(&w));
        loss.backward();
        assert!(ctx.grad_norm_sq() > 0.0);
        assert!(ctx
            .grads()
            .iter()
            .all(|(_, g)| g.data().iter().all(|v| v.is_finite())));
    }

    #[test]
    fn bidirectional_window_uses_future_context() {
        // With the bidirectional extension, the first window position's
        // reconstruction must depend on the last position's value.
        let cfg = TranadConfig { bidirectional: true, ..TranadConfig::fast() };
        let (store, model) = build(1, cfg);
        let ctx = Ctx::eval(&store);
        let base = Tensor::from_fn([1, cfg.window, 1], |i| (i as f64 * 0.1).sin());
        let mut changed = base.clone();
        let last = changed.numel() - 1;
        changed.data_mut()[last] += 1.0;
        let c = ctx.input(Tensor::zeros([1, cfg.context, 1]));
        let a = model
            .forward(&ctx, &ctx.input(base), &c)
            .o1
            .value();
        let b = model
            .forward(&ctx, &ctx.input(changed), &c)
            .o1
            .value();
        assert!((a.data()[0] - b.data()[0]).abs() > 1e-9, "no bidirectional flow");
    }

    #[test]
    fn causal_window_ignores_future() {
        let cfg = TranadConfig::fast();
        let (store, model) = build(1, cfg);
        let ctx = Ctx::eval(&store);
        let base = Tensor::from_fn([1, cfg.window, 1], |i| (i as f64 * 0.1).sin());
        let mut changed = base.clone();
        let last = changed.numel() - 1;
        changed.data_mut()[last] += 1.0;
        // Context identical and window-caused differences only at the tail:
        // position 0 output must not change... note the cross-attention
        // reads the *context*, which here is fixed zeros.
        let c = ctx.input(Tensor::zeros([1, cfg.context, 1]));
        let a = model.forward(&ctx, &ctx.input(base), &c).o1.value();
        let b = model.forward(&ctx, &ctx.input(changed), &c).o1.value();
        assert!((a.data()[0] - b.data()[0]).abs() < 1e-12);
    }

    #[test]
    fn zero_pad_focus_places_window_at_tail() {
        let focus = Tensor::from_fn([1, 2, 1], |i| (i + 1) as f64);
        let padded = zero_pad_focus(&focus, 1, 5, 2, 1);
        assert_eq!(padded.data(), &[0.0, 0.0, 0.0, 1.0, 2.0]);
    }
}

//! Online (streaming) inference — the deployment mode of Algorithm 2:
//! datapoints arrive one at a time, each is scored against the model using
//! only past observations, and per-dimension streaming SPOT thresholds turn
//! scores into labels on the spot.
//!
//! The streaming state is **bounded and resumable**: only the last
//! `max(window, context)` normalized rows are retained in a fixed ring
//! buffer (a 10k-point stream holds exactly as much history as a 12-point
//! one), a monotonic counter tracks the points consumed, and the whole
//! state — ring contents, counter and per-dimension SPOT tail models — can
//! be captured with [`OnlineDetector::snapshot`] and rebuilt with
//! [`OnlineDetector::restore`] so a restarted process continues with
//! bitwise-identical verdicts.

use crate::error::DetectorError;
use crate::train::TrainedTranad;
use std::time::Instant;
use tranad_evt::{PotConfig, Spot, SpotParts};
use tranad_nn::{Fwd, InferCtx, InferWorkspace};
use tranad_telemetry::Recorder;

/// The verdict for one streamed datapoint.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineVerdict {
    /// Per-dimension anomaly scores at this timestamp.
    pub scores: Vec<f64>,
    /// Per-dimension anomaly labels (`y_i` of Eq. 14).
    pub dim_labels: Vec<bool>,
    /// Timestamp label `y = ∨_i y_i`.
    pub anomalous: bool,
}

/// A full, serializable snapshot of streaming state.
///
/// Everything a restarted process needs to continue a stream exactly where
/// it left off: the buffered history rows (oldest first), the monotonic
/// point counter and each dimension's SPOT tail model. Embed it in a model
/// checkpoint with [`TrainedTranad::save_with_streaming`] or persist it on
/// its own (it implements the `tranad-json` traits).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSnapshot {
    /// Dimensionality of the stream (must match the model on restore).
    pub dims: usize,
    /// Monotonic count of datapoints consumed so far.
    pub seen: u64,
    /// Buffered normalized rows, oldest first — at most
    /// `max(window, context)` of them.
    pub rows: Vec<Vec<f64>>,
    /// Per-dimension streaming SPOT state.
    pub spots: Vec<SpotParts>,
}

tranad_json::impl_json_struct!(OnlineSnapshot { dims, seen, rows, spots });

/// Model-independent streaming state: the bounded history ring, the point
/// counter and the per-dimension SPOT thresholders.
///
/// This is the piece a serving layer owns per stream; it borrows the
/// (shared, read-only) [`TrainedTranad`] only for the duration of each
/// [`OnlineState::push`], so many streams can score against one model —
/// including in parallel, since a push only mutates its own state.
/// [`OnlineDetector`] wraps one state together with a model reference and
/// telemetry for the single-stream case.
pub struct OnlineState {
    /// Ring storage: logical order runs `start..start+len` modulo capacity.
    rows: Vec<Vec<f64>>,
    start: usize,
    /// Fixed capacity `max(window, context)` — the longest tail any forward
    /// pass reads.
    cap: usize,
    /// Monotonic count of points consumed; never decreases, unlike the ring
    /// length which saturates at `cap`.
    seen: u64,
    spots: Vec<Spot>,
    dims: usize,
    /// Reusable batch-1 staging workspace: each push fills its
    /// `[1, window, dims]` / `[1, context, dims]` stacks in place instead
    /// of rebuilding the flattened window and context from scratch. The
    /// storage is uniquely owned again by the time the next push runs (the
    /// forward pass holds its clone only transiently), so the in-place
    /// write never copies.
    stage: InferWorkspace,
}

impl OnlineState {
    /// Creates fresh streaming state; SPOT is initialized from the model's
    /// training scores. Fails with [`DetectorError::PotFitFailed`] when a
    /// dimension's training scores cannot calibrate SPOT.
    pub fn new(trained: &TrainedTranad, pot: PotConfig) -> Result<Self, DetectorError> {
        let dims = trained.model.dims();
        let config = trained.model.config();
        let mut spots = Vec::with_capacity(dims);
        for d in 0..dims {
            let calib: Vec<f64> = trained.train_scores.iter().map(|r| r[d]).collect();
            spots.push(Spot::try_init(&calib, pot).map_err(|e| DetectorError::pot(d, e))?);
        }
        let cap = config.window.max(config.context);
        Ok(OnlineState {
            rows: Vec::with_capacity(cap),
            start: 0,
            cap,
            seen: 0,
            spots,
            dims,
            stage: InferWorkspace::new(),
        })
    }

    /// Number of datapoints consumed so far (the monotonic counter — not
    /// the ring length, which is bounded by [`OnlineState::capacity`]).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Fixed ring capacity: `max(window, context)` rows.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// History rows currently resident (`<= capacity()`, always).
    pub fn buffered_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total streaming SPOT re-calibrations across all dimensions so far.
    pub fn refits(&self) -> u64 {
        self.spots.iter().map(|s| s.refits()).sum()
    }

    /// The live SPOT anomaly threshold of dimension `d` (`z_q`, which
    /// adapts as the stream evolves), or `None` for an out-of-range
    /// dimension.
    pub fn spot_threshold(&self, d: usize) -> Option<f64> {
        self.spots.get(d).map(|s| s.threshold)
    }

    /// The largest live SPOT threshold across all dimensions — the
    /// single-number "how far from alarming is this stream" summary a
    /// per-stream stats table reports.
    pub fn spot_threshold_max(&self) -> f64 {
        self.spots.iter().map(|s| s.threshold).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Consumes one raw datapoint and returns its verdict.
    ///
    /// Fails with [`DetectorError::DimensionMismatch`] when the datapoint's
    /// width does not match the model and [`DetectorError::NonFiniteInput`]
    /// when it contains NaN/±Inf; both checks run before any state is
    /// touched, so the stream continues cleanly on the next valid point.
    ///
    /// This is the composition of the split halves ([`OnlineState::ingest`],
    /// [`OnlineState::stage_tail`], a batch-1 tape-free forward, then
    /// [`OnlineState::apply_scores`]) and doubles as the per-stream
    /// reference implementation the serving engine's cross-stream batched
    /// forward is bitwise-gated against.
    pub fn push(
        &mut self,
        trained: &TrainedTranad,
        datapoint: &[f64],
    ) -> Result<OnlineVerdict, DetectorError> {
        self.ingest(trained, datapoint)?;

        // Assemble the current window and context with replication padding
        // (exactly §3.2's W_t and C_t) in the per-state staging workspace.
        let config = trained.model.config();
        let (wdst, cdst) = self.stage.stage(1, config.window, config.context, self.dims);
        fill_tail(&self.rows, self.start, wdst);
        fill_tail(&self.rows, self.start, cdst);

        // Scoring never backpropagates, so the forward pass runs tape-free:
        // plain tensor kernels over pooled buffers, no tape nodes or
        // backward closures, bitwise-identical outputs to the taped path.
        let _fwd = tranad_telemetry::span::enter("infer.forward");
        let ctx = InferCtx::new(&trained.store);
        let w = ctx.input(self.stage.window().clone());
        let c = ctx.input(self.stage.context().clone());
        let out = trained.model.forward(&ctx, &w, &c);
        drop(_fwd);
        Ok(self.apply_scores(w.data(), out.o1.data(), out.o2_hat.data()))
    }

    /// The stage-window half of a push, step 1: validates one raw
    /// datapoint, normalizes it with the *training* normalizer (Eq. 1:
    /// ranges known a-priori) and appends it to the bounded history ring —
    /// without running a forward pass. A caller that owns the forward (the
    /// serving engine stacking many streams into one batch) follows with
    /// [`OnlineState::stage_tail`] and, after the forward,
    /// [`OnlineState::apply_scores`].
    ///
    /// Validation runs before any state is touched, exactly as in
    /// [`OnlineState::push`]. In steady state (ring full) this allocates
    /// nothing: the normalized row overwrites the evicted one in place.
    pub fn ingest(
        &mut self,
        trained: &TrainedTranad,
        datapoint: &[f64],
    ) -> Result<(), DetectorError> {
        if datapoint.len() != self.dims {
            return Err(DetectorError::DimensionMismatch {
                expected: self.dims,
                got: datapoint.len(),
            });
        }
        if let Some(dim) = datapoint.iter().position(|v| !v.is_finite()) {
            return Err(DetectorError::NonFiniteInput { dim });
        }
        if self.rows.len() < self.cap {
            let mut row = vec![0.0; self.dims];
            trained.normalizer.transform_row_into(datapoint, &mut row);
            self.rows.push(row);
        } else {
            trained.normalizer.transform_row_into(datapoint, &mut self.rows[self.start]);
            self.start = (self.start + 1) % self.cap;
        }
        self.seen += 1;
        Ok(())
    }

    /// The stage-window half of a push, step 2: writes the
    /// replication-padded window and context tails (§3.2's `W_t` and `C_t`
    /// — exactly what the batch-1 forward of [`OnlineState::push`]
    /// consumes) into the caller's flattened `[window, dims]` /
    /// `[context, dims]` slices, typically one row of a cross-stream batch
    /// stack. Call after [`OnlineState::ingest`]; panics if no point was
    /// ever ingested.
    pub fn stage_tail(&self, wdst: &mut [f64], cdst: &mut [f64]) {
        assert!(!self.rows.is_empty(), "stage_tail before any ingest");
        fill_tail(&self.rows, self.start, wdst);
        fill_tail(&self.rows, self.start, cdst);
    }

    /// The apply half of a push: turns one stream's row of a (possibly
    /// cross-stream) forward output into per-dimension scores and steps
    /// the streaming SPOT thresholders. `w_row`, `o1_row` and `o2_hat_row`
    /// are this stream's flattened `[window, dims]` slices of the model
    /// input and outputs. The arithmetic is shared with
    /// [`OnlineState::push`], so a caller that batches `n` streams into
    /// one `[n, window, dims]` forward and applies each row gets
    /// bitwise-identical verdicts to `n` separate pushes.
    pub fn apply_scores(
        &mut self,
        w_row: &[f64],
        o1_row: &[f64],
        o2_hat_row: &[f64],
    ) -> OnlineVerdict {
        let base = w_row.len() - self.dims;
        let scores: Vec<f64> = (0..self.dims)
            .map(|d| {
                let target = w_row[base + d];
                let e1 = o1_row[base + d] - target;
                let e2 = o2_hat_row[base + d] - target;
                0.5 * e1 * e1 + 0.5 * e2 * e2
            })
            .collect();
        let dim_labels: Vec<bool> = scores
            .iter()
            .zip(self.spots.iter_mut())
            .map(|(&s, spot)| spot.step(s))
            .collect();
        let anomalous = dim_labels.iter().any(|&b| b);
        OnlineVerdict { scores, dim_labels, anomalous }
    }

    /// Captures the complete streaming state for checkpointing.
    pub fn snapshot(&self) -> OnlineSnapshot {
        OnlineSnapshot {
            dims: self.dims,
            seen: self.seen,
            rows: (0..self.rows.len()).map(|i| self.logical(i).to_vec()).collect(),
            spots: self.spots.iter().map(Spot::to_parts).collect(),
        }
    }

    /// Rebuilds streaming state from a snapshot taken against the same
    /// model. A restored state's future verdicts are bitwise-identical to
    /// an uninterrupted run's. Validates the snapshot against the model
    /// (dimensionality, row widths, ring bound, SPOT-state consistency) so
    /// a corrupt or mismatched checkpoint fails loudly.
    pub fn restore(trained: &TrainedTranad, snap: &OnlineSnapshot) -> Result<Self, DetectorError> {
        let dims = trained.model.dims();
        if snap.dims != dims {
            return Err(DetectorError::DimensionMismatch { expected: dims, got: snap.dims });
        }
        let config = trained.model.config();
        let cap = config.window.max(config.context);
        if snap.rows.len() > cap {
            return Err(DetectorError::Failed(format!(
                "snapshot buffers {} rows but the model's ring holds at most {cap}",
                snap.rows.len()
            )));
        }
        if snap.seen < snap.rows.len() as u64 {
            return Err(DetectorError::Failed(format!(
                "snapshot counter {} is smaller than its {} buffered rows",
                snap.seen,
                snap.rows.len()
            )));
        }
        for row in &snap.rows {
            if row.len() != dims {
                return Err(DetectorError::DimensionMismatch { expected: dims, got: row.len() });
            }
            if let Some(dim) = row.iter().position(|v| !v.is_finite()) {
                return Err(DetectorError::NonFiniteInput { dim });
            }
        }
        if snap.spots.len() != dims {
            return Err(DetectorError::Failed(format!(
                "snapshot has {} SPOT states for a {dims}-dimensional model",
                snap.spots.len()
            )));
        }
        let mut spots = Vec::with_capacity(dims);
        for (d, parts) in snap.spots.iter().enumerate() {
            spots.push(Spot::from_parts(parts.clone()).map_err(|e| DetectorError::pot(d, e))?);
        }
        let mut rows = Vec::with_capacity(cap);
        rows.extend(snap.rows.iter().cloned());
        Ok(OnlineState {
            rows,
            start: 0,
            cap,
            seen: snap.seen,
            spots,
            dims,
            stage: InferWorkspace::new(),
        })
    }

    /// The `i`-th buffered row in logical order (0 = oldest).
    fn logical(&self, i: usize) -> &[f64] {
        &self.rows[(self.start + i) % self.rows.len()]
    }

}

/// Copies the last `n = dst.len() / dims` logical ring rows (oldest first,
/// ring order `start..start+len` mod len), replication-padded at the front
/// with the oldest available row, into `dst`. `n <= capacity()` always
/// holds (it is the window or context length), so the ring never evicts a
/// row a forward pass still needs. A free function over the ring fields so
/// the caller can fill a staging tensor it also owns.
fn fill_tail(rows: &[Vec<f64>], start: usize, dst: &mut [f64]) {
    let have = rows.len();
    let dims = rows[0].len();
    let n = dst.len() / dims;
    for (i, slot) in dst.chunks_exact_mut(dims).enumerate() {
        let idx = (have + i).saturating_sub(n);
        slot.copy_from_slice(&rows[(start + idx.min(have - 1)) % have]);
    }
}

/// A streaming anomaly detector wrapping a trained TranAD model.
///
/// Keeps a replication-padded bounded ring of the most recent context and a
/// per-dimension [`Spot`] thresholder (see [`OnlineState`]). Feed raw
/// (unnormalized) datapoints with [`OnlineDetector::push`]; checkpoint with
/// [`OnlineDetector::snapshot`] and resume with [`OnlineDetector::restore`].
pub struct OnlineDetector<'a> {
    trained: &'a TrainedTranad,
    state: OnlineState,
    rec: Recorder,
}

impl<'a> OnlineDetector<'a> {
    /// Creates a streaming detector; SPOT is initialized from the model's
    /// training scores. Fails with [`DetectorError::PotFitFailed`] when a
    /// dimension's training scores cannot calibrate SPOT. Traces to the
    /// process-global recorder.
    pub fn new(trained: &'a TrainedTranad, pot: PotConfig) -> Result<Self, DetectorError> {
        Self::with_recorder(trained, pot, tranad_telemetry::global().clone())
    }

    /// [`OnlineDetector::new`] with an explicit recorder: every `push`
    /// observes its latency on the `online.push_us` histogram, and
    /// [`OnlineDetector::flush_telemetry`] reports total re-calibrations.
    pub fn with_recorder(
        trained: &'a TrainedTranad,
        pot: PotConfig,
        rec: Recorder,
    ) -> Result<Self, DetectorError> {
        Ok(OnlineDetector { trained, state: OnlineState::new(trained, pot)?, rec })
    }

    /// Resumes a detector from a [`snapshot`](OnlineDetector::snapshot)
    /// taken against the same model. The restored detector's verdicts are
    /// bitwise-identical to those of an uninterrupted run. Traces to the
    /// process-global recorder.
    pub fn restore(trained: &'a TrainedTranad, snap: &OnlineSnapshot) -> Result<Self, DetectorError> {
        Self::restore_with_recorder(trained, snap, tranad_telemetry::global().clone())
    }

    /// [`OnlineDetector::restore`] with an explicit recorder.
    pub fn restore_with_recorder(
        trained: &'a TrainedTranad,
        snap: &OnlineSnapshot,
        rec: Recorder,
    ) -> Result<Self, DetectorError> {
        Ok(OnlineDetector { trained, state: OnlineState::restore(trained, snap)?, rec })
    }

    /// Number of datapoints consumed so far (the monotonic point counter;
    /// resident history stays bounded at [`OnlineDetector::capacity`]).
    pub fn len(&self) -> usize {
        self.state.seen() as usize
    }

    /// True if no datapoints were consumed yet.
    pub fn is_empty(&self) -> bool {
        self.state.seen() == 0
    }

    /// Fixed history capacity: `max(window, context)` rows.
    pub fn capacity(&self) -> usize {
        self.state.capacity()
    }

    /// History rows currently resident (`<= capacity()`, always — the
    /// memory-bound guarantee for long streams).
    pub fn buffered_rows(&self) -> usize {
        self.state.buffered_rows()
    }

    /// Total streaming SPOT re-calibrations across all dimensions so far.
    pub fn refits(&self) -> u64 {
        self.state.refits()
    }

    /// Captures the complete streaming state (ring contents, point counter,
    /// SPOT tail models) for checkpointing.
    pub fn snapshot(&self) -> OnlineSnapshot {
        self.state.snapshot()
    }

    /// Emits an `online.stream` summary event (points consumed, total SPOT
    /// re-calibrations) on the detector's recorder.
    pub fn flush_telemetry(&self) {
        let rec = self.rec.clone();
        rec.emit("online.stream", |e| {
            e.u64("points", self.state.seen()).u64("refits", self.refits());
        });
    }

    /// Consumes one raw datapoint and returns its verdict. Fails with
    /// [`DetectorError::DimensionMismatch`] when the datapoint's width does
    /// not match the model and [`DetectorError::NonFiniteInput`] for
    /// NaN/±Inf values (the state is untouched, so the next valid point
    /// proceeds normally).
    pub fn push(&mut self, datapoint: &[f64]) -> Result<OnlineVerdict, DetectorError> {
        let _scope = self.rec.span_scope();
        let _span = tranad_telemetry::span::enter("online.push");
        let started = self.rec.enabled().then(Instant::now);
        let verdict = self.state.push(self.trained, datapoint)?;
        if let Some(started) = started {
            self.rec.observe("online.push_us", 1e6 * started.elapsed().as_secs_f64());
        }
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TranadConfig;
    use crate::train::train;
    use tranad_data::{SignalRng, TimeSeries};

    fn trained_model() -> TrainedTranad {
        let mut rng = SignalRng::new(11);
        let col: Vec<f64> = (0..500)
            .map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal())
            .collect();
        let series = TimeSeries::from_columns(&[col]);
        let config = TranadConfig {
            epochs: 3,
            window: 6,
            context: 12,
            ff_hidden: 16,
            dropout: 0.0,
            ..TranadConfig::default()
        };
        train(&series, config).unwrap().0
    }

    fn noisy_sine(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = SignalRng::new(seed);
        (0..len).map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal()).collect()
    }

    #[test]
    fn online_matches_batch_scoring_at_tail() {
        let trained = trained_model();
        let col = noisy_sine(60, 12);
        let series = TimeSeries::from_columns(std::slice::from_ref(&col));
        let batch_scores = trained.score_series(&series);

        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        for (t, &v) in col.iter().enumerate() {
            let verdict = online.push(&[v]).unwrap();
            // The online score must equal the batch score at every index
            // where the context window is identical (all of them, since
            // both use the same replication padding).
            assert!(
                (verdict.scores[0] - batch_scores[t][0]).abs() < 1e-9,
                "t={t}: online {} vs batch {}",
                verdict.scores[0],
                batch_scores[t][0]
            );
        }
    }

    #[test]
    fn online_flags_injected_spike() {
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        let mut rng = SignalRng::new(13);
        let mut flagged_normal = 0;
        for t in 0..80 {
            let v = (t as f64 / 9.0).sin() + 0.05 * rng.normal();
            if online.push(&[v]).unwrap().anomalous {
                flagged_normal += 1;
            }
        }
        assert!(flagged_normal <= 2, "false alarms on normal stream: {flagged_normal}");
        let verdict = online.push(&[9.0]).unwrap(); // extreme outlier
        assert!(verdict.anomalous);
        assert!(verdict.dim_labels[0]);
    }

    #[test]
    fn push_checks_dimensionality() {
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        let err = online.push(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err, DetectorError::DimensionMismatch { expected: 1, got: 2 });
    }

    #[test]
    fn non_finite_input_is_rejected_without_poisoning_state() {
        let trained = trained_model();
        let mut clean = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        let mut poked = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        let stream = noisy_sine(40, 14);
        for (t, &v) in stream.iter().enumerate() {
            // Interleave invalid points into one detector only: they must
            // be rejected up front and leave no trace in its state.
            if t % 7 == 3 {
                assert_eq!(
                    poked.push(&[f64::NAN]).unwrap_err(),
                    DetectorError::NonFiniteInput { dim: 0 }
                );
                assert_eq!(
                    poked.push(&[f64::INFINITY]).unwrap_err(),
                    DetectorError::NonFiniteInput { dim: 0 }
                );
            }
            let a = clean.push(&[v]).unwrap();
            let b = poked.push(&[v]).unwrap();
            assert_eq!(a, b, "t={t}: rejected inputs perturbed the stream");
        }
        assert_eq!(clean.len(), poked.len(), "rejected points must not count as consumed");
    }

    #[test]
    fn long_stream_history_is_bounded_and_scores_match_unbounded_tail() {
        let trained = trained_model();
        let cap = trained.model.config().window.max(trained.model.config().context);
        let stream = noisy_sine(10_000, 15);

        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        assert_eq!(online.capacity(), cap);
        let mut tail_scores = Vec::new();
        for (t, &v) in stream.iter().enumerate() {
            let verdict = online.push(&[v]).unwrap();
            // The memory bound: resident history never exceeds
            // max(window, context) rows no matter how long the stream runs.
            assert!(
                online.buffered_rows() <= cap,
                "t={t}: {} resident rows exceeds the {cap}-row bound",
                online.buffered_rows()
            );
            if t >= stream.len() - 100 {
                tail_scores.push(verdict.scores[0]);
            }
        }
        assert_eq!(online.len(), stream.len());
        assert_eq!(online.buffered_rows(), cap);

        // Tail-equivalence with unbounded history: scores depend only on the
        // last `cap` rows, so a fresh detector fed just enough leading
        // context produces bitwise-identical scores — exactly what the
        // unbounded pre-fix implementation computed at the tail.
        let mut reference = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        let offset = stream.len() - 100 - cap;
        let mut ref_scores = Vec::new();
        for (i, &v) in stream[offset..].iter().enumerate() {
            let verdict = reference.push(&[v]).unwrap();
            if i >= cap {
                ref_scores.push(verdict.scores[0]);
            }
        }
        assert_eq!(tail_scores.len(), ref_scores.len());
        for (i, (a, b)) in tail_scores.iter().zip(&ref_scores).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "tail score {i} diverged");
        }
    }

    #[test]
    fn snapshot_restore_push_is_bitwise_identical() {
        let trained = trained_model();
        let stream = noisy_sine(80, 16);
        let (head, tail) = stream.split_at(35);

        let mut uninterrupted = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        for &v in head {
            uninterrupted.push(&[v]).unwrap();
        }
        let snap = uninterrupted.snapshot();
        assert_eq!(snap.seen, head.len() as u64);

        let mut restored = OnlineDetector::restore(&trained, &snap).unwrap();
        assert_eq!(restored.len(), head.len());
        for (t, &v) in tail.iter().enumerate() {
            let a = uninterrupted.push(&[v]).unwrap();
            let b = restored.push(&[v]).unwrap();
            assert_eq!(a.dim_labels, b.dim_labels, "t={t}: labels diverged after restore");
            for (d, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "t={t} dim {d}: scores diverged");
            }
        }
        assert_eq!(uninterrupted.refits(), restored.refits());
    }

    #[test]
    fn snapshot_json_roundtrip_preserves_state() {
        use tranad_json::{FromJson, ToJson};
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        for &v in &noisy_sine(25, 17) {
            online.push(&[v]).unwrap();
        }
        let snap = online.snapshot();
        let text = snap.to_json().to_string();
        let back = OnlineSnapshot::from_json(&tranad_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn restore_rejects_mismatched_or_corrupt_snapshots() {
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        for &v in &noisy_sine(20, 18) {
            online.push(&[v]).unwrap();
        }
        let good = online.snapshot();

        let mut bad = good.clone();
        bad.dims = 3;
        assert!(OnlineDetector::restore(&trained, &bad).is_err());

        let mut bad = good.clone();
        bad.rows.extend(vec![vec![0.0]; bad.rows.len()]); // overflows the ring bound
        assert!(OnlineDetector::restore(&trained, &bad).is_err());

        let mut bad = good.clone();
        bad.seen = 1; // smaller than the buffered row count
        assert!(OnlineDetector::restore(&trained, &bad).is_err());

        let mut bad = good.clone();
        bad.rows[0][0] = f64::NAN;
        assert!(OnlineDetector::restore(&trained, &bad).is_err());

        let mut bad = good.clone();
        bad.spots.clear();
        assert!(OnlineDetector::restore(&trained, &bad).is_err());

        let mut bad = good;
        bad.spots[0].refit_every = 0;
        assert!(matches!(
            OnlineDetector::restore(&trained, &bad),
            Err(DetectorError::PotFitFailed { dim: 0, .. })
        ));
    }

    #[test]
    fn push_latency_recorded() {
        use tranad_telemetry::{MemorySink, Recorder};
        let trained = trained_model();
        let sink = std::sync::Arc::new(MemorySink::new(64));
        let rec = Recorder::with_sink(sink.clone());
        let mut online =
            OnlineDetector::with_recorder(&trained, PotConfig::default(), rec.clone()).unwrap();
        online.push(&[0.5]).unwrap();
        online.push(&[0.6]).unwrap();
        online.flush_telemetry();
        rec.flush_metrics();
        assert_eq!(sink.named("online.stream").len(), 1);
        let snap = rec.snapshot();
        let h = snap.histogram("online.push_us").expect("latency histogram");
        assert_eq!(h.count, 2);
    }
}

//! Online (streaming) inference — the deployment mode of Algorithm 2:
//! datapoints arrive one at a time, each is scored against the model using
//! only past observations, and per-dimension streaming SPOT thresholds turn
//! scores into labels on the spot.

use crate::train::TrainedTranad;
use tranad_data::TimeSeries;
use tranad_evt::{PotConfig, Spot};
use tranad_nn::Ctx;
use tranad_tensor::Tensor;

/// The verdict for one streamed datapoint.
#[derive(Debug, Clone)]
pub struct OnlineVerdict {
    /// Per-dimension anomaly scores at this timestamp.
    pub scores: Vec<f64>,
    /// Per-dimension anomaly labels (`y_i` of Eq. 14).
    pub dim_labels: Vec<bool>,
    /// Timestamp label `y = ∨_i y_i`.
    pub anomalous: bool,
}

/// A streaming anomaly detector wrapping a trained TranAD model.
///
/// Keeps a replication-padded ring buffer of the most recent context and a
/// per-dimension [`Spot`] thresholder. Feed raw (unnormalized) datapoints
/// with [`OnlineDetector::push`].
pub struct OnlineDetector<'a> {
    trained: &'a TrainedTranad,
    history: Vec<Vec<f64>>, // normalized rows, newest last
    spots: Vec<Spot>,
    dims: usize,
}

impl<'a> OnlineDetector<'a> {
    /// Creates a streaming detector; SPOT is initialized from the model's
    /// training scores.
    pub fn new(trained: &'a TrainedTranad, pot: PotConfig) -> Self {
        let dims = trained.model.dims();
        let spots = (0..dims)
            .map(|d| {
                let calib: Vec<f64> = trained.train_scores.iter().map(|r| r[d]).collect();
                Spot::init(&calib, pot)
            })
            .collect();
        OnlineDetector { trained, history: Vec::new(), spots, dims }
    }

    /// Number of datapoints consumed so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no datapoints were consumed yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Consumes one raw datapoint and returns its verdict.
    pub fn push(&mut self, datapoint: &[f64]) -> OnlineVerdict {
        assert_eq!(datapoint.len(), self.dims, "datapoint dimensionality");
        // Normalize with the *training* normalizer (Eq. 1: ranges known
        // a-priori), then append to history.
        let row = TimeSeries::from_rows(datapoint.to_vec(), 1, self.dims);
        let normalized = self.trained.normalizer.transform(&row);
        self.history.push(normalized.row(0).to_vec());

        let config = *self.trained.model.config();
        let k = config.window;
        let c_len = config.context;

        // Assemble the current window and context with replication padding
        // (exactly §3.2's W_t and C_t).
        let window = self.padded_tail(k);
        let context = self.padded_tail(c_len);

        let ctx = Ctx::eval(&self.trained.store);
        let w = ctx.input(Tensor::from_vec(window, [1, k, self.dims]));
        let c = ctx.input(Tensor::from_vec(context, [1, c_len, self.dims]));
        let out = self.trained.model.forward(&ctx, &w, &c);
        let o1 = out.o1.value();
        let o2h = out.o2_hat.value();
        let wv = w.value();

        let base = (k - 1) * self.dims;
        let scores: Vec<f64> = (0..self.dims)
            .map(|d| {
                let target = wv.data()[base + d];
                let e1 = o1.data()[base + d] - target;
                let e2 = o2h.data()[base + d] - target;
                0.5 * e1 * e1 + 0.5 * e2 * e2
            })
            .collect();
        let dim_labels: Vec<bool> = scores
            .iter()
            .zip(self.spots.iter_mut())
            .map(|(&s, spot)| spot.step(s))
            .collect();
        let anomalous = dim_labels.iter().any(|&b| b);
        OnlineVerdict { scores, dim_labels, anomalous }
    }

    /// The last `n` history rows flattened, replication-padded at the front
    /// with the oldest available row.
    fn padded_tail(&self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n * self.dims);
        let have = self.history.len();
        for i in 0..n {
            let idx = (have + i).saturating_sub(n);
            out.extend_from_slice(&self.history[idx.min(have - 1)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TranadConfig;
    use crate::train::train;
    use tranad_data::SignalRng;

    fn trained_model() -> TrainedTranad {
        let mut rng = SignalRng::new(11);
        let col: Vec<f64> = (0..500)
            .map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal())
            .collect();
        let series = TimeSeries::from_columns(&[col]);
        let config = TranadConfig {
            epochs: 3,
            window: 6,
            context: 12,
            ff_hidden: 16,
            dropout: 0.0,
            ..TranadConfig::default()
        };
        train(&series, config).0
    }

    #[test]
    fn online_matches_batch_scoring_at_tail() {
        let trained = trained_model();
        let mut rng = SignalRng::new(12);
        let col: Vec<f64> = (0..60)
            .map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal())
            .collect();
        let series = TimeSeries::from_columns(std::slice::from_ref(&col));
        let batch_scores = trained.score_series(&series);

        let mut online = OnlineDetector::new(&trained, PotConfig::default());
        for (t, &v) in col.iter().enumerate() {
            let verdict = online.push(&[v]);
            // The online score must equal the batch score at every index
            // where the context window is identical (all of them, since
            // both use the same replication padding).
            assert!(
                (verdict.scores[0] - batch_scores[t][0]).abs() < 1e-9,
                "t={t}: online {} vs batch {}",
                verdict.scores[0],
                batch_scores[t][0]
            );
        }
    }

    #[test]
    fn online_flags_injected_spike() {
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default());
        let mut rng = SignalRng::new(13);
        let mut flagged_normal = 0;
        for t in 0..80 {
            let v = (t as f64 / 9.0).sin() + 0.05 * rng.normal();
            if online.push(&[v]).anomalous {
                flagged_normal += 1;
            }
        }
        assert!(flagged_normal <= 2, "false alarms on normal stream: {flagged_normal}");
        let verdict = online.push(&[9.0]); // extreme outlier
        assert!(verdict.anomalous);
        assert!(verdict.dim_labels[0]);
    }

    #[test]
    fn push_checks_dimensionality() {
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            online.push(&[1.0, 2.0])
        }));
        assert!(result.is_err());
    }
}

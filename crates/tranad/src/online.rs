//! Online (streaming) inference — the deployment mode of Algorithm 2:
//! datapoints arrive one at a time, each is scored against the model using
//! only past observations, and per-dimension streaming SPOT thresholds turn
//! scores into labels on the spot.

use crate::error::DetectorError;
use crate::train::TrainedTranad;
use std::time::Instant;
use tranad_data::TimeSeries;
use tranad_evt::{PotConfig, Spot};
use tranad_nn::Ctx;
use tranad_telemetry::Recorder;
use tranad_tensor::Tensor;

/// The verdict for one streamed datapoint.
#[derive(Debug, Clone)]
pub struct OnlineVerdict {
    /// Per-dimension anomaly scores at this timestamp.
    pub scores: Vec<f64>,
    /// Per-dimension anomaly labels (`y_i` of Eq. 14).
    pub dim_labels: Vec<bool>,
    /// Timestamp label `y = ∨_i y_i`.
    pub anomalous: bool,
}

/// A streaming anomaly detector wrapping a trained TranAD model.
///
/// Keeps a replication-padded ring buffer of the most recent context and a
/// per-dimension [`Spot`] thresholder. Feed raw (unnormalized) datapoints
/// with [`OnlineDetector::push`].
pub struct OnlineDetector<'a> {
    trained: &'a TrainedTranad,
    history: Vec<Vec<f64>>, // normalized rows, newest last
    spots: Vec<Spot>,
    dims: usize,
    rec: Recorder,
}

impl<'a> OnlineDetector<'a> {
    /// Creates a streaming detector; SPOT is initialized from the model's
    /// training scores. Fails with [`DetectorError::PotFitFailed`] when a
    /// dimension's training scores cannot calibrate SPOT. Traces to the
    /// process-global recorder.
    pub fn new(trained: &'a TrainedTranad, pot: PotConfig) -> Result<Self, DetectorError> {
        Self::with_recorder(trained, pot, tranad_telemetry::global().clone())
    }

    /// [`OnlineDetector::new`] with an explicit recorder: every `push`
    /// observes its latency on the `online.push_us` histogram, and
    /// [`OnlineDetector::flush_telemetry`] reports total re-calibrations.
    pub fn with_recorder(
        trained: &'a TrainedTranad,
        pot: PotConfig,
        rec: Recorder,
    ) -> Result<Self, DetectorError> {
        let dims = trained.model.dims();
        let mut spots = Vec::with_capacity(dims);
        for d in 0..dims {
            let calib: Vec<f64> = trained.train_scores.iter().map(|r| r[d]).collect();
            spots.push(Spot::try_init(&calib, pot).map_err(|e| DetectorError::pot(d, e))?);
        }
        Ok(OnlineDetector { trained, history: Vec::new(), spots, dims, rec })
    }

    /// Number of datapoints consumed so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no datapoints were consumed yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Total streaming SPOT re-calibrations across all dimensions so far.
    pub fn refits(&self) -> u64 {
        self.spots.iter().map(|s| s.refits()).sum()
    }

    /// Emits an `online.stream` summary event (points consumed, total SPOT
    /// re-calibrations) on the detector's recorder.
    pub fn flush_telemetry(&self) {
        let rec = self.rec.clone();
        rec.emit("online.stream", |e| {
            e.u64("points", self.history.len() as u64).u64("refits", self.refits());
        });
    }

    /// Consumes one raw datapoint and returns its verdict. Fails with
    /// [`DetectorError::DimensionMismatch`] when the datapoint's width does
    /// not match the model.
    pub fn push(&mut self, datapoint: &[f64]) -> Result<OnlineVerdict, DetectorError> {
        if datapoint.len() != self.dims {
            return Err(DetectorError::DimensionMismatch {
                expected: self.dims,
                got: datapoint.len(),
            });
        }
        let _scope = self.rec.span_scope();
        let _span = tranad_telemetry::span::enter("online.push");
        let started = self.rec.enabled().then(Instant::now);
        // Normalize with the *training* normalizer (Eq. 1: ranges known
        // a-priori), then append to history.
        let row = TimeSeries::from_rows(datapoint.to_vec(), 1, self.dims);
        let normalized = self.trained.normalizer.transform(&row);
        self.history.push(normalized.row(0).to_vec());

        let config = *self.trained.model.config();
        let k = config.window;
        let c_len = config.context;

        // Assemble the current window and context with replication padding
        // (exactly §3.2's W_t and C_t).
        let window = self.padded_tail(k);
        let context = self.padded_tail(c_len);

        let ctx = Ctx::eval(&self.trained.store);
        let w = ctx.input(Tensor::from_vec(window, [1, k, self.dims]));
        let c = ctx.input(Tensor::from_vec(context, [1, c_len, self.dims]));
        let out = self.trained.model.forward(&ctx, &w, &c);
        let o1 = out.o1.value();
        let o2h = out.o2_hat.value();
        let wv = w.value();

        let base = (k - 1) * self.dims;
        let scores: Vec<f64> = (0..self.dims)
            .map(|d| {
                let target = wv.data()[base + d];
                let e1 = o1.data()[base + d] - target;
                let e2 = o2h.data()[base + d] - target;
                0.5 * e1 * e1 + 0.5 * e2 * e2
            })
            .collect();
        let dim_labels: Vec<bool> = scores
            .iter()
            .zip(self.spots.iter_mut())
            .map(|(&s, spot)| spot.step(s))
            .collect();
        let anomalous = dim_labels.iter().any(|&b| b);
        if let Some(started) = started {
            self.rec.observe("online.push_us", 1e6 * started.elapsed().as_secs_f64());
        }
        Ok(OnlineVerdict { scores, dim_labels, anomalous })
    }

    /// The last `n` history rows flattened, replication-padded at the front
    /// with the oldest available row.
    fn padded_tail(&self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n * self.dims);
        let have = self.history.len();
        for i in 0..n {
            let idx = (have + i).saturating_sub(n);
            out.extend_from_slice(&self.history[idx.min(have - 1)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TranadConfig;
    use crate::train::train;
    use tranad_data::SignalRng;

    fn trained_model() -> TrainedTranad {
        let mut rng = SignalRng::new(11);
        let col: Vec<f64> = (0..500)
            .map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal())
            .collect();
        let series = TimeSeries::from_columns(&[col]);
        let config = TranadConfig {
            epochs: 3,
            window: 6,
            context: 12,
            ff_hidden: 16,
            dropout: 0.0,
            ..TranadConfig::default()
        };
        train(&series, config).unwrap().0
    }

    #[test]
    fn online_matches_batch_scoring_at_tail() {
        let trained = trained_model();
        let mut rng = SignalRng::new(12);
        let col: Vec<f64> = (0..60)
            .map(|t| (t as f64 / 9.0).sin() + 0.05 * rng.normal())
            .collect();
        let series = TimeSeries::from_columns(std::slice::from_ref(&col));
        let batch_scores = trained.score_series(&series);

        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        for (t, &v) in col.iter().enumerate() {
            let verdict = online.push(&[v]).unwrap();
            // The online score must equal the batch score at every index
            // where the context window is identical (all of them, since
            // both use the same replication padding).
            assert!(
                (verdict.scores[0] - batch_scores[t][0]).abs() < 1e-9,
                "t={t}: online {} vs batch {}",
                verdict.scores[0],
                batch_scores[t][0]
            );
        }
    }

    #[test]
    fn online_flags_injected_spike() {
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        let mut rng = SignalRng::new(13);
        let mut flagged_normal = 0;
        for t in 0..80 {
            let v = (t as f64 / 9.0).sin() + 0.05 * rng.normal();
            if online.push(&[v]).unwrap().anomalous {
                flagged_normal += 1;
            }
        }
        assert!(flagged_normal <= 2, "false alarms on normal stream: {flagged_normal}");
        let verdict = online.push(&[9.0]).unwrap(); // extreme outlier
        assert!(verdict.anomalous);
        assert!(verdict.dim_labels[0]);
    }

    #[test]
    fn push_checks_dimensionality() {
        let trained = trained_model();
        let mut online = OnlineDetector::new(&trained, PotConfig::default()).unwrap();
        let err = online.push(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err, DetectorError::DimensionMismatch { expected: 1, got: 2 });
    }

    #[test]
    fn push_latency_recorded() {
        use tranad_telemetry::{MemorySink, Recorder};
        let trained = trained_model();
        let sink = std::sync::Arc::new(MemorySink::new(64));
        let rec = Recorder::with_sink(sink.clone());
        let mut online =
            OnlineDetector::with_recorder(&trained, PotConfig::default(), rec.clone()).unwrap();
        online.push(&[0.5]).unwrap();
        online.push(&[0.6]).unwrap();
        online.flush_telemetry();
        rec.flush_metrics();
        assert_eq!(sink.named("online.stream").len(), 1);
        let snap = rec.snapshot();
        let h = snap.histogram("online.push_us").expect("latency histogram");
        assert_eq!(h.count, 2);
    }
}

//! # tranad
//!
//! A from-scratch Rust implementation of **TranAD** (Tuli, Casale,
//! Jennings — VLDB 2022): deep transformer networks for anomaly detection
//! and diagnosis in multivariate time series.
//!
//! The model (Figure 1 of the paper) encodes the sequence context and the
//! current window with transformer encoders, reconstructs the window with
//! two decoders, and trains them adversarially in two phases with
//! focus-score self-conditioning (Algorithm 1). At test time, POT
//! thresholding turns reconstruction deviations into per-dimension anomaly
//! labels (Algorithm 2).
//!
//! ```
//! use tranad::{train, PotConfig, TranadConfig};
//! use tranad_data::TimeSeries;
//!
//! // A short sine-wave series; anything implementing the data layout works.
//! let col: Vec<f64> = (0..200).map(|t| (t as f64 / 8.0).sin()).collect();
//! let series = TimeSeries::from_columns(&[col]);
//!
//! let config = TranadConfig::builder()
//!     .epochs(2).window(6).context(12).ff_hidden(8)
//!     .build().unwrap();
//! let (detector, report) = train(&series, config).unwrap();
//! assert!(report.epochs_run >= 1);
//!
//! let detection = detector.detect(&series, PotConfig::default()).unwrap();
//! assert_eq!(detection.labels.len(), series.len());
//! ```
//!
//! Every pipeline stage is instrumented: set `TRANAD_TRACE=/path/trace.jsonl`
//! (or pass a [`tranad_telemetry::Recorder`] to the `*_with` variants) to
//! stream per-epoch losses, POT calibration details, buffer-pool stats and
//! more as JSON lines. With no sink configured the instrumentation costs
//! zero allocations per training step.

pub mod ablation;
pub mod config;
pub mod detect;
pub mod error;
pub mod introspect;
pub mod model;
pub mod online;
pub mod persist;
pub mod train;

pub use ablation::Ablation;
pub use config::{TranadConfig, TranadConfigBuilder};
pub use detect::{
    detect_aggregate, detect_aggregate_with, detect_from_scores, detect_from_scores_with,
    Detection,
};
pub use error::DetectorError;
pub use introspect::Introspection;
pub use model::{TranadModel, TranadOutput};
pub use online::{OnlineDetector, OnlineSnapshot, OnlineState, OnlineVerdict};
pub use persist::{atomic_write, PersistError};
pub use train::{train, train_with, TrainReport, TrainedTranad};

// Re-export the POT configuration: it is part of the detection API surface.
pub use tranad_evt::PotConfig;

//! # tranad
//!
//! A from-scratch Rust implementation of **TranAD** (Tuli, Casale,
//! Jennings — VLDB 2022): deep transformer networks for anomaly detection
//! and diagnosis in multivariate time series.
//!
//! The model (Figure 1 of the paper) encodes the sequence context and the
//! current window with transformer encoders, reconstructs the window with
//! two decoders, and trains them adversarially in two phases with
//! focus-score self-conditioning (Algorithm 1). At test time, POT
//! thresholding turns reconstruction deviations into per-dimension anomaly
//! labels (Algorithm 2).
//!
//! ```
//! use tranad::{train, PotConfig, TranadConfig};
//! use tranad_data::TimeSeries;
//!
//! // A short sine-wave series; anything implementing the data layout works.
//! let col: Vec<f64> = (0..200).map(|t| (t as f64 / 8.0).sin()).collect();
//! let series = TimeSeries::from_columns(&[col]);
//!
//! let config = TranadConfig { epochs: 2, window: 6, context: 12, ff_hidden: 8,
//!                             ..TranadConfig::default() };
//! let (detector, report) = train(&series, config);
//! assert!(report.epochs_run >= 1);
//!
//! let detection = detector.detect(&series, PotConfig::default());
//! assert_eq!(detection.labels.len(), series.len());
//! ```

pub mod ablation;
pub mod config;
pub mod detect;
pub mod introspect;
pub mod model;
pub mod online;
pub mod persist;
pub mod train;

pub use ablation::Ablation;
pub use config::TranadConfig;
pub use detect::{detect_aggregate, detect_from_scores, Detection};
pub use introspect::Introspection;
pub use model::{TranadModel, TranadOutput};
pub use online::{OnlineDetector, OnlineVerdict};
pub use persist::PersistError;
pub use train::{train, TrainReport, TrainedTranad};

// Re-export the POT configuration: it is part of the detection API surface.
pub use tranad_evt::PotConfig;

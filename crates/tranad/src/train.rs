//! Offline two-phase adversarial training (paper Algorithm 1).
//!
//! Each step performs the two inference phases, then applies the evolving
//! losses of Eq. 10: the encoder and decoder 1 minimize
//! `ε⁻ⁿ‖O₁−W‖ + (1−ε⁻ⁿ)‖Ô₂−W‖` while decoder 2 minimizes
//! `ε⁻ⁿ‖O₂−W‖ − (1−ε⁻ⁿ)‖Ô₂−W‖` (the adversarial max of Eq. 8). At the end
//! of every epoch a first-order MAML step runs on a random batch (line 11),
//! and early stopping tracks validation loss (§4).

use crate::config::TranadConfig;
use crate::error::DetectorError;
use crate::model::TranadModel;
use std::collections::HashSet;
use std::time::Instant;
use tranad_data::{train_val_split, Normalizer, TimeSeries, Windows};
use tranad_nn::maml::{fomaml_step, MamlConfig};
use tranad_nn::optim::{AdamW, StepLr};
use tranad_nn::{Ctx, Fwd, InferCtx, Init, ParamId, ParamStore, Value};
use tranad_telemetry::Recorder;
use tranad_tensor::Tensor;

/// A trained TranAD detector: model weights plus the fitted normalizer.
pub struct TrainedTranad {
    /// Parameter store holding the trained weights.
    pub store: ParamStore,
    /// The network.
    pub model: TranadModel,
    /// Min-max normalizer fitted on the training series.
    pub normalizer: Normalizer,
    /// Per-dimension anomaly scores on the (normalized) training series,
    /// used downstream as the POT calibration sample.
    pub train_scores: Vec<Vec<f64>>,
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch (decoder-1 objective).
    pub train_losses: Vec<f64>,
    /// Mean validation reconstruction loss per epoch.
    pub val_losses: Vec<f64>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// Number of epochs actually run (early stopping may cut `epochs`).
    pub epochs_run: usize,
}

impl TrainReport {
    /// Average seconds per epoch (Table 5's unit).
    pub fn seconds_per_epoch(&self) -> f64 {
        if self.epoch_seconds.is_empty() {
            0.0
        } else {
            self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
        }
    }
}

/// Trains TranAD on a (raw, unnormalized) training series, tracing to the
/// process-global recorder (`TRANAD_TRACE`); see [`train_with`] for sink
/// injection.
pub fn train(
    series: &TimeSeries,
    config: TranadConfig,
) -> Result<(TrainedTranad, TrainReport), DetectorError> {
    train_with(series, config, tranad_telemetry::global())
}

/// Trains TranAD with an explicit telemetry recorder. Emits one
/// `train.epoch` event per epoch (losses, timings, lr, early-stop state),
/// a `train.early_stop` event when patience runs out, and pool/buffer
/// counters at the end of the run. A disabled recorder adds no work.
pub fn train_with(
    series: &TimeSeries,
    config: TranadConfig,
    rec: &Recorder,
) -> Result<(TrainedTranad, TrainReport), DetectorError> {
    config.validate()?;
    if series.is_empty() {
        return Err(DetectorError::EmptySeries);
    }
    if series.len() <= 4 {
        return Err(DetectorError::SeriesTooShort { needed: 5, got: series.len() });
    }
    let _scope = rec.span_scope();
    let _run_span = tranad_telemetry::span::enter("train.run");
    let normalizer = Normalizer::fit(series);
    let normalized = normalizer.transform(series);
    let (train_part, val_part) = train_val_split(&normalized, 0.8);

    let mut store = ParamStore::new();
    let mut init = Init::with_seed(config.seed);
    let model = TranadModel::new(&mut store, &mut init, series.dims(), config);
    let d2_ids: HashSet<usize> = model
        .decoder2_param_ids()
        .iter()
        .map(|p| p.index())
        .collect();

    let train_windows = Windows::new(train_part, config.window);
    let val_windows = Windows::new(val_part, config.window);

    let mut opt = AdamW::new(config.lr).with_recorder(rec.clone());
    let sched = StepLr::new(config.lr, config.lr_step, 0.5);
    let mut rng = tranad_data::SignalRng::new(config.seed ^ 0x5EED);

    let mut report = TrainReport {
        train_losses: Vec::new(),
        val_losses: Vec::new(),
        epoch_seconds: Vec::new(),
        epochs_run: 0,
    };
    let mut best_val = f64::INFINITY;
    let mut best_snapshot = store.snapshot();
    let mut stale = 0usize;

    let mut order: Vec<usize> = (0..train_windows.len()).collect();
    for epoch in 0..config.epochs {
        let _epoch_span = tranad_telemetry::span::enter("train.epoch");
        let started = Instant::now();
        sched.apply(&mut opt, epoch as u64);
        shuffle(&mut order, &mut rng);
        let visited = &order[..order.len().min(config.max_windows_per_epoch)];
        let w_recon = config.recon_weight(epoch);

        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for batch in visited.chunks(config.batch_size) {
            let _step_span = tranad_telemetry::span::enter("train.step");
            let (w, c) = {
                let _s = tranad_telemetry::span::enter("train.window_batch");
                (train_windows.batch(batch), train_windows.context_batch(batch, config.context))
            };
            let step_seed = config.seed ^ ((epoch * 31 + batches) as u64);

            // Update 1: encoder + decoder 1 minimize L1.
            let (loss1, grads1) = {
                let _p1 = tranad_telemetry::span::enter("train.phase1");
                let ctx = Ctx::train(&store, step_seed);
                let wv = ctx.input(w.clone());
                let cv = ctx.input(c.clone());
                let out = model.forward(&ctx, &wv, &cv);
                let loss = if config.adversarial {
                    out.o1
                        .mse(&wv)
                        .scale(w_recon)
                        .add(&out.o2_hat.mse(&wv).scale(1.0 - w_recon))
                } else {
                    out.o1.mse(&wv).add(&out.o2.mse(&wv))
                };
                loss.backward();
                if rec.enabled() {
                    // Memory observability per step: autograd tape length and
                    // the buffer pool's live-byte high watermark.
                    rec.gauge("train.tape_len", ctx.tape().len() as f64);
                    rec.gauge(
                        "pool.hwm_bytes",
                        tranad_tensor::bufpool::high_watermark_bytes() as f64,
                    );
                }
                let grads: Vec<(ParamId, Tensor)> = ctx
                    .grads()
                    .into_iter()
                    .filter(|(id, _)| !d2_ids.contains(&id.index()))
                    .collect();
                (loss.value().item(), grads)
            };
            opt.step(&mut store, &grads1);

            // Update 2: decoder 2 minimizes L2 (maximizes ‖Ô₂−W‖).
            let _p2 = tranad_telemetry::span::enter("train.phase2");
            if config.adversarial {
                let grads2 = {
                    let ctx = Ctx::train(&store, step_seed ^ 0xD2);
                    let wv = ctx.input(w.clone());
                    let cv = ctx.input(c.clone());
                    let out = model.forward(&ctx, &wv, &cv);
                    let loss = out
                        .o2
                        .mse(&wv)
                        .scale(w_recon)
                        .sub(&out.o2_hat.mse(&wv).scale(1.0 - w_recon));
                    loss.backward();
                    ctx.grads()
                        .into_iter()
                        .filter(|(id, _)| d2_ids.contains(&id.index()))
                        .collect::<Vec<_>>()
                };
                opt.step(&mut store, &grads2);
            } else {
                // Without the adversarial game decoder 2 trains on plain
                // reconstruction alongside decoder 1, so grads from update 1
                // cover it; re-run with d2-only filter for symmetry.
                let grads2 = {
                    let ctx = Ctx::train(&store, step_seed ^ 0xD2);
                    let wv = ctx.input(w.clone());
                    let cv = ctx.input(c.clone());
                    let (_, o2) = model.phase1(&ctx, &wv, &cv);
                    o2.mse(&wv).backward();
                    ctx.grads()
                        .into_iter()
                        .filter(|(id, _)| d2_ids.contains(&id.index()))
                        .collect::<Vec<_>>()
                };
                opt.step(&mut store, &grads2);
            }
            drop(_p2);

            epoch_loss += loss1;
            batches += 1;
        }

        // Meta-learning on a random batch (Algorithm 1 line 11).
        let maml_started = Instant::now();
        if config.maml && train_windows.len() > 1 {
            let _maml_span = tranad_telemetry::span::enter("train.maml");
            let mb: Vec<usize> = (0..config.batch_size.min(train_windows.len()))
                .map(|_| rng.index(0, train_windows.len()))
                .collect();
            let w = train_windows.batch(&mb);
            let c = train_windows.context_batch(&mb, config.context);
            let maml_cfg = MamlConfig { inner_lr: opt.lr, meta_lr: config.meta_lr };
            fomaml_step(&mut store, maml_cfg, |s| {
                let ctx = Ctx::train(s, config.seed ^ 0x3A31 ^ epoch as u64);
                let wv = ctx.input(w.clone());
                let cv = ctx.input(c.clone());
                let out = model.forward(&ctx, &wv, &cv);
                out.o1
                    .mse(&wv)
                    .scale(w_recon)
                    .add(&out.o2_hat.mse(&wv).scale(1.0 - w_recon))
                    .backward();
                ctx.grads()
                    .into_iter()
                    .filter(|(id, _)| !d2_ids.contains(&id.index()))
                    .collect()
            });
        }

        let maml_seconds = maml_started.elapsed().as_secs_f64();

        // Validation reconstruction loss for early stopping.
        let val_loss = {
            let _s = tranad_telemetry::span::enter("train.validate");
            validation_loss(&store, &model, &val_windows, config)
        };
        let train_loss = epoch_loss / batches.max(1) as f64;
        if !train_loss.is_finite() || !val_loss.is_finite() {
            return Err(DetectorError::NonFiniteLoss { epoch });
        }
        report.train_losses.push(train_loss);
        report.val_losses.push(val_loss);
        report.epoch_seconds.push(started.elapsed().as_secs_f64());
        report.epochs_run = epoch + 1;

        let improved = val_loss < best_val - 1e-9;
        if improved {
            best_val = val_loss;
            best_snapshot = store.snapshot();
            stale = 0;
        } else {
            stale += 1;
        }
        rec.emit("train.epoch", |e| {
            e.u64("epoch", epoch as u64)
                .f64("train_loss", train_loss)
                .f64("val_loss", val_loss)
                .f64("seconds", started.elapsed().as_secs_f64())
                .f64("maml_seconds", maml_seconds)
                .f64("lr", opt.lr)
                .f64("recon_weight", w_recon)
                .bool("improved", improved)
                .u64("stale", stale as u64);
        });
        if !improved && stale >= config.patience {
            rec.emit("train.early_stop", |e| {
                e.u64("epoch", epoch as u64).f64("best_val", best_val).u64("patience", config.patience as u64);
            });
            break;
        }
    }
    store.restore(&best_snapshot);

    // Score the full (normalized) training series for POT calibration.
    let trained = TrainedTranad {
        train_scores: Vec::new(),
        store,
        model,
        normalizer,
    };
    let train_scores = trained.score_normalized(&normalized);
    rec.emit("train.done", |e| {
        e.u64("epochs_run", report.epochs_run as u64)
            .f64("best_val", best_val)
            .f64("seconds_per_epoch", report.seconds_per_epoch());
    });
    tranad_tensor::bufpool::record_stats(rec);
    tranad_tensor::pool::record_counters(rec);
    Ok((TrainedTranad { train_scores, ..trained }, report))
}

fn validation_loss(
    store: &ParamStore,
    model: &TranadModel,
    windows: &Windows,
    config: TranadConfig,
) -> f64 {
    let mut total = 0.0;
    let n = windows.len();
    let bs = config.batch_size.max(1);
    // Validation never backpropagates, so it runs tape-free; chunk the
    // timestamp range directly instead of materializing an index list.
    for start in (0..n).step_by(bs) {
        let end = (start + bs).min(n);
        let ctx = InferCtx::new(store);
        let w = ctx.input(windows.batch_range(start, end));
        let c = ctx.input(windows.context_batch_range(start, end, config.context));
        let out = model.forward(&ctx, &w, &c);
        let loss = out.o1.mse(&w).add(&out.o2_hat.mse(&w)).scale(0.5);
        total += loss.item() * (end - start) as f64;
    }
    total / n.max(1) as f64
}

impl TrainedTranad {
    /// Per-dimension anomaly scores for an already-normalized series
    /// (Eq. 13 evaluated at each timestamp's window tail:
    /// `s = ½‖O₁−Ŵ‖² + ½‖Ô₂−Ŵ‖²` per dimension).
    pub fn score_normalized(&self, normalized: &TimeSeries) -> Vec<Vec<f64>> {
        let config = *self.model.config();
        let windows = Windows::borrowed(normalized, config.window);
        let m = normalized.dims();
        let k = config.window;
        // Batches are independent tape-free forward passes, so they run on
        // the thread pool. Batch boundaries depend only on the series
        // length and batch size — never on the thread count — so scores
        // are identical for any pool size.
        let n = windows.len();
        let bs = config.batch_size.max(1);
        let n_chunks = n.div_ceil(bs);
        let mut slots: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n_chunks];
        tranad_tensor::pool::parallel_chunks_mut(&mut slots, 1, |ci, slot| {
            let start = ci * bs;
            let end = (start + bs).min(n);
            let _fwd = tranad_telemetry::span::enter("infer.forward");
            let ctx = InferCtx::new(&self.store);
            let w = ctx.input(windows.batch_range(start, end));
            let c = ctx.input(windows.context_batch_range(start, end, config.context));
            let out = self.model.forward(&ctx, &w, &c);
            let o1 = &out.o1;
            let o2h = &out.o2_hat;
            let mut rows = Vec::with_capacity(end - start);
            for bi in 0..end - start {
                // Score only the window's final row — the current timestamp.
                let base = (bi * k + (k - 1)) * m;
                let row_scores: Vec<f64> = (0..m)
                    .map(|d| {
                        let target = w.data()[base + d];
                        let e1 = o1.data()[base + d] - target;
                        let e2 = o2h.data()[base + d] - target;
                        0.5 * e1 * e1 + 0.5 * e2 * e2
                    })
                    .collect();
                rows.push(row_scores);
            }
            slot[0] = rows;
        });
        slots.into_iter().flatten().collect()
    }

    /// Per-dimension anomaly scores for a raw series (normalizes first).
    pub fn score_series(&self, series: &TimeSeries) -> Vec<Vec<f64>> {
        self.score_normalized(&self.normalizer.transform(series))
    }
}

fn shuffle(order: &mut [usize], rng: &mut tranad_data::SignalRng) {
    for i in (1..order.len()).rev() {
        let j = rng.index(0, i + 1);
        order.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_data::SignalRng;

    fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
        let mut rng = SignalRng::new(seed);
        let cols: Vec<Vec<f64>> = (0..dims)
            .map(|d| {
                (0..len)
                    .map(|t| {
                        ((t as f64) / (10.0 + d as f64)).sin() + 0.05 * rng.normal()
                    })
                    .collect()
            })
            .collect();
        TimeSeries::from_columns(&cols)
    }

    fn tiny_config() -> TranadConfig {
        TranadConfig {
            epochs: 3,
            batch_size: 64,
            dropout: 0.0,
            context: 12,
            window: 6,
            ff_hidden: 16,
            patience: 10,
            ..TranadConfig::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let series = toy_series(400, 2, 1);
        let (_trained, report) = train(&series, tiny_config()).unwrap();
        assert!(report.epochs_run >= 2);
        let first = report.train_losses[0];
        let last = *report.train_losses.last().unwrap();
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert!(report.seconds_per_epoch() > 0.0);
    }

    #[test]
    fn train_scores_cover_series() {
        let series = toy_series(300, 2, 2);
        let (trained, _) = train(&series, tiny_config()).unwrap();
        assert_eq!(trained.train_scores.len(), series.len());
        assert_eq!(trained.train_scores[0].len(), 2);
        assert!(trained
            .train_scores
            .iter()
            .flatten()
            .all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn scores_spike_on_corrupted_points() {
        let series = toy_series(400, 1, 3);
        let (trained, _) = train(&series, tiny_config()).unwrap();
        // Corrupt a copy of the training series far outside the data range.
        let mut test = series.clone();
        for t in 200..204 {
            test.set(t, 0, 10.0);
        }
        let scores = trained.score_series(&test);
        let anom: f64 = (200..204).map(|t| scores[t][0]).sum::<f64>() / 4.0;
        let norm: f64 = (50..150).map(|t| scores[t][0]).sum::<f64>() / 100.0;
        assert!(
            anom > 5.0 * norm,
            "anomalous score {anom} not separated from normal {norm}"
        );
    }

    #[test]
    fn deterministic_training() {
        let series = toy_series(200, 1, 4);
        let cfg = TranadConfig { epochs: 2, ..tiny_config() };
        let (a, _) = train(&series, cfg).unwrap();
        let (b, _) = train(&series, cfg).unwrap();
        assert_eq!(a.train_scores, b.train_scores);
    }

    #[test]
    fn ablation_variants_train() {
        let series = toy_series(200, 2, 5);
        for (t, s, a, m) in [
            (false, true, true, true),
            (true, false, true, true),
            (true, true, false, true),
            (true, true, true, false),
        ] {
            let cfg = TranadConfig {
                use_transformer: t,
                self_conditioning: s,
                adversarial: a,
                maml: m,
                epochs: 2,
                ..tiny_config()
            };
            let (trained, report) = train(&series, cfg).unwrap();
            assert!(report.epochs_run >= 1);
            assert!(trained.train_scores.iter().flatten().all(|v| v.is_finite()));
        }
    }
}

//! TranAD hyperparameters (paper §4) and ablation switches (§5.1).

use crate::error::DetectorError;

/// Configuration of the TranAD model and training loop.
///
/// Defaults follow the paper: window size 10, 1 transformer encoder layer,
/// 2 feed-forward layers with 64 hidden units, dropout 0.1, AdamW with lr
/// 0.01 (meta lr 0.02) and a step scheduler with factor 0.5.
#[derive(Debug, Clone, Copy)]
pub struct TranadConfig {
    /// Local context window length `K`.
    pub window: usize,
    /// Length of the encoded complete-sequence context `C` fed to the first
    /// encoder. The paper encodes the sequence up to `t`; we cap it (see
    /// DESIGN.md) since attention cost is quadratic.
    pub context: usize,
    /// Feed-forward hidden width inside encoder layers.
    pub ff_hidden: usize,
    /// Dropout probability in the encoders.
    pub dropout: f64,
    /// Upper bound on attention heads. The paper sets heads equal to the
    /// dataset dimensionality; we use the largest divisor of `d_model = 2m`
    /// not exceeding this cap (other assignments "give similar broad-level
    /// trends", §4).
    pub max_heads: usize,
    /// Initial AdamW learning rate.
    pub lr: f64,
    /// Meta-learning (outer MAML) rate.
    pub meta_lr: f64,
    /// Scheduler: halve the lr every this many epochs.
    pub lr_step: u64,
    /// Maximum training epochs (iteration limit `N` of Algorithm 1).
    pub epochs: usize,
    /// Mini-batch size for window batches.
    pub batch_size: usize,
    /// Evolutionary hyperparameter ε of Eq. 10 (close to 1; the weight of
    /// the reconstruction term at epoch `n` is `ε^{-n}`... see note below).
    pub epsilon: f64,
    /// Patience (epochs without validation improvement) for early stopping.
    pub patience: usize,
    /// Upper bound on the number of training windows visited per epoch
    /// (a fresh random subsample each epoch). Keeps wide, long datasets
    /// tractable on CPU without changing the estimator.
    pub max_windows_per_epoch: usize,
    /// RNG seed for weight init, batching and dropout.
    pub seed: u64,
    /// Ablation: replace the transformer encoders with feed-forward
    /// networks ("w/o transformer", Table 6 row 2).
    pub use_transformer: bool,
    /// Ablation: self-conditioning — feed the phase-1 reconstruction error
    /// as the phase-2 focus score ("w/o self-conditioning" sets this false,
    /// fixing `F = 0`).
    pub self_conditioning: bool,
    /// Ablation: two-phase adversarial training ("w/o adversarial training"
    /// sets this false: single phase, pure reconstruction loss).
    pub adversarial: bool,
    /// Ablation: MAML meta step per epoch ("w/o MAML" sets this false).
    pub maml: bool,
    /// Extension (paper §6 future work): bidirectional window encoding —
    /// drop the causal mask so the window encoder attends to the whole
    /// window in both directions. Only valid for offline detection; the
    /// online API requires causal attention.
    pub bidirectional: bool,
}

impl Default for TranadConfig {
    fn default() -> Self {
        TranadConfig {
            window: 10,
            context: 20,
            ff_hidden: 64,
            dropout: 0.1,
            max_heads: 8,
            lr: 0.01,
            meta_lr: 0.02,
            lr_step: 5,
            epochs: 10,
            batch_size: 128,
            epsilon: 1.06,
            patience: 3,
            max_windows_per_epoch: usize::MAX,
            seed: 42,
            use_transformer: true,
            self_conditioning: true,
            adversarial: true,
            maml: true,
            bidirectional: false,
        }
    }
}

impl TranadConfig {
    /// A configuration tuned for fast unit/integration tests.
    pub fn fast() -> Self {
        TranadConfig {
            epochs: 3,
            batch_size: 64,
            dropout: 0.0,
            ..Default::default()
        }
    }

    /// The evolving reconstruction weight `ε^{-n}` at epoch `n` (Eq. 10).
    /// ε slightly above 1 makes the weight decay from 1 toward 0, shifting
    /// emphasis from plain reconstruction to the adversarial term.
    pub fn recon_weight(&self, epoch: usize) -> f64 {
        self.epsilon.powi(-(epoch as i32))
    }

    /// Number of attention heads for modality `m`: the largest divisor of
    /// `d_model = 2m` that does not exceed [`TranadConfig::max_heads`].
    pub fn heads_for(&self, m: usize) -> usize {
        let d_model = self.d_model(m);
        (1..=self.max_heads.min(d_model))
            .rev()
            .find(|h| d_model.is_multiple_of(*h))
            .unwrap_or(1)
    }

    /// The model width: `d_model = 2m` (window concatenated with the focus
    /// score on the feature axis), floored at 16. Below the floor the raw
    /// concatenation is linearly embedded — with tiny widths (univariate
    /// data gives `2m = 2`) the encoder's LayerNorm degenerates: the
    /// normalization of two features is always `±1`, destroying all
    /// information.
    pub fn d_model(&self, m: usize) -> usize {
        (2 * m).max(16)
    }

    /// Validates invariants. Prefer constructing through
    /// [`TranadConfig::builder`], which calls this for you.
    pub fn validate(&self) -> Result<(), DetectorError> {
        let bad = |msg: &str| Err(DetectorError::InvalidConfig(msg.to_string()));
        if self.window < 1 {
            return bad("window must be >= 1");
        }
        if self.context < self.window {
            return bad("context must cover the window");
        }
        if self.epsilon <= 1.0 || !self.epsilon.is_finite() {
            return bad("epsilon must exceed 1 for a decaying reconstruction weight");
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return bad("dropout must be in [0,1)");
        }
        if self.batch_size < 1 {
            return bad("batch_size must be >= 1");
        }
        if self.epochs < 1 {
            return bad("epochs must be >= 1");
        }
        if self.lr <= 0.0 || !self.lr.is_finite() {
            return bad("lr must be positive and finite");
        }
        if self.meta_lr <= 0.0 || !self.meta_lr.is_finite() {
            return bad("meta_lr must be positive and finite");
        }
        if self.lr_step < 1 {
            return bad("lr_step must be >= 1");
        }
        if self.patience < 1 {
            return bad("patience must be >= 1");
        }
        if self.max_heads < 1 {
            return bad("max_heads must be >= 1");
        }
        if self.ff_hidden < 1 {
            return bad("ff_hidden must be >= 1");
        }
        if self.max_windows_per_epoch < 1 {
            return bad("max_windows_per_epoch must be >= 1");
        }
        Ok(())
    }

    /// Starts a validating builder seeded with the paper defaults:
    /// `TranadConfig::builder().window(10).build()?`.
    pub fn builder() -> TranadConfigBuilder {
        TranadConfigBuilder { config: TranadConfig::default() }
    }
}

/// Validating builder for [`TranadConfig`]. Every setter overrides one
/// paper-default field; [`TranadConfigBuilder::build`] rejects invalid
/// combinations (window = 0, context < window, ε ≤ 1, ...) up front instead
/// of panicking mid-epoch.
#[derive(Debug, Clone, Copy)]
pub struct TranadConfigBuilder {
    config: TranadConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, $field: $ty) -> Self {
                self.config.$field = $field;
                self
            }
        )*
    };
}

impl TranadConfigBuilder {
    builder_setters! {
        /// Local context window length `K`.
        window: usize,
        /// Encoded complete-sequence context length.
        context: usize,
        /// Feed-forward hidden width inside encoder layers.
        ff_hidden: usize,
        /// Dropout probability in the encoders.
        dropout: f64,
        /// Upper bound on attention heads.
        max_heads: usize,
        /// Initial AdamW learning rate.
        lr: f64,
        /// Meta-learning (outer MAML) rate.
        meta_lr: f64,
        /// Scheduler: halve the lr every this many epochs.
        lr_step: u64,
        /// Maximum training epochs.
        epochs: usize,
        /// Mini-batch size for window batches.
        batch_size: usize,
        /// Evolutionary hyperparameter ε of Eq. 10 (must exceed 1).
        epsilon: f64,
        /// Early-stopping patience in epochs.
        patience: usize,
        /// Upper bound on training windows visited per epoch.
        max_windows_per_epoch: usize,
        /// RNG seed for weight init, batching and dropout.
        seed: u64,
        /// Ablation: transformer encoders on/off.
        use_transformer: bool,
        /// Ablation: self-conditioning on/off.
        self_conditioning: bool,
        /// Ablation: two-phase adversarial training on/off.
        adversarial: bool,
        /// Ablation: per-epoch MAML meta step on/off.
        maml: bool,
        /// Extension: bidirectional (non-causal) window encoding.
        bidirectional: bool,
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<TranadConfig, DetectorError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

tranad_json::impl_json_struct!(TranadConfig {
    window,
    context,
    ff_hidden,
    dropout,
    max_heads,
    lr,
    meta_lr,
    lr_step,
    epochs,
    batch_size,
    epsilon,
    patience,
    max_windows_per_epoch,
    seed,
    use_transformer,
    self_conditioning,
    adversarial,
    maml,
    bidirectional,
});

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_json::{FromJson, ToJson};

    #[test]
    fn config_json_roundtrip() {
        let c = TranadConfig { seed: 9, window: 12, dropout: 0.25, maml: false, ..Default::default() };
        let text = c.to_json().to_string();
        let back = TranadConfig::from_json(&tranad_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.seed, 9);
        assert_eq!(back.window, 12);
        assert_eq!(back.dropout, 0.25);
        assert!(!back.maml);
        assert_eq!(back.max_windows_per_epoch, usize::MAX);
    }

    #[test]
    fn config_json_missing_field_errors() {
        let v = tranad_json::parse(r#"{"window": 10}"#).unwrap();
        assert!(TranadConfig::from_json(&v).is_err());
    }

    #[test]
    fn defaults_match_paper() {
        let c = TranadConfig::default();
        assert_eq!(c.window, 10);
        assert_eq!(c.ff_hidden, 64);
        assert_eq!(c.dropout, 0.1);
        assert_eq!(c.lr, 0.01);
        assert_eq!(c.meta_lr, 0.02);
        c.validate().unwrap();
    }

    #[test]
    fn recon_weight_decays_from_one() {
        let c = TranadConfig::default();
        assert!((c.recon_weight(0) - 1.0).abs() < 1e-12);
        assert!(c.recon_weight(5) < c.recon_weight(1));
        assert!(c.recon_weight(100) > 0.0);
    }

    #[test]
    fn heads_divide_d_model() {
        let c = TranadConfig::default();
        for m in [1, 2, 5, 25, 38, 51, 55, 123] {
            let h = c.heads_for(m);
            assert_eq!(c.d_model(m) % h, 0, "m={m}, h={h}");
            assert!(h <= c.max_heads);
        }
    }

    #[test]
    fn heads_for_univariate() {
        let c = TranadConfig::default();
        assert_eq!(c.d_model(1), 16); // floored
        assert_eq!(c.heads_for(1), 8);
    }

    #[test]
    fn d_model_uses_2m_above_floor() {
        let c = TranadConfig::default();
        assert_eq!(c.d_model(25), 50);
        assert_eq!(c.d_model(8), 16);
    }

    #[test]
    fn validate_rejects_short_context() {
        let err = TranadConfig { context: 5, window: 10, ..Default::default() }
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("context must cover the window"));
    }

    #[test]
    fn builder_applies_overrides_and_validates() {
        let c = TranadConfig::builder().window(12).context(24).epochs(2).build().unwrap();
        assert_eq!(c.window, 12);
        assert_eq!(c.context, 24);
        assert_eq!(c.epochs, 2);
        assert_eq!(c.ff_hidden, TranadConfig::default().ff_hidden);

        assert!(TranadConfig::builder().window(0).build().is_err());
        assert!(TranadConfig::builder().window(10).context(5).build().is_err());
        assert!(TranadConfig::builder().epsilon(0.5).build().is_err());
        assert!(TranadConfig::builder().dropout(1.0).build().is_err());
        assert!(TranadConfig::builder().lr(0.0).build().is_err());
    }
}

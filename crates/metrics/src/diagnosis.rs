//! Anomaly-diagnosis (root-cause) metrics: HitRate@P% and NDCG@P%
//! (paper §4.2.2, Table 4).
//!
//! At each anomalous timestamp the detector produces per-dimension scores;
//! the ground truth marks which dimensions are anomalous. With `g` true
//! dimensions, `P%` considers the top `ceil(g * P / 100)` predicted
//! dimensions.

/// Computes HitRate@P% for one timestamp: the fraction of ground-truth
/// dimensions appearing in the top-`ceil(g*p)` scored dimensions.
pub fn hit_rate_at(scores: &[f64], truth: &[bool], p: f64) -> Option<f64> {
    let g = truth.iter().filter(|&&t| t).count();
    if g == 0 {
        return None;
    }
    let k = ((g as f64 * p).ceil() as usize).clamp(1, scores.len());
    let top = top_k_indices(scores, k);
    let hits = top.iter().filter(|&&i| truth[i]).count();
    Some(hits as f64 / g as f64)
}

/// Computes NDCG@P% for one timestamp: discounted cumulative gain of the
/// top-`ceil(g*p)` ranking with binary relevance, normalized by the ideal
/// ordering.
pub fn ndcg_at(scores: &[f64], truth: &[bool], p: f64) -> Option<f64> {
    let g = truth.iter().filter(|&&t| t).count();
    if g == 0 {
        return None;
    }
    let k = ((g as f64 * p).ceil() as usize).clamp(1, scores.len());
    let top = top_k_indices(scores, k);
    let mut dcg = 0.0;
    for (rank, &i) in top.iter().enumerate() {
        if truth[i] {
            dcg += 1.0 / ((rank + 2) as f64).log2();
        }
    }
    let ideal: f64 = (0..g.min(k)).map(|r| 1.0 / ((r + 2) as f64).log2()).sum();
    Some(dcg / ideal)
}

/// Aggregated diagnosis metrics over a full test set.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiagnosisMetrics {
    /// HitRate@100%.
    pub hit100: f64,
    /// HitRate@150%.
    pub hit150: f64,
    /// NDCG@100%.
    pub ndcg100: f64,
    /// NDCG@150%.
    pub ndcg150: f64,
}

/// Averages the per-timestamp metrics over every timestamp that has at
/// least one ground-truth anomalous dimension.
///
/// `scores[t]` are the per-dimension anomaly scores at timestamp `t`;
/// `truth[t]` the per-dimension ground-truth labels.
pub fn diagnose(scores: &[Vec<f64>], truth: &[Vec<bool>]) -> DiagnosisMetrics {
    assert_eq!(scores.len(), truth.len(), "timestamp count mismatch");
    let mut sums = DiagnosisMetrics::default();
    let mut n = 0usize;
    for (s, t) in scores.iter().zip(truth) {
        assert_eq!(s.len(), t.len(), "dimension count mismatch");
        let (Some(h1), Some(h15), Some(n1), Some(n15)) = (
            hit_rate_at(s, t, 1.0),
            hit_rate_at(s, t, 1.5),
            ndcg_at(s, t, 1.0),
            ndcg_at(s, t, 1.5),
        ) else {
            continue;
        };
        sums.hit100 += h1;
        sums.hit150 += h15;
        sums.ndcg100 += n1;
        sums.ndcg150 += n15;
        n += 1;
    }
    if n > 0 {
        let nf = n as f64;
        sums.hit100 /= nf;
        sums.hit150 /= nf;
        sums.ndcg100 /= nf;
        sums.ndcg150 /= nf;
    }
    sums
}

/// Indices of the `k` largest scores, in descending score order
/// (deterministic tie-break by index).
fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("NaN score")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_perfect_ranking() {
        let scores = [0.9, 0.8, 0.1, 0.05];
        let truth = [true, true, false, false];
        assert_eq!(hit_rate_at(&scores, &truth, 1.0), Some(1.0));
    }

    #[test]
    fn hit_rate_partial() {
        let scores = [0.9, 0.1, 0.8, 0.05];
        let truth = [true, true, false, false];
        // top-2 = {0, 2}; only dim 0 is true -> 1/2
        assert_eq!(hit_rate_at(&scores, &truth, 1.0), Some(0.5));
        // top-3 = {0, 2, 1}; both true dims found -> 1.0
        assert_eq!(hit_rate_at(&scores, &truth, 1.5), Some(1.0));
    }

    #[test]
    fn hit_rate_no_anomalous_dims() {
        assert_eq!(hit_rate_at(&[0.1, 0.2], &[false, false], 1.0), None);
    }

    #[test]
    fn ndcg_perfect_is_one() {
        let scores = [0.9, 0.8, 0.1];
        let truth = [true, true, false];
        let n = ndcg_at(&scores, &truth, 1.0).unwrap();
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_low_ranked_hits() {
        let good = ndcg_at(&[0.9, 0.8, 0.1], &[true, false, true], 1.0).unwrap();
        let bad = ndcg_at(&[0.1, 0.9, 0.8], &[true, false, true], 1.0).unwrap();
        assert!(good > bad);
    }

    #[test]
    fn p150_considers_more_candidates() {
        let scores = [0.5, 0.9, 0.1];
        let truth = [true, false, false];
        // g=1: top-1 is dim 1 (false) -> 0; top-ceil(1.5)=2 includes dim 0.
        assert_eq!(hit_rate_at(&scores, &truth, 1.0), Some(0.0));
        assert_eq!(hit_rate_at(&scores, &truth, 1.5), Some(1.0));
    }

    #[test]
    fn diagnose_averages_only_anomalous_timestamps() {
        let scores = vec![vec![0.9, 0.1], vec![0.1, 0.2], vec![0.1, 0.9]];
        let truth = vec![
            vec![true, false],
            vec![false, false], // skipped
            vec![false, true],
        ];
        let d = diagnose(&scores, &truth);
        assert_eq!(d.hit100, 1.0);
        assert!((d.ndcg100 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagnose_empty_truth_is_zero() {
        let d = diagnose(&[vec![0.5]], &[vec![false]]);
        assert_eq!(d.hit100, 0.0);
    }
}

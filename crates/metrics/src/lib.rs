//! # tranad-metrics
//!
//! Evaluation metrics for time-series anomaly detection and diagnosis:
//!
//! - [`classification`]: precision/recall/F1 with the point-adjust protocol,
//!   ROC-AUC, and best-F1 threshold search (paper §4.2.1, Tables 2–3).
//! - [`diagnosis`]: HitRate@P% and NDCG@P% root-cause metrics
//!   (paper §4.2.2, Table 4).
//! - [`range`]: range-based precision/recall (Tatbul et al.) as an
//!   alternative protocol, per the benchmark-quality debate the paper
//!   cites.
//! - [`ranking`]: Friedman + Wilcoxon signed-rank critical-difference
//!   analysis (paper Figure 4).

pub mod classification;
pub mod diagnosis;
pub mod range;
pub mod ranking;

pub use classification::{
    best_f1, evaluate, point_adjust, roc_auc, Confusion, DetectionMetrics,
};
pub use diagnosis::{diagnose, hit_rate_at, ndcg_at, DiagnosisMetrics};
pub use range::{range_f1, range_precision, range_recall, ranges_of, RangeConfig};
pub use ranking::{
    average_ranks, critical_difference, friedman_test, wilcoxon_signed_rank, CdEntry,
    FriedmanResult, WilcoxonResult,
};

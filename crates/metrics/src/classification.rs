//! Binary detection metrics: precision, recall, F1, ROC-AUC, the
//! point-adjust protocol, and best-F1 threshold search.

/// Confusion-matrix counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against ground truth (equal lengths required).
    pub fn from_labels(pred: &[bool], truth: &[bool]) -> Confusion {
        assert_eq!(pred.len(), truth.len(), "label length mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p, t) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted positive
    /// (the lenient convention used by the TSAD evaluation scripts).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return if self.fn_ == 0 { 1.0 } else { 0.0 };
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there are no positives to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// The point-adjust protocol (Xu et al. 2018; used by OmniAnomaly, USAD,
/// TranAD): if any point inside a contiguous ground-truth anomaly segment is
/// predicted anomalous, every point of that segment is counted as detected.
///
/// Returns the adjusted prediction vector.
pub fn point_adjust(pred: &[bool], truth: &[bool]) -> Vec<bool> {
    assert_eq!(pred.len(), truth.len(), "label length mismatch");
    let mut adjusted = pred.to_vec();
    let mut i = 0;
    while i < truth.len() {
        if truth[i] {
            let start = i;
            while i < truth.len() && truth[i] {
                i += 1;
            }
            let end = i; // [start, end)
            if pred[start..end].iter().any(|&p| p) {
                for a in &mut adjusted[start..end] {
                    *a = true;
                }
            }
        } else {
            i += 1;
        }
    }
    adjusted
}

/// Detection summary computed from scores.
#[derive(Debug, Clone, Copy)]
pub struct DetectionMetrics {
    /// Precision after point adjustment.
    pub precision: f64,
    /// Recall after point adjustment.
    pub recall: f64,
    /// F1 after point adjustment.
    pub f1: f64,
    /// Area under the ROC curve of the *raw* scores.
    pub auc: f64,
}

/// Evaluates binary predictions with point adjustment plus score AUC.
pub fn evaluate(scores: &[f64], pred: &[bool], truth: &[bool]) -> DetectionMetrics {
    let adjusted = point_adjust(pred, truth);
    let c = Confusion::from_labels(&adjusted, truth);
    DetectionMetrics {
        precision: c.precision(),
        recall: c.recall(),
        f1: c.f1(),
        auc: roc_auc(scores, truth),
    }
}

/// Area under the ROC curve via the Mann–Whitney U statistic, with tie
/// correction. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f64], truth: &[bool]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "score/label length mismatch");
    let n_pos = truth.iter().filter(|&&t| t).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank all scores (average rank for ties).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Sweeps thresholds over the observed score range and returns the
/// point-adjusted metrics of the best-F1 threshold, along with the
/// threshold itself. Used for baseline methods whose papers report best-F1.
pub fn best_f1(scores: &[f64], truth: &[bool], steps: usize) -> (DetectionMetrics, f64) {
    assert!(steps >= 2, "need at least 2 threshold steps");
    let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut best_thr = hi;
    let mut best: Option<DetectionMetrics> = None;
    for s in 0..steps {
        let thr = lo + (hi - lo) * s as f64 / (steps - 1) as f64;
        let pred: Vec<bool> = scores.iter().map(|&v| v >= thr).collect();
        let m = evaluate(scores, &pred, truth);
        if best.is_none_or(|b| m.f1 > b.f1) {
            best = Some(m);
            best_thr = thr;
        }
    }
    (best.expect("at least one threshold evaluated"), best_thr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false];
        let truth = [true, false, true, false];
        let c = Confusion::from_labels(&pred, &truth);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn perfect_prediction() {
        let labels = [true, false, true];
        let c = Confusion::from_labels(&labels, &labels);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn empty_positive_class() {
        let c = Confusion::from_labels(&[false; 4], &[false; 4]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn point_adjust_expands_partial_hits() {
        let truth = [false, true, true, true, false, true];
        let pred = [false, false, true, false, false, false];
        let adj = point_adjust(&pred, &truth);
        assert_eq!(adj, vec![false, true, true, true, false, false]);
    }

    #[test]
    fn point_adjust_keeps_false_positives() {
        let truth = [false, false, true];
        let pred = [true, false, true];
        let adj = point_adjust(&pred, &truth);
        assert_eq!(adj, vec![true, false, true]);
    }

    #[test]
    fn point_adjust_is_monotone() {
        // Adding predictions can only add adjusted positives.
        let truth = [true, true, false, true, true, true];
        let a = [false, false, false, false, true, false];
        let b = [true, false, false, false, true, false];
        let adj_a = point_adjust(&a, &truth);
        let adj_b = point_adjust(&b, &truth);
        for (x, y) in adj_a.iter().zip(&adj_b) {
            assert!(!x | y, "monotonicity violated");
        }
    }

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truth = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &truth), 1.0);
    }

    #[test]
    fn auc_inverted() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let truth = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &truth), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let truth = [true, false, true, false];
        assert_eq!(roc_auc(&scores, &truth), 0.5);
    }

    #[test]
    fn auc_single_class() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[false, false]), 0.5);
    }

    #[test]
    fn best_f1_finds_separating_threshold() {
        let scores = [0.1, 0.15, 0.12, 0.95, 0.9, 0.05];
        let truth = [false, false, false, true, true, false];
        let (m, thr) = best_f1(&scores, &truth, 100);
        assert_eq!(m.f1, 1.0);
        assert!(thr > 0.15 && thr <= 0.9);
    }

    #[test]
    fn evaluate_combines_point_adjust_and_auc() {
        let truth = [false, true, true, false];
        let pred = [false, true, false, false];
        let scores = [0.1, 0.9, 0.2, 0.1];
        let m = evaluate(&scores, &pred, &truth);
        // point-adjust turns the partial segment hit into full recall
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.f1, 1.0);
    }
}

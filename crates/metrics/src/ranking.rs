//! Statistical comparison of detectors across datasets: Friedman test,
//! Wilcoxon signed-rank test, and critical-difference average ranks
//! (paper Figure 4).

/// Average ranks of `k` methods over `n` datasets.
///
/// `scores[d][m]` is the score of method `m` on dataset `d`; higher is
/// better. Ties share the average rank; rank 1 is best.
pub fn average_ranks(scores: &[Vec<f64>]) -> Vec<f64> {
    assert!(!scores.is_empty(), "no datasets");
    let k = scores[0].len();
    let mut sums = vec![0.0; k];
    for row in scores {
        assert_eq!(row.len(), k, "ragged score matrix");
        let ranks = rank_descending(row);
        for (s, r) in sums.iter_mut().zip(&ranks) {
            *s += r;
        }
    }
    let n = scores.len() as f64;
    sums.iter().map(|s| s / n).collect()
}

/// Ranks one row with ties averaged; the highest value gets rank 1.
fn rank_descending(row: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("NaN score"));
    let mut ranks = vec![0.0; row.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && row[idx[j + 1]] == row[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &m in &idx[i..=j] {
            ranks[m] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Friedman chi-square statistic and its (Iman–Davenport) F refinement for
/// `k` methods over `n` datasets.
#[derive(Debug, Clone, Copy)]
pub struct FriedmanResult {
    /// Friedman chi-square statistic (df = k-1).
    pub chi_square: f64,
    /// Iman–Davenport F statistic (df = (k-1, (k-1)(n-1))).
    pub f_statistic: f64,
    /// True if chi-square exceeds the 0.05 critical value (chi-square
    /// approximation), i.e. the methods differ significantly.
    pub significant_05: bool,
}

/// Runs the Friedman test on a `[dataset][method]` score matrix.
pub fn friedman_test(scores: &[Vec<f64>]) -> FriedmanResult {
    let n = scores.len() as f64;
    let k = scores[0].len() as f64;
    assert!(k >= 2.0 && n >= 2.0, "need >= 2 methods and >= 2 datasets");
    let ranks = average_ranks(scores);
    let sum_sq: f64 = ranks.iter().map(|r| r * r).sum();
    let chi = 12.0 * n / (k * (k + 1.0)) * (sum_sq - k * (k + 1.0) * (k + 1.0) / 4.0);
    let f = if (n * (k - 1.0) - chi).abs() < 1e-12 {
        f64::INFINITY
    } else {
        (n - 1.0) * chi / (n * (k - 1.0) - chi)
    };
    let crit = chi_square_critical_05(k as usize - 1);
    FriedmanResult { chi_square: chi, f_statistic: f, significant_05: chi > crit }
}

/// 0.05 critical values of the chi-square distribution (df 1..=30), with a
/// Wilson–Hilferty approximation beyond the table.
fn chi_square_critical_05(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919, 18.307, 19.675,
        21.026, 22.362, 23.685, 24.996, 26.296, 27.587, 28.869, 30.144, 31.410, 32.671, 33.924,
        35.172, 36.415, 37.652, 38.885, 40.113, 41.337, 42.557, 43.773,
    ];
    if df == 0 {
        return 0.0;
    }
    if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        // Wilson–Hilferty: chi2_p ≈ df (1 - 2/(9 df) + z_p sqrt(2/(9 df)))^3
        let d = df as f64;
        let z = 1.6449; // z_{0.95}
        d * (1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt()).powi(3)
    }
}

/// Two-sided Wilcoxon signed-rank test with normal approximation.
#[derive(Debug, Clone, Copy)]
pub struct WilcoxonResult {
    /// The smaller of the positive/negative rank sums.
    pub w: f64,
    /// Normal-approximation z statistic.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Paired two-sided Wilcoxon signed-rank test of `a` vs `b` (zeros
/// discarded, ties mid-ranked, normal approximation with tie correction).
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must match");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x - y)
        .filter(|d| d.abs() > 1e-15)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult { w: 0.0, z: 0.0, p_value: 1.0 };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| diffs[i].abs().partial_cmp(&diffs[j].abs()).expect("NaN diff"));
    let mut ranks = vec![0.0; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[order[j + 1]].abs() - diffs[order[i]].abs()).abs() < 1e-15 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(&d, _)| d > 0.0)
        .map(|(_, &r)| r)
        .sum();
    let w_minus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(&d, _)| d < 0.0)
        .map(|(_, &r)| r)
        .sum();
    let w = w_plus.min(w_minus);
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var <= 0.0 {
        return WilcoxonResult { w, z: 0.0, p_value: 1.0 };
    }
    let z = (w - mean) / var.sqrt();
    let p = 2.0 * normal_cdf(z); // z <= 0 since w is the smaller sum
    WilcoxonResult { w, z, p_value: p.min(1.0) }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| <= 1.5e-7.
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// One entry of a critical-difference comparison.
#[derive(Debug, Clone)]
pub struct CdEntry {
    /// Method name.
    pub name: String,
    /// Average rank (1 = best).
    pub rank: f64,
}

/// Builds the Figure-4-style critical-difference summary: methods sorted by
/// average rank plus pairwise Wilcoxon p-values against the top-ranked
/// method.
pub fn critical_difference(
    names: &[&str],
    scores: &[Vec<f64>],
) -> (Vec<CdEntry>, FriedmanResult, Vec<(String, f64)>) {
    let ranks = average_ranks(scores);
    let friedman = friedman_test(scores);
    let mut entries: Vec<CdEntry> = names
        .iter()
        .zip(&ranks)
        .map(|(&n, &r)| CdEntry { name: n.to_string(), rank: r })
        .collect();
    entries.sort_by(|a, b| a.rank.partial_cmp(&b.rank).expect("NaN rank"));
    let best_idx = names
        .iter()
        .position(|&n| n == entries[0].name)
        .expect("best method present");
    let best_scores: Vec<f64> = scores.iter().map(|row| row[best_idx]).collect();
    let mut pvals = Vec::new();
    for (m, &name) in names.iter().enumerate() {
        if m == best_idx {
            continue;
        }
        let other: Vec<f64> = scores.iter().map(|row| row[m]).collect();
        let wr = wilcoxon_signed_rank(&best_scores, &other);
        pvals.push((name.to_string(), wr.p_value));
    }
    (entries, friedman, pvals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple() {
        let scores = vec![vec![0.9, 0.5, 0.1], vec![0.8, 0.6, 0.2]];
        let ranks = average_ranks(&scores);
        assert_eq!(ranks, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ranks_with_ties() {
        let scores = vec![vec![0.5, 0.5, 0.1]];
        let ranks = average_ranks(&scores);
        assert_eq!(ranks, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn friedman_detects_consistent_winner() {
        // method 0 always best, 2 always worst, over 10 datasets
        let scores: Vec<Vec<f64>> = (0..10)
            .map(|d| vec![0.9 + d as f64 * 1e-3, 0.5, 0.1])
            .collect();
        let r = friedman_test(&scores);
        assert!(r.significant_05, "chi {}", r.chi_square);
    }

    #[test]
    fn friedman_no_difference() {
        // Alternate which method wins so ranks even out.
        let scores = vec![
            vec![0.9, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.1, 0.9],
        ];
        let r = friedman_test(&scores);
        assert!(!r.significant_05);
        assert!(r.chi_square.abs() < 1e-9);
    }

    #[test]
    fn wilcoxon_detects_shift() {
        let a: Vec<f64> = (0..30).map(|i| i as f64 + 1.0).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value < 0.01, "p {}", r.p_value);
    }

    #[test]
    fn wilcoxon_identical_samples() {
        let a = vec![1.0, 2.0, 3.0];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn wilcoxon_symmetric_differences() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 1.0, 4.0, 3.0];
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.6449) - 0.95).abs() < 1e-3);
        assert!(normal_cdf(-5.0) < 1e-5);
    }

    #[test]
    fn critical_difference_orders_methods() {
        let names = ["good", "mid", "bad"];
        let scores: Vec<Vec<f64>> = (0..8)
            .map(|d| vec![0.9, 0.5 + (d % 2) as f64 * 0.01, 0.1])
            .collect();
        let (entries, friedman, pvals) = critical_difference(&names, &scores);
        assert_eq!(entries[0].name, "good");
        assert_eq!(entries[2].name, "bad");
        assert!(friedman.significant_05);
        assert_eq!(pvals.len(), 2);
    }
}

//! Range-based precision and recall (Tatbul et al., NeurIPS 2018) — an
//! alternative to the point-adjust protocol that scores *segment* overlap
//! instead of expanding hits. Included because the TSAD evaluation debate
//! the paper cites ([55]) recommends reporting more than one protocol.
//!
//! Implemented with the flat positional bias and the standard
//! `alpha`-weighted combination of existence and overlap rewards.

/// A contiguous `[start, end)` range of timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Inclusive start.
    pub start: usize,
    /// Exclusive end.
    pub end: usize,
}

impl Range {
    fn len(&self) -> usize {
        self.end - self.start
    }

    fn overlap(&self, other: &Range) -> usize {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        hi.saturating_sub(lo)
    }
}

/// Extracts maximal true runs from a boolean label vector.
pub fn ranges_of(labels: &[bool]) -> Vec<Range> {
    let mut out = Vec::new();
    let mut start = None;
    for (t, &b) in labels.iter().enumerate() {
        match (b, start) {
            (true, None) => start = Some(t),
            (false, Some(s)) => {
                out.push(Range { start: s, end: t });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(Range { start: s, end: labels.len() });
    }
    out
}

/// Range-based recall/precision configuration.
#[derive(Debug, Clone, Copy)]
pub struct RangeConfig {
    /// Weight of the existence reward in recall (`alpha` in the paper;
    /// 0 = pure overlap, 1 = pure existence).
    pub alpha: f64,
}

impl Default for RangeConfig {
    fn default() -> Self {
        RangeConfig { alpha: 0.5 }
    }
}

/// Score of one real range against all predicted ranges:
/// `alpha * existence + (1 - alpha) * overlap_fraction`.
fn recall_of_range(real: &Range, predicted: &[Range], alpha: f64) -> f64 {
    let overlap: usize = predicted.iter().map(|p| real.overlap(p)).sum();
    let existence = if overlap > 0 { 1.0 } else { 0.0 };
    let overlap_frac = overlap as f64 / real.len().max(1) as f64;
    alpha * existence + (1.0 - alpha) * overlap_frac
}

/// Range-based recall: mean per-real-range score.
pub fn range_recall(pred: &[bool], truth: &[bool], config: RangeConfig) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label length mismatch");
    let real = ranges_of(truth);
    if real.is_empty() {
        return 1.0;
    }
    let predicted = ranges_of(pred);
    real.iter()
        .map(|r| recall_of_range(r, &predicted, config.alpha))
        .sum::<f64>()
        / real.len() as f64
}

/// Range-based precision: mean per-predicted-range overlap fraction
/// (existence reward is conventionally omitted for precision).
pub fn range_precision(pred: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label length mismatch");
    let predicted = ranges_of(pred);
    if predicted.is_empty() {
        return if ranges_of(truth).is_empty() { 1.0 } else { 0.0 };
    }
    let real = ranges_of(truth);
    predicted
        .iter()
        .map(|p| {
            let overlap: usize = real.iter().map(|r| p.overlap(r)).sum();
            overlap as f64 / p.len().max(1) as f64
        })
        .sum::<f64>()
        / predicted.len() as f64
}

/// Range-based F1 from range precision and recall.
pub fn range_f1(pred: &[bool], truth: &[bool], config: RangeConfig) -> f64 {
    let p = range_precision(pred, truth);
    let r = range_recall(pred, truth, config);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_extracted_correctly() {
        let labels = [false, true, true, false, true];
        let r = ranges_of(&labels);
        assert_eq!(r, vec![Range { start: 1, end: 3 }, Range { start: 4, end: 5 }]);
    }

    #[test]
    fn ranges_of_all_true() {
        assert_eq!(ranges_of(&[true, true]), vec![Range { start: 0, end: 2 }]);
        assert!(ranges_of(&[false, false]).is_empty());
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = [false, true, true, false];
        assert_eq!(range_recall(&truth, &truth, RangeConfig::default()), 1.0);
        assert_eq!(range_precision(&truth, &truth), 1.0);
        assert_eq!(range_f1(&truth, &truth, RangeConfig::default()), 1.0);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let truth = [true, true, true, true, false, false];
        let pred = [true, true, false, false, false, false];
        let r = range_recall(&pred, &truth, RangeConfig { alpha: 0.5 });
        // existence 1, overlap 0.5 -> 0.5*1 + 0.5*0.5 = 0.75
        assert!((r - 0.75).abs() < 1e-12);
        assert_eq!(range_precision(&pred, &truth), 1.0);
    }

    #[test]
    fn false_positive_range_hurts_precision() {
        let truth = [true, true, false, false];
        let pred = [true, true, false, true];
        let p = range_precision(&pred, &truth);
        assert!((p - 0.5).abs() < 1e-12, "p {p}");
    }

    #[test]
    fn pure_existence_alpha_one() {
        let truth = [true, true, true, true];
        let pred = [true, false, false, false];
        assert_eq!(range_recall(&pred, &truth, RangeConfig { alpha: 1.0 }), 1.0);
        let quarter = range_recall(&pred, &truth, RangeConfig { alpha: 0.0 });
        assert!((quarter - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(range_recall(&[false; 3], &[false; 3], RangeConfig::default()), 1.0);
        assert_eq!(range_precision(&[false; 3], &[false; 3]), 1.0);
        assert_eq!(range_precision(&[false; 3], &[true; 3]), 0.0);
    }

    #[test]
    fn range_f1_degenerate_zero() {
        let truth = [true, false];
        let pred = [false, true];
        assert_eq!(range_f1(&pred, &truth, RangeConfig::default()), 0.0);
    }
}

//! MAD-GAN (Li et al., ICANN 2019): an LSTM-based GAN where the anomaly
//! score combines reconstruction error with the discriminator's suspicion.
//!
//! The generator here is an LSTM autoencoder (standing in for the
//! original's latent-space inversion, which requires per-sample gradient
//! search); the discriminator is an LSTM binary classifier trained on real
//! windows vs. generator reconstructions. Score = λ·recon + (1−λ)·(1−D(x)).

use crate::common::{last_row_sq_error, score_windows, NeuralConfig};
use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use std::collections::HashSet;
use std::time::Instant;
use tranad_data::{Normalizer, SignalRng, TimeSeries, Windows};
use tranad_nn::layers::{Activation, FeedForward, Linear};
use tranad_nn::optim::AdamW;
use tranad_nn::rnn::LstmCell;
use tranad_nn::{Ctx, Fwd, InferCtx, Init, ParamStore, Value};
use tranad_tensor::Tensor;

struct MadGanState {
    store: ParamStore,
    enc_lstm: LstmCell,
    dec: FeedForward,
    disc_lstm: LstmCell,
    disc_head: Linear,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

/// The MAD-GAN detector.
pub struct MadGan {
    config: NeuralConfig,
    /// Reconstruction weight λ in the anomaly score (original uses 0.5–0.9).
    pub lambda: f64,
    state: Option<MadGanState>,
}

impl MadGan {
    /// Creates an (unfitted) MAD-GAN detector.
    pub fn new(config: NeuralConfig) -> Self {
        MadGan { config, lambda: 0.7, state: None }
    }

    fn last_hidden<F: Fwd>(lstm: &LstmCell, ctx: &F, w: &F::V) -> F::V {
        let d = w.shape();
        let (b, k) = (d.dim(0), d.dim(1));
        let h = lstm.hidden_size();
        lstm.run(ctx, w).reshape([b, k * h]).narrow_last((k - 1) * h, h)
    }

    fn reconstruct<F: Fwd>(state: &MadGanState, ctx: &F, w: &F::V) -> F::V {
        let latent = Self::last_hidden(&state.enc_lstm, ctx, w);
        state.dec.forward(ctx, &latent)
    }

    fn discriminate<F: Fwd>(state: &MadGanState, ctx: &F, w: &F::V) -> F::V {
        let latent = Self::last_hidden(&state.disc_lstm, ctx, w);
        state.disc_head.forward(ctx, &latent).sigmoid()
    }

    fn score_batches(&self, state: &MadGanState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        let k = self.config.window;
        let lambda = self.lambda;
        score_windows(&normalized, k, self.config.batch, |w| {
            let ctx = InferCtx::new(&state.store);
            let b = w.shape().dim(0);
            let wv = ctx.input(w.clone());
            let recon = Self::reconstruct(state, &ctx, &wv)
                .reshape([b, k, state.dims]);
            let d_out = Self::discriminate(state, &ctx, &wv);
            let errs = last_row_sq_error(&recon, w);
            errs.into_iter()
                .enumerate()
                .map(|(bi, e)| {
                    let suspicion = 1.0 - d_out.data()[bi];
                    e.iter()
                        .map(|&ed| lambda * ed + (1.0 - lambda) * suspicion / state.dims as f64)
                        .collect()
                })
                .collect()
        })
    }
}

impl Detector for MadGan {
    fn name(&self) -> &'static str {
        "MAD-GAN"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        crate::common::check_fit_input(train, &cfg)?;
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let enc_lstm = LstmCell::new(&mut store, &mut init, dims, cfg.hidden);
        let dec = FeedForward::new(
            &mut store,
            &mut init,
            &[cfg.hidden, cfg.hidden, cfg.window * dims],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );
        let disc_start = store.len();
        let disc_lstm = LstmCell::new(&mut store, &mut init, dims, cfg.hidden / 2);
        let disc_head = Linear::new(&mut store, &mut init, cfg.hidden / 2, 1);
        let disc_ids: HashSet<usize> = store.ids().skip(disc_start).map(|p| p.index()).collect();

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt_g = AdamW::new(cfg.lr);
        let mut opt_d = AdamW::new(cfg.lr);
        let mut rng = SignalRng::new(cfg.seed);
        let mut order: Vec<usize> = (0..windows.len()).collect();

        let mut state = MadGanState {
            store,
            enc_lstm,
            dec,
            disc_lstm,
            disc_head,
            normalizer,
            train_scores: Vec::new(),
            dims,
        };

        let mut secs = 0.0;
        for epoch in 0..cfg.epochs {
            let start = Instant::now();
            for i in (1..order.len()).rev() {
                let j = rng.index(0, i + 1);
                order.swap(i, j);
            }
            let visited = &order[..order.len().min(cfg.max_windows)];
            for batch in visited.chunks(cfg.batch) {
                let w = windows.batch(batch);
                let b = batch.len();
                let k = cfg.window;
                // Generator: reconstruct + fool the discriminator.
                {
                    let mut store = std::mem::take(&mut state.store);
                    let st = &state;
                    let disc_ids = disc_ids.clone();
                    let grads: Vec<_> = {
                        let ctx = Ctx::train(&store, cfg.seed ^ epoch as u64);
                        let wv = ctx.input(w.clone());
                        let recon_flat = Self::reconstruct(st, &ctx, &wv);
                        let target = ctx.input(crate::common::flatten_windows(&w));
                        let recon_loss = recon_flat.mse(&target);
                        // Adversarial: the discriminator should call the
                        // reconstruction "real" (1); gradient flows through
                        // the generator into the frozen-for-this-step
                        // discriminator weights, which we filter out below.
                        let fake = recon_flat.reshape([b, k, st.dims]);
                        let d_fake = Self::discriminate(st, &ctx, &fake);
                        let fool = d_fake.neg().add_scalar(1.0).square().mean_all();
                        let loss = recon_loss.add(&fool.scale(0.1));
                        loss.backward();
                        ctx.grads()
                            .into_iter()
                            .filter(|(id, _)| !disc_ids.contains(&id.index()))
                            .collect()
                    };
                    opt_g.step(&mut store, &grads);
                    state.store = store;
                }
                // Discriminator: real -> 1, reconstruction -> 0.
                {
                    let mut store = std::mem::take(&mut state.store);
                    let st = &state;
                    let disc_ids = disc_ids.clone();
                    let grads: Vec<_> = {
                        let ctx = Ctx::train(&store, cfg.seed ^ 0xD ^ epoch as u64);
                        let wv = ctx.input(w.clone());
                        // Detach the reconstruction: the discriminator step
                        // must not move generator weights.
                        let recon = ctx.input(
                            Self::reconstruct(st, &ctx, &wv)
                                .value()
                                .reshape([b, k, st.dims]),
                        );
                        let d_real = Self::discriminate(st, &ctx, &wv);
                        let d_fake = Self::discriminate(st, &ctx, &recon);
                        let ones = ctx.input(Tensor::ones(d_real.shape()));
                        let loss = d_real.sub(&ones).square().mean_all().add(&d_fake.square().mean_all());
                        loss.backward();
                        ctx.grads()
                            .into_iter()
                            .filter(|(id, _)| disc_ids.contains(&id.index()))
                            .collect()
                    };
                    opt_d.step(&mut store, &grads);
                    state.store = store;
                }
            }
            let seconds = start.elapsed().as_secs_f64();
            secs += seconds;
            rec.emit("baseline.epoch", |e| {
                e.u64("epoch", epoch as u64).f64("seconds", seconds);
            });
        }

        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        Ok(FitReport { seconds_per_epoch: secs / cfg.epochs.max(1) as f64, epochs: cfg.epochs })
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn madgan_detects_injected_anomalies() {
        let train = toy_series(300, 2, 31);
        let mut det = MadGan::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 1.5 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn discriminator_output_in_unit_interval() {
        let train = toy_series(200, 1, 32);
        let mut det = MadGan::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let scores = det.score(&train).unwrap();
        assert!(scores.iter().flatten().all(|&v| v.is_finite() && v >= 0.0));
    }
}

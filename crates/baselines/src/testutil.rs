//! Shared fixtures for the baseline detectors' tests.

use std::ops::Range;
use tranad_data::{SignalRng, TimeSeries};

/// A smooth multivariate sine mixture with light noise.
pub fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| (t as f64 / (8.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

/// A copy of `series` with a large level shift injected in dimension 0 over
/// a mid-series range; returns the corrupted copy and the anomalous range.
pub fn anomalous_copy(series: &TimeSeries, magnitude: f64) -> (TimeSeries, Range<usize>) {
    let mut test = series.clone();
    let start = series.len() / 2;
    let end = start + 8;
    for t in start..end {
        let v = test.get(t, 0);
        test.set(t, 0, v + magnitude);
    }
    (test, start..end)
}

//! The common interface every anomaly-detection method implements, so the
//! benchmark harness can sweep methods × datasets uniformly.
//!
//! Every lifecycle method is fallible: a method that cannot handle its
//! input (too short, wrong width, diverged training) reports a
//! [`DetectorError`] instead of aborting the whole benchmark grid, and
//! `fit` takes a [`Recorder`] so per-epoch progress lands in the trace.

use tranad_data::TimeSeries;
use tranad_telemetry::Recorder;

pub use tranad::DetectorError;

/// Training diagnostics shared by all methods (feeds Table 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct FitReport {
    /// Wall-clock seconds per epoch (for MERLIN: total discovery time, as
    /// in the paper's Table 5 footnote).
    pub seconds_per_epoch: f64,
    /// Number of epochs run.
    pub epochs: usize,
}

/// A multivariate time-series anomaly detector.
///
/// The lifecycle is `fit` on a raw (unnormalized) training series, then
/// `score` any number of test series. Scores are per-timestamp,
/// per-dimension, non-negative, and higher = more anomalous.
pub trait Detector {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fits the detector, tracing progress to `rec`. Must succeed before
    /// `score`.
    fn fit(&mut self, train: &TimeSeries, rec: &Recorder) -> Result<FitReport, DetectorError>;

    /// Per-dimension anomaly scores, `scores[t][d]`. Fails with
    /// [`DetectorError::NotFitted`] before a successful `fit`.
    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError>;

    /// Scores on the training series (the POT calibration sample). Fails
    /// with [`DetectorError::NotFitted`] before a successful `fit`.
    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError>;

    /// Optional method-specific labeling (e.g. LSTM-NDT's NDT thresholds).
    /// `None` means the harness applies the shared POT procedure.
    fn native_labels(&self, _test: &TimeSeries) -> Option<Vec<bool>> {
        None
    }
}

/// Aggregates per-dimension scores into a per-timestamp score (mean).
///
/// An empty or NaN-containing row means the detector produced no usable
/// score for that timestamp — previously this silently mapped to `0.0`
/// ("perfectly normal"), hiding upstream bugs; now it is
/// [`DetectorError::MalformedScores`].
pub fn aggregate_scores(scores: &[Vec<f64>]) -> Result<Vec<f64>, DetectorError> {
    scores
        .iter()
        .enumerate()
        .map(|(t, row)| {
            if row.is_empty() || row.iter().any(|v| v.is_nan()) {
                return Err(DetectorError::MalformedScores { timestamp: t });
            }
            Ok(row.iter().sum::<f64>() / row.len() as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_is_row_mean() {
        let s = vec![vec![1.0, 3.0], vec![0.0, 0.0]];
        assert_eq!(aggregate_scores(&s).unwrap(), vec![2.0, 0.0]);
    }

    #[test]
    fn aggregate_rejects_empty_rows() {
        let s: Vec<Vec<f64>> = vec![vec![1.0], vec![]];
        assert_eq!(
            aggregate_scores(&s).unwrap_err(),
            DetectorError::MalformedScores { timestamp: 1 }
        );
    }

    #[test]
    fn aggregate_rejects_nan_rows() {
        let s = vec![vec![1.0, f64::NAN]];
        assert_eq!(
            aggregate_scores(&s).unwrap_err(),
            DetectorError::MalformedScores { timestamp: 0 }
        );
    }
}

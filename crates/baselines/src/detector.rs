//! The common interface every anomaly-detection method implements, so the
//! benchmark harness can sweep methods × datasets uniformly.

use tranad_data::TimeSeries;

/// Training diagnostics shared by all methods (feeds Table 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct FitReport {
    /// Wall-clock seconds per epoch (for MERLIN: total discovery time, as
    /// in the paper's Table 5 footnote).
    pub seconds_per_epoch: f64,
    /// Number of epochs run.
    pub epochs: usize,
}

/// A multivariate time-series anomaly detector.
///
/// The lifecycle is `fit` on a raw (unnormalized) training series, then
/// `score` any number of test series. Scores are per-timestamp,
/// per-dimension, non-negative, and higher = more anomalous.
pub trait Detector {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fits the detector. Must be called before `score`.
    fn fit(&mut self, train: &TimeSeries) -> FitReport;

    /// Per-dimension anomaly scores, `scores[t][d]`.
    fn score(&self, test: &TimeSeries) -> Vec<Vec<f64>>;

    /// Scores on the training series (the POT calibration sample).
    fn train_scores(&self) -> &[Vec<f64>];

    /// Optional method-specific labeling (e.g. LSTM-NDT's NDT thresholds).
    /// `None` means the harness applies the shared POT procedure.
    fn native_labels(&self, _test: &TimeSeries) -> Option<Vec<bool>> {
        None
    }
}

/// Aggregates per-dimension scores into a per-timestamp score (mean).
pub fn aggregate_scores(scores: &[Vec<f64>]) -> Vec<f64> {
    scores
        .iter()
        .map(|row| row.iter().sum::<f64>() / row.len().max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_is_row_mean() {
        let s = vec![vec![1.0, 3.0], vec![0.0, 0.0]];
        assert_eq!(aggregate_scores(&s), vec![2.0, 0.0]);
    }

    #[test]
    fn aggregate_empty_rows() {
        let s: Vec<Vec<f64>> = vec![vec![]];
        assert_eq!(aggregate_scores(&s), vec![0.0]);
    }
}

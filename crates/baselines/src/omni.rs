//! OmniAnomaly (Su et al., KDD 2019): a stochastic recurrent network — a
//! GRU encoder feeding a variational latent, decoded back into the window.
//! The anomaly score is the reconstruction negative log-likelihood
//! (per-dimension squared error under a fixed-variance Gaussian). The
//! planar normalizing flow of the original is omitted; the stochastic
//! bottleneck is what drives the method's robustness on noisy data (WADI),
//! which survives this simplification.

use crate::common::{last_row_sq_error, score_windows, sgd_step, NeuralConfig};
use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use tranad_data::{Normalizer, SignalRng, TimeSeries, Windows};
use tranad_nn::layers::{Activation, FeedForward, Linear};
use tranad_nn::optim::AdamW;
use tranad_nn::rnn::GruCell;
use tranad_nn::{Fwd, InferCtx, Init, ParamStore, Value};
use tranad_tensor::Tensor;

struct OmniState {
    store: ParamStore,
    gru: GruCell,
    mu_head: Linear,
    logvar_head: Linear,
    decoder: FeedForward,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

/// The OmniAnomaly detector.
pub struct OmniAnomaly {
    config: NeuralConfig,
    /// KL divergence weight (β-VAE style; small keeps reconstructions sharp).
    pub kl_weight: f64,
    state: Option<OmniState>,
}

impl OmniAnomaly {
    /// Creates an (unfitted) OmniAnomaly detector.
    pub fn new(config: NeuralConfig) -> Self {
        OmniAnomaly { config, kl_weight: 0.01, state: None }
    }

    /// Encodes windows to `(mu, logvar)` via the GRU's final hidden state.
    fn encode<F: Fwd>(state: &OmniState, ctx: &F, w: &Tensor) -> (F::V, F::V) {
        let d = w.shape();
        let (b, k) = (d.dim(0), d.dim(1));
        let h = state.gru.hidden_size();
        let hs = state.gru.run(ctx, &ctx.input(w.clone()));
        let last = hs.reshape([b, k * h]).narrow_last((k - 1) * h, h);
        (
            state.mu_head.forward(ctx, &last),
            state.logvar_head.forward(ctx, &last),
        )
    }

    fn score_batches(&self, state: &OmniState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        let k = self.config.window;
        score_windows(&normalized, k, self.config.batch, |w| {
            // Deterministic inference: decode from the latent mean.
            let ctx = InferCtx::new(&state.store);
            let (mu, _) = Self::encode(state, &ctx, w);
            let recon = state.decoder.forward(&ctx, &mu);
            let b = w.shape().dim(0);
            let r3 = recon.reshape([b, k, state.dims]);
            last_row_sq_error(&r3, w)
        })
    }
}

impl Detector for OmniAnomaly {
    fn name(&self) -> &'static str {
        "OmniAnomaly"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let gru = GruCell::new(&mut store, &mut init, dims, cfg.hidden);
        let mu_head = Linear::new(&mut store, &mut init, cfg.hidden, cfg.latent);
        let logvar_head = Linear::new(&mut store, &mut init, cfg.hidden, cfg.latent);
        let decoder = FeedForward::new(
            &mut store,
            &mut init,
            &[cfg.latent, cfg.hidden, cfg.window * dims],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt = AdamW::new(cfg.lr);
        let mut noise_rng = SignalRng::new(cfg.seed ^ 0xF10);
        let kl_w = self.kl_weight;
        let state_holder = OmniState {
            store: ParamStore::new(), // placeholder, swapped below
            gru,
            mu_head,
            logvar_head,
            decoder,
            normalizer,
            train_scores: Vec::new(),
            dims,
        };
        let mut state = state_holder;
        state.store = store;

        let report = {
            let mut local_store = std::mem::take(&mut state.store);
            let st = &state;
            let report = crate::common::epoch_loop(&mut local_store, &windows, cfg, rec, |store, w, epoch| {
                let b = w.shape().dim(0);
                let latent = cfg.latent;
                let noise = Tensor::from_fn([b, latent], |_| noise_rng.normal());
                sgd_step(store, &mut opt, cfg.seed ^ epoch as u64, |ctx| {
                    let (mu, logvar) = Self::encode(st, ctx, w);
                    // Reparameterization: z = mu + exp(logvar/2) * eps.
                    let z = mu.add(&logvar.scale(0.5).exp().mul(&ctx.input(noise.clone())));
                    let recon = st.decoder.forward(ctx, &z);
                    let target = ctx.input(crate::common::flatten_windows(w));
                    let recon_loss = recon.mse(&target);
                    // KL(q||N(0,1)) = -0.5 * mean(1 + logvar - mu^2 - exp(logvar))
                    let kl = logvar
                        .add_scalar(1.0)
                        .sub(&mu.square())
                        .sub(&logvar.exp())
                        .mean_all()
                        .scale(-0.5);
                    recon_loss.add(&kl.scale(kl_w))
                })
            });
            state.store = local_store;
            report
        };

        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        report
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn omni_reconstructs_and_detects() {
        let train = toy_series(400, 2, 21);
        let mut det = OmniAnomaly::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 2.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn deterministic_scoring() {
        let train = toy_series(200, 1, 22);
        let mut det = OmniAnomaly::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        assert_eq!(det.score(&train).unwrap(), det.score(&train).unwrap());
    }
}

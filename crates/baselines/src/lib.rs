//! # tranad-baselines
//!
//! Every baseline method of the TranAD paper's evaluation (Table 2),
//! implemented on the same substrate as TranAD itself so training-time and
//! detection comparisons are apples-to-apples:
//!
//! | Module | Method | Core idea kept |
//! |---|---|---|
//! | [`merlin`] | MERLIN | parameter-free discord discovery |
//! | [`lstm_ndt`] | LSTM-NDT | LSTM forecasting + NDT thresholds |
//! | [`dagmm`] | DAGMM | autoencoder + GMM energy |
//! | [`omni`] | OmniAnomaly | GRU-VAE reconstruction probability |
//! | [`mscred`] | MSCRED | multi-scale signature matrices |
//! | [`madgan`] | MAD-GAN | LSTM GAN, recon + discriminator score |
//! | [`usad`] | USAD | two-decoder adversarial autoencoder |
//! | [`mtad_gat`] | MTAD-GAT | feature + time graph attention, GRU |
//! | [`caem`] | CAE-M | autoencoder + bidirectional LSTM memory |
//! | [`gdn`] | GDN | sensor graph + deviation normalization |
//! | [`iforest`] | Isolation Forest | random isolation trees |
//!
//! All expose the [`Detector`] trait; [`all_detectors`] builds the Table 2
//! roster. Simplifications relative to the original systems are documented
//! per module and in DESIGN.md.

pub mod caem;
pub mod common;
pub mod dagmm;
pub mod detector;
pub mod gdn;
pub mod gmm;
pub mod iforest;
pub mod lstm_ndt;
pub mod madgan;
pub mod merlin;
pub mod mscred;
pub mod mtad_gat;
pub mod omni;
pub mod tranad_adapter;

#[cfg(test)]
pub(crate) mod testutil;

pub use common::{NeuralConfig, NeuralConfigBuilder};
pub use detector::{aggregate_scores, Detector, DetectorError, FitReport};
pub use merlin::{Merlin, MerlinConfig};
pub use tranad_adapter::TranadDetector;

use tranad::TranadConfig;

/// Builds the full Table 2 method roster (excluding Isolation Forest,
/// which the paper dropped), each boxed behind the [`Detector`] trait.
pub fn all_detectors(neural: NeuralConfig, tranad_config: TranadConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(Merlin::new(MerlinConfig::optimized(10, 40))),
        Box::new(lstm_ndt::LstmNdt::new(neural)),
        Box::new(dagmm::Dagmm::new(neural)),
        Box::new(omni::OmniAnomaly::new(neural)),
        Box::new(mscred::Mscred::new(neural)),
        Box::new(madgan::MadGan::new(neural)),
        Box::new(usad::Usad::new(neural)),
        Box::new(mtad_gat::MtadGat::new(neural)),
        Box::new(caem::CaeM::new(neural)),
        Box::new(gdn::Gdn::new(neural)),
        Box::new(TranadDetector::new(tranad_config)),
    ]
}

pub mod usad;

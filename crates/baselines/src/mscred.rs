//! MSCRED (Zhang et al., AAAI 2019): encodes inter-sensor *signature
//! matrices* (pairwise correlations over windows at multiple scales) with a
//! convolutional recurrent autoencoder; anomalies are residuals of the
//! reconstructed signature matrix.
//!
//! This implementation keeps the signature-matrix core — per-window
//! pairwise inner products at multiple scales — and autoencodes them with a
//! feed-forward network (the ConvLSTM spatial prior matters for images;
//! signature matrices here are small). Per-dimension scores are the row
//! residuals of the reconstructed signature matrix, which is exactly how
//! MSCRED attributes anomalies to sensors. For high-dimensional datasets
//! the sensors are pooled into at most `max_channels` groups first — the
//! scalability ceiling the paper notes for MSCRED.

use crate::common::{score_windows, sgd_step, NeuralConfig};
use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use tranad_data::{Normalizer, TimeSeries, Windows};
use tranad_nn::layers::{Activation, FeedForward};
use tranad_nn::optim::AdamW;
use tranad_nn::{Fwd, InferCtx, Init, ParamStore};
use tranad_tensor::Tensor;

struct MscredState {
    store: ParamStore,
    autoencoder: FeedForward,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
    channels: usize,
    /// Sensor -> pooled channel map.
    channel_of: Vec<usize>,
    scales: Vec<usize>,
}

/// The MSCRED detector.
pub struct Mscred {
    config: NeuralConfig,
    /// Maximum signature-matrix side (sensors are average-pooled above it).
    pub max_channels: usize,
    state: Option<MscredState>,
}

impl Mscred {
    /// Creates an (unfitted) MSCRED detector.
    pub fn new(config: NeuralConfig) -> Self {
        Mscred { config, max_channels: 12, state: None }
    }

    /// Builds the multi-scale signature matrix for one window `[k, m]`,
    /// flattened: for each scale `s`, entry `(i, j)` is the inner product
    /// of channels `i` and `j` over the last `s` steps, normalized by `s`.
    fn signature(
        w: &Tensor,
        bi: usize,
        k: usize,
        dims: usize,
        channel_of: &[usize],
        channels: usize,
        scales: &[usize],
    ) -> Vec<f64> {
        // Pool sensors into channels per timestep.
        let mut pooled = vec![0.0; k * channels];
        let mut counts = vec![0usize; channels];
        for (d, &c) in channel_of.iter().enumerate() {
            counts[c] += 1;
            for t in 0..k {
                pooled[t * channels + c] += w.data()[(bi * k + t) * dims + d];
            }
        }
        for t in 0..k {
            for c in 0..channels {
                pooled[t * channels + c] /= counts[c].max(1) as f64;
            }
        }
        let mut sig = Vec::with_capacity(scales.len() * channels * channels);
        for &s in scales {
            let s = s.min(k);
            for i in 0..channels {
                for j in 0..channels {
                    let mut acc = 0.0;
                    for t in (k - s)..k {
                        acc += pooled[t * channels + i] * pooled[t * channels + j];
                    }
                    sig.push(acc / s as f64);
                }
            }
        }
        sig
    }

    fn score_batches(&self, state: &MscredState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        let k = self.config.window;
        score_windows(&normalized, k, self.config.batch, |w| {
            let b = w.shape().dim(0);
            let sig_len = state.scales.len() * state.channels * state.channels;
            let mut rows = Vec::with_capacity(b * sig_len);
            for bi in 0..b {
                rows.extend(Self::signature(
                    w,
                    bi,
                    k,
                    state.dims,
                    &state.channel_of,
                    state.channels,
                    &state.scales,
                ));
            }
            let input = Tensor::from_vec(rows, [b, sig_len]);
            let ctx = InferCtx::new(&state.store);
            let recon = state.autoencoder.forward(&ctx, &ctx.input(input.clone()));
            // Residual per channel: mean squared residual over its rows in
            // every scale, then spread back to the sensors in the channel.
            (0..b)
                .map(|bi| {
                    let mut chan_err = vec![0.0; state.channels];
                    for (si, _) in state.scales.iter().enumerate() {
                        let base = bi * sig_len + si * state.channels * state.channels;
                        for (i, ce) in chan_err.iter_mut().enumerate() {
                            for j in 0..state.channels {
                                let idx = base + i * state.channels + j;
                                let e = recon.data()[idx] - input.data()[idx];
                                *ce += e * e;
                            }
                        }
                    }
                    let denom = (state.scales.len() * state.channels) as f64;
                    state
                        .channel_of
                        .iter()
                        .map(|&c| chan_err[c] / denom)
                        .collect()
                })
                .collect()
        })
    }
}

impl Detector for Mscred {
    fn name(&self) -> &'static str {
        "MSCRED"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();
        let channels = dims.min(self.max_channels);
        let channel_of: Vec<usize> = (0..dims).map(|d| d * channels / dims).collect();
        let scales = vec![cfg.window, cfg.window / 2, cfg.window / 4]
            .into_iter()
            .filter(|&s| s >= 1)
            .collect::<Vec<_>>();
        let sig_len = scales.len() * channels * channels;

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let autoencoder = FeedForward::new(
            &mut store,
            &mut init,
            &[sig_len, cfg.hidden, cfg.latent, cfg.hidden, sig_len],
            Activation::Relu,
            Activation::Identity,
            0.0,
        );

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt = AdamW::new(cfg.lr);
        let k = cfg.window;
        let (co, ch, sc) = (channel_of.clone(), channels, scales.clone());
        let ae = &autoencoder;
        let report = crate::common::epoch_loop(&mut store, &windows, cfg, rec, |store, w, epoch| {
            let b = w.shape().dim(0);
            let mut rows = Vec::with_capacity(b * sig_len);
            for bi in 0..b {
                rows.extend(Self::signature(w, bi, k, dims, &co, ch, &sc));
            }
            let input = Tensor::from_vec(rows, [b, sig_len]);
            sgd_step(store, &mut opt, cfg.seed ^ epoch as u64, |ctx| {
                let x = ctx.input(input.clone());
                ae.forward(ctx, &x).mse(&x)
            })
        });

        let mut state = MscredState {
            store,
            autoencoder,
            normalizer,
            train_scores: Vec::new(),
            dims,
            channels,
            channel_of,
            scales,
        };
        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        report
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn mscred_detects_anomalies() {
        let train = toy_series(300, 3, 61);
        let mut det = Mscred::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 1.5 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn pooling_caps_signature_size() {
        let train = toy_series(150, 30, 62);
        let mut det = Mscred::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let st = det.state.as_ref().unwrap();
        assert!(st.channels <= 12);
        assert_eq!(st.channel_of.len(), 30);
        let scores = det.score(&train).unwrap();
        assert_eq!(scores[0].len(), 30);
    }
}

//! Shared training plumbing for the neural baselines: normalized window
//! iteration, epoch loops with timing, and flattened-window helpers.

use crate::detector::{DetectorError, FitReport};
use std::time::Instant;
use tranad_data::{Normalizer, SignalRng, TimeSeries, Windows};
use tranad_nn::optim::AdamW;
use tranad_nn::{Ctx, ParamId, ParamStore};
use tranad_telemetry::Recorder;
use tranad_tensor::{pool, Tensor, Var};

/// Common hyperparameters for the neural baselines. Values follow the
/// respective papers where they matter (window 10 to match §4; modest
/// hidden widths for the CPU regime).
#[derive(Debug, Clone, Copy)]
pub struct NeuralConfig {
    /// Sliding-window length.
    pub window: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Latent width (autoencoder bottleneck).
    pub latent: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// AdamW learning rate.
    pub lr: f64,
    /// Upper bound on training windows visited per epoch (random subsample
    /// each epoch); keeps wide datasets tractable on CPU.
    pub max_windows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        NeuralConfig {
            window: 10,
            hidden: 32,
            latent: 8,
            epochs: 8,
            batch: 128,
            lr: 0.005,
            max_windows: usize::MAX,
            seed: 42,
        }
    }
}

impl NeuralConfig {
    /// Small configuration for unit tests.
    pub fn fast() -> Self {
        NeuralConfig { epochs: 3, hidden: 16, batch: 64, ..Default::default() }
    }

    /// Starts a validating builder from the defaults.
    pub fn builder() -> NeuralConfigBuilder {
        NeuralConfigBuilder { config: NeuralConfig::default() }
    }

    /// Checks every field is in range.
    pub fn validate(&self) -> Result<(), DetectorError> {
        let bad = |msg: &str| Err(DetectorError::InvalidConfig(msg.to_string()));
        if self.window < 2 {
            return bad("window must be at least 2 (forecasters need history)");
        }
        if self.hidden < 1 || self.latent < 1 {
            return bad("hidden and latent widths must be at least 1");
        }
        if self.epochs < 1 {
            return bad("epochs must be at least 1");
        }
        if self.batch < 1 {
            return bad("batch must be at least 1");
        }
        if self.lr <= 0.0 || !self.lr.is_finite() {
            return bad("lr must be positive and finite");
        }
        if self.max_windows < 1 {
            return bad("max_windows must be at least 1");
        }
        Ok(())
    }
}

/// Validating builder for [`NeuralConfig`]; `build` rejects out-of-range
/// fields with [`DetectorError::InvalidConfig`].
#[derive(Debug, Clone)]
pub struct NeuralConfigBuilder {
    config: NeuralConfig,
}

macro_rules! neural_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $($(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.config.$name = $name;
            self
        })*
    };
}

impl NeuralConfigBuilder {
    neural_setters! {
        /// Sliding-window length.
        window: usize,
        /// Hidden width.
        hidden: usize,
        /// Latent width (autoencoder bottleneck).
        latent: usize,
        /// Training epochs.
        epochs: usize,
        /// Mini-batch size.
        batch: usize,
        /// AdamW learning rate.
        lr: f64,
        /// Upper bound on training windows visited per epoch.
        max_windows: usize,
        /// RNG seed.
        seed: u64,
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<NeuralConfig, DetectorError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Shared `fit` input check: validates the config and requires enough
/// timestamps to form at least one training window.
pub fn check_fit_input(
    train: &TimeSeries,
    config: &NeuralConfig,
) -> Result<(), DetectorError> {
    config.validate()?;
    if train.is_empty() {
        return Err(DetectorError::EmptySeries);
    }
    if train.len() < config.window {
        return Err(DetectorError::SeriesTooShort { needed: config.window, got: train.len() });
    }
    Ok(())
}

/// Fitted preprocessing state shared by the neural baselines.
pub struct Fitted {
    /// The normalizer fitted on the training series.
    pub normalizer: Normalizer,
    /// Scores on the training series.
    pub train_scores: Vec<Vec<f64>>,
}

/// Runs a generic epoch loop over shuffled window batches.
///
/// `step` receives `(store, window_batch [b,k,m], epoch)` and returns the
/// batch loss; it owns its own backward/optimizer logic via the returned
/// gradient application. Emits one `baseline.epoch` event per epoch (mean
/// batch loss, wall time) and fails with [`DetectorError::NonFiniteLoss`]
/// when training diverges instead of poisoning the scores with NaN.
pub fn epoch_loop(
    store: &mut ParamStore,
    windows: &Windows,
    config: NeuralConfig,
    rec: &Recorder,
    mut step: impl FnMut(&mut ParamStore, &Tensor, usize) -> f64,
) -> Result<FitReport, DetectorError> {
    let _scope = rec.span_scope();
    let mut rng = SignalRng::new(config.seed ^ 0xBA5E);
    let mut order: Vec<usize> = (0..windows.len()).collect();
    let mut secs = 0.0;
    for epoch in 0..config.epochs {
        let _epoch_span = tranad_telemetry::span::enter("baseline.epoch");
        // Shuffle before starting the clock: seconds_per_epoch reports
        // training time (Table 5), not batch-order bookkeeping.
        for i in (1..order.len()).rev() {
            let j = rng.index(0, i + 1);
            order.swap(i, j);
        }
        let start = Instant::now();
        let visited = &order[..order.len().min(config.max_windows)];
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for batch in visited.chunks(config.batch) {
            let w = windows.batch(batch);
            loss_sum += step(store, &w, epoch);
            batches += 1;
        }
        let seconds = start.elapsed().as_secs_f64();
        secs += seconds;
        let loss = loss_sum / batches.max(1) as f64;
        if !loss.is_finite() {
            return Err(DetectorError::NonFiniteLoss { epoch });
        }
        rec.emit("baseline.epoch", |e| {
            e.u64("epoch", epoch as u64).f64("loss", loss).f64("seconds", seconds);
        });
    }
    Ok(FitReport {
        seconds_per_epoch: secs / config.epochs.max(1) as f64,
        epochs: config.epochs,
    })
}

/// One AdamW update given a closure producing the scalar loss; returns the
/// loss value.
pub fn sgd_step(
    store: &mut ParamStore,
    opt: &mut AdamW,
    seed: u64,
    forward: impl FnOnce(&Ctx) -> Var,
) -> f64 {
    let (loss, grads): (f64, Vec<(ParamId, Tensor)>) = {
        let ctx = Ctx::train(store, seed);
        let loss = forward(&ctx);
        loss.backward();
        (loss.value().item(), ctx.grads())
    };
    opt.step(store, &grads);
    loss
}

/// Splits `[b, k, m]` windows into `([b, k-1, m]` history, `[b, m]` target)
/// for the forecasting baselines (LSTM-NDT, MTAD-GAT, GDN).
pub fn split_history(w: &Tensor, k: usize, m: usize) -> (Tensor, Tensor) {
    assert!(k >= 2, "need at least one history step");
    let b = w.shape().dim(0);
    let mut hist = Vec::with_capacity(b * (k - 1) * m);
    let mut target = Vec::with_capacity(b * m);
    for bi in 0..b {
        let base = bi * k * m;
        hist.extend_from_slice(&w.data()[base..base + (k - 1) * m]);
        target.extend_from_slice(&w.data()[base + (k - 1) * m..base + k * m]);
    }
    (
        Tensor::from_vec(hist, [b, k - 1, m]),
        Tensor::from_vec(target, [b, m]),
    )
}

/// Flattens a `[b, k, m]` window batch into `[b, k*m]` rows.
pub fn flatten_windows(w: &Tensor) -> Tensor {
    let d = w.shape();
    assert_eq!(d.rank(), 3, "expected [b, k, m]");
    w.reshape([d.dim(0), d.dim(1) * d.dim(2)])
}

/// Per-dimension squared error between a reconstruction and the target's
/// final window row: `out[b][d] = (recon[b, last, d] - w[b, last, d])^2`.
/// `recon` may be `[b, k, m]` (full window) or `[b, m]` (last row only).
pub fn last_row_sq_error(recon: &Tensor, w: &Tensor) -> Vec<Vec<f64>> {
    let d = w.shape();
    let (b, k, m) = (d.dim(0), d.dim(1), d.dim(2));
    let mut out = Vec::with_capacity(b);
    let recon_full = recon.shape().rank() == 3;
    for bi in 0..b {
        let w_base = (bi * k + (k - 1)) * m;
        let r_base = if recon_full { (bi * k + (k - 1)) * m } else { bi * m };
        out.push(
            (0..m)
                .map(|di| {
                    let e = recon.data()[r_base + di] - w.data()[w_base + di];
                    e * e
                })
                .collect(),
        );
    }
    out
}

/// Scores a series with a per-batch closure mapping `[b, k, m]` windows to
/// per-dimension scores. Batches are independent (the closure builds its
/// own eval context per call), so they run on the thread pool; batch
/// boundaries depend only on the series length and `batch`, never on the
/// thread count, so results are identical for any pool size.
pub fn score_windows(
    series: &TimeSeries,
    window: usize,
    batch: usize,
    f: impl Fn(&Tensor) -> Vec<Vec<f64>> + Sync,
) -> Vec<Vec<f64>> {
    let windows = Windows::borrowed(series, window);
    let n = windows.len();
    let bs = batch.max(1);
    let mut slots: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n.div_ceil(bs)];
    pool::parallel_chunks_mut(&mut slots, 1, |ci, slot| {
        let _fwd = tranad_telemetry::span::enter("infer.forward");
        let start = ci * bs;
        slot[0] = f(&windows.batch_range(start, (start + bs).min(n)));
    });
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_preserves_order() {
        let w = Tensor::from_fn([2, 3, 2], |i| i as f64);
        let f = flatten_windows(&w);
        assert_eq!(f.shape().dims(), &[2, 6]);
        assert_eq!(f.data(), w.data());
    }

    #[test]
    fn last_row_error_full_window() {
        let w = Tensor::from_fn([1, 2, 2], |i| i as f64); // last row [2, 3]
        let recon = Tensor::zeros([1, 2, 2]);
        let e = last_row_sq_error(&recon, &w);
        assert_eq!(e, vec![vec![4.0, 9.0]]);
    }

    #[test]
    fn last_row_error_row_only() {
        let w = Tensor::from_fn([1, 2, 2], |i| i as f64);
        let recon = Tensor::from_vec(vec![2.0, 2.0], [1, 2]);
        let e = last_row_sq_error(&recon, &w);
        assert_eq!(e, vec![vec![0.0, 1.0]]);
    }

    #[test]
    fn score_windows_covers_series() {
        let s = TimeSeries::from_columns(&[(0..25).map(|t| t as f64).collect()]);
        let scores = score_windows(&s, 4, 8, |w| {
            vec![vec![0.0]; w.shape().dim(0)]
        });
        assert_eq!(scores.len(), 25);
    }
}

//! LSTM-NDT (Hundman et al., KDD 2018): an LSTM forecaster scoring
//! next-step prediction errors, thresholded with Non-parametric Dynamic
//! Thresholding rather than POT.

use crate::common::{check_fit_input, score_windows, sgd_step, split_history, NeuralConfig};
use crate::detector::{aggregate_scores, Detector, DetectorError, FitReport};
use std::time::Instant;
use tranad_data::{Normalizer, SignalRng, TimeSeries, Windows};
use tranad_evt::{Ndt, NdtConfig};
use tranad_nn::layers::Linear;
use tranad_nn::optim::AdamW;
use tranad_nn::rnn::LstmCell;
use tranad_nn::{Fwd, InferCtx, Init, ParamStore};
use tranad_telemetry::Recorder;
use tranad_tensor::Tensor;


struct LstmNdtState {
    store: ParamStore,
    lstm: LstmCell,
    head: Linear,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

/// The LSTM-NDT detector.
pub struct LstmNdt {
    config: NeuralConfig,
    state: Option<LstmNdtState>,
}

impl LstmNdt {
    /// Creates an (unfitted) LSTM-NDT detector.
    pub fn new(config: NeuralConfig) -> Self {
        LstmNdt { config, state: None }
    }

    /// Forecast error scores: the model sees `w[.., ..k-1, ..]` and predicts
    /// the final row; the squared error per dimension is the score.
    fn score_batches(&self, state: &LstmNdtState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        let k = self.config.window;
        score_windows(&normalized, k, self.config.batch, |w| {
            let ctx = InferCtx::new(&state.store);
            let d = w.shape();
            let (b, m) = (d.dim(0), d.dim(2));
            let (history, target) = split_history(w, k, m);
            let hs = state.lstm.run(&ctx, &ctx.input(history));
            let last = last_hidden(&hs, b, k - 1, state.lstm.hidden_size());
            let pred = state.head.forward(&ctx, &ctx.input(last));
            (0..b)
                .map(|bi| {
                    (0..m)
                        .map(|di| {
                            let e = pred.data()[bi * m + di] - target.data()[bi * m + di];
                            e * e
                        })
                        .collect()
                })
                .collect()
        })
    }
}

/// Extracts the final timestep's hidden state from `[b, len, h]`.
fn last_hidden(hs: &Tensor, b: usize, len: usize, h: usize) -> Tensor {
    let mut out = Vec::with_capacity(b * h);
    for bi in 0..b {
        let base = (bi * len + (len - 1)) * h;
        out.extend_from_slice(&hs.data()[base..base + h]);
    }
    Tensor::from_vec(out, [b, h])
}

impl Detector for LstmNdt {
    fn name(&self) -> &'static str {
        "LSTM-NDT"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        check_fit_input(train, &cfg)?;
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let lstm = LstmCell::new(&mut store, &mut init, dims, cfg.hidden);
        let head = Linear::new(&mut store, &mut init, cfg.hidden, dims);

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt = AdamW::new(cfg.lr);
        let mut rng = SignalRng::new(cfg.seed);
        let mut order: Vec<usize> = (0..windows.len()).collect();
        let mut secs = 0.0;
        for epoch in 0..cfg.epochs {
            let start = Instant::now();
            for i in (1..order.len()).rev() {
                let j = rng.index(0, i + 1);
                order.swap(i, j);
            }
            let visited = &order[..order.len().min(cfg.max_windows)];
            let mut loss_sum = 0.0;
            let mut batches = 0usize;
            for batch in visited.chunks(cfg.batch) {
                let w = windows.batch(batch);
                let (history, target) = split_history(&w, cfg.window, dims);
                let b = batch.len();
                let hidden = cfg.hidden;
                let lstm_ref = &lstm;
                let head_ref = &head;
                loss_sum += sgd_step(&mut store, &mut opt, cfg.seed ^ epoch as u64, |ctx| {
                    let hs = lstm_ref.run(ctx, &ctx.input(history.clone()));
                    // Differentiable slice of the final hidden state.
                    let last = hs
                        .reshape([b, (cfg.window - 1) * hidden])
                        .narrow_last((cfg.window - 2) * hidden, hidden);
                    let pred = head_ref.forward(ctx, &last);
                    pred.mse(&ctx.input(target.clone()))
                });
                batches += 1;
            }
            let seconds = start.elapsed().as_secs_f64();
            secs += seconds;
            let loss = loss_sum / batches.max(1) as f64;
            if !loss.is_finite() {
                return Err(DetectorError::NonFiniteLoss { epoch });
            }
            rec.emit("baseline.epoch", |e| {
                e.u64("epoch", epoch as u64).f64("loss", loss).f64("seconds", seconds);
            });
        }

        let mut state = LstmNdtState {
            store,
            lstm,
            head,
            normalizer,
            train_scores: Vec::new(),
            dims,
        };
        state.train_scores = self.score_batches(&state, train);
        let _ = state.dims;
        self.state = Some(state);
        Ok(FitReport { seconds_per_epoch: secs / cfg.epochs.max(1) as f64, epochs: cfg.epochs })
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }

    /// NDT thresholding of the aggregate error sequence — the method's own
    /// labeling strategy, which the paper credits for its uneven results.
    fn native_labels(&self, test: &TimeSeries) -> Option<Vec<bool>> {
        let scores = aggregate_scores(&self.score(test).ok()?).ok()?;
        let ndt = Ndt::fit(&scores, NdtConfig::default());
        Some(ndt.label(&scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn forecaster_learns_sine() {
        let train = toy_series(400, 1, 7);
        let mut det = LstmNdt::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let scores = aggregate_scores(det.train_scores().unwrap()).unwrap();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean < 0.1, "forecast error too high: {mean}");
    }

    #[test]
    fn anomalies_score_higher() {
        let train = toy_series(400, 2, 8);
        let mut det = LstmNdt::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 3.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn native_labels_use_ndt() {
        let train = toy_series(300, 1, 9);
        let mut det = LstmNdt::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 6.0);
        let labels = det.native_labels(&test).expect("LSTM-NDT labels natively");
        assert!(range.clone().any(|t| labels[t]), "anomaly not flagged");
        let fp = labels[..30].iter().filter(|&&b| b).count();
        assert!(fp < 5, "too many false positives: {fp}");
    }

    #[test]
    fn split_history_shapes() {
        let w = Tensor::from_fn([2, 4, 3], |i| i as f64);
        let (h, t) = split_history(&w, 4, 3);
        assert_eq!(h.shape().dims(), &[2, 3, 3]);
        assert_eq!(t.shape().dims(), &[2, 3]);
        assert_eq!(t.data()[0], 9.0); // first batch, last row starts at 3*3
    }
}

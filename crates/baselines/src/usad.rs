//! USAD (Audibert et al., KDD 2020): an autoencoder with one shared encoder
//! and two decoders trained in an adversarial game — the closest prior art
//! to TranAD's training loop.
//!
//! Phase semantics follow the USAD paper: with `AE1(w) = D1(E(w))` and
//! `AE2(w) = D2(E(w))`, at epoch `n` decoder 1 minimizes
//! `(1/n)‖AE1(w)−w‖ + (1−1/n)‖AE2(AE1(w))−w‖` and decoder 2 minimizes
//! `(1/n)‖AE2(w)−w‖ − (1−1/n)‖AE2(AE1(w))−w‖`. The anomaly score is
//! `α‖AE1(w)−w‖ + β‖AE2(AE1(w))−w‖` (α = β = 0.5 here).

use crate::common::{flatten_windows, last_row_sq_error, score_windows, sgd_step, NeuralConfig};
use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use std::collections::HashSet;
use std::time::Instant;
use tranad_data::{Normalizer, SignalRng, TimeSeries, Windows};
use tranad_nn::layers::{Activation, FeedForward};
use tranad_nn::optim::AdamW;
use tranad_nn::{Ctx, Fwd, InferCtx, Init, ParamStore};

struct UsadState {
    store: ParamStore,
    encoder: FeedForward,
    decoder1: FeedForward,
    decoder2: FeedForward,
    d2_ids: HashSet<usize>,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

/// The USAD detector.
pub struct Usad {
    config: NeuralConfig,
    state: Option<UsadState>,
}

impl Usad {
    /// Creates an (unfitted) USAD detector.
    pub fn new(config: NeuralConfig) -> Self {
        Usad { config, state: None }
    }

    fn forward<F: Fwd>(state: &UsadState, ctx: &F, flat: &F::V) -> (F::V, F::V, F::V) {
        let z = state.encoder.forward(ctx, flat);
        let ae1 = state.decoder1.forward(ctx, &z);
        let ae2 = state.decoder2.forward(ctx, &z);
        // AE2(AE1(w)): re-encode decoder 1's reconstruction.
        let z2 = state.encoder.forward(ctx, &ae1);
        let ae2_ae1 = state.decoder2.forward(ctx, &z2);
        (ae1, ae2, ae2_ae1)
    }

    fn score_batches(&self, state: &UsadState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        let k = self.config.window;
        score_windows(&normalized, k, self.config.batch, |w| {
            let ctx = InferCtx::new(&state.store);
            let flat = ctx.input(flatten_windows(w));
            let (ae1, _, ae2_ae1) = Self::forward(state, &ctx, &flat);
            let b = w.shape().dim(0);
            let r1 = ae1.reshape([b, k, state.dims]);
            let r2 = ae2_ae1.reshape([b, k, state.dims]);
            let e1 = last_row_sq_error(&r1, w);
            let e2 = last_row_sq_error(&r2, w);
            e1.iter()
                .zip(&e2)
                .map(|(a, b)| a.iter().zip(b).map(|(x, y)| 0.5 * x + 0.5 * y).collect())
                .collect()
        })
    }
}

impl Detector for Usad {
    fn name(&self) -> &'static str {
        "USAD"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        crate::common::check_fit_input(train, &cfg)?;
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();
        let in_dim = cfg.window * dims;

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let encoder = FeedForward::new(
            &mut store,
            &mut init,
            &[in_dim, cfg.hidden, cfg.latent],
            Activation::Relu,
            Activation::Relu,
            0.0,
        );
        let decoder1 = FeedForward::new(
            &mut store,
            &mut init,
            &[cfg.latent, cfg.hidden, in_dim],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );
        let d2_start = store.len();
        let decoder2 = FeedForward::new(
            &mut store,
            &mut init,
            &[cfg.latent, cfg.hidden, in_dim],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );
        let d2_ids: HashSet<usize> = store.ids().skip(d2_start).map(|p| p.index()).collect();

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt1 = AdamW::new(cfg.lr);
        let mut opt2 = AdamW::new(cfg.lr);
        let mut rng = SignalRng::new(cfg.seed);
        let mut order: Vec<usize> = (0..windows.len()).collect();

        let mut state = UsadState {
            store,
            encoder,
            decoder1,
            decoder2,
            d2_ids,
            normalizer,
            train_scores: Vec::new(),
            dims,
        };

        let mut secs = 0.0;
        for epoch in 0..cfg.epochs {
            let start = Instant::now();
            for i in (1..order.len()).rev() {
                let j = rng.index(0, i + 1);
                order.swap(i, j);
            }
            let n = (epoch + 1) as f64;
            let (w_n, w_adv) = (1.0 / n, 1.0 - 1.0 / n);
            let visited = &order[..order.len().min(cfg.max_windows)];
            let mut loss_sum = 0.0;
            let mut batches = 0usize;
            for batch in visited.chunks(cfg.batch) {
                let w = windows.batch(batch);
                let flat = flatten_windows(&w);
                // Decoder-1 (and encoder) update.
                let d2_ids = state.d2_ids.clone();
                {
                    let mut store = std::mem::take(&mut state.store);
                    loss_sum += sgd_step(&mut store, &mut opt1, cfg.seed ^ epoch as u64, |ctx| {
                        let f = ctx.input(flat.clone());
                        let target = ctx.input(flat.clone());
                        let (ae1, _, ae2_ae1) = Self::forward(&state, ctx, &f);
                        ae1.mse(&target)
                            .scale(w_n)
                            .add(&ae2_ae1.mse(&target).scale(w_adv))
                    });
                    state.store = store;
                }
                // Decoder-2 update (adversarial).
                {
                    let (grads, _) = {
                        let ctx = Ctx::train(&state.store, cfg.seed ^ 0xD2 ^ epoch as u64);
                        let f = ctx.input(flat.clone());
                        let target = ctx.input(flat.clone());
                        let (_, ae2, ae2_ae1) = Self::forward(&state, &ctx, &f);
                        let loss = ae2
                            .mse(&target)
                            .scale(w_n)
                            .sub(&ae2_ae1.mse(&target).scale(w_adv));
                        loss.backward();
                        (
                            ctx.grads()
                                .into_iter()
                                .filter(|(id, _)| d2_ids.contains(&id.index()))
                                .collect::<Vec<_>>(),
                            loss.value().item(),
                        )
                    };
                    opt2.step(&mut state.store, &grads);
                }
                batches += 1;
            }
            let seconds = start.elapsed().as_secs_f64();
            secs += seconds;
            let loss = loss_sum / batches.max(1) as f64;
            if !loss.is_finite() {
                return Err(DetectorError::NonFiniteLoss { epoch });
            }
            rec.emit("baseline.epoch", |e| {
                e.u64("epoch", epoch as u64).f64("loss", loss).f64("seconds", seconds);
            });
        }

        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        Ok(FitReport { seconds_per_epoch: secs / cfg.epochs.max(1) as f64, epochs: cfg.epochs })
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn usad_separates_anomalies() {
        let train = toy_series(400, 2, 1);
        let mut det = Usad::new(NeuralConfig::fast());
        let report = det.fit(&train, &Recorder::disabled()).unwrap();
        assert!(report.seconds_per_epoch > 0.0);
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 3.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn scores_match_series_length() {
        let train = toy_series(200, 3, 2);
        let mut det = Usad::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let scores = det.score(&train).unwrap();
        assert_eq!(scores.len(), 200);
        assert_eq!(scores[0].len(), 3);
        assert_eq!(det.train_scores().unwrap().len(), 200);
    }

    #[test]
    fn score_before_fit_errors() {
        let err = Usad::new(NeuralConfig::fast()).score(&toy_series(50, 1, 3)).unwrap_err();
        assert_eq!(err, DetectorError::NotFitted);
    }
}

//! MERLIN (Nakamura et al., ICDM 2020): parameter-free discovery of
//! arbitrary-length discords, used as the paper's classical baseline and
//! reproduced in two configurations for Table 7:
//!
//! - [`MerlinConfig::reference`]: an exhaustive nearest-neighbor scan over a
//!   dense length grid — standing in for the original MATLAB implementation
//!   the paper compares against;
//! - [`MerlinConfig::optimized`]: the same discord semantics with early
//!   abandoning and a sparse length grid — standing in for the paper's
//!   faster Python reimplementation.
//!
//! Scores: for every subsequence length in the grid we compute the
//! z-normalized nearest-non-overlapping-neighbor distance profile (the
//! discord score of Yankov et al.); each timestamp receives the maximum
//! profile value over the windows covering it, normalized per length.
//! MERLIN is a univariate method; on multivariate data we follow the
//! paper's observation that it "is unable to scale effectively" and run it
//! per-dimension on a capped number of channels (plus the cross-dimension
//! mean), which preserves its Table 2 behaviour: strong on NAB/UCR, weak on
//! the wide datasets.

use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use std::time::Instant;
use tranad_data::TimeSeries;

/// MERLIN configuration.
#[derive(Debug, Clone, Copy)]
pub struct MerlinConfig {
    /// Minimum discord length (inclusive).
    pub min_len: usize,
    /// Maximum discord length (inclusive).
    pub max_len: usize,
    /// Number of lengths sampled from `[min_len, max_len]`.
    pub n_lengths: usize,
    /// Early abandoning of distance computations (the optimization the
    /// paper's reimplementation adds).
    pub early_abandon: bool,
    /// Maximum number of dimensions scanned individually on multivariate
    /// data; remaining dimensions share the mean-channel profile.
    pub max_dims: usize,
}

impl MerlinConfig {
    /// The exhaustive "original implementation" stand-in.
    pub fn reference(min_len: usize, max_len: usize) -> Self {
        MerlinConfig { min_len, max_len, n_lengths: 8, early_abandon: false, max_dims: 4 }
    }

    /// The optimized reimplementation.
    pub fn optimized(min_len: usize, max_len: usize) -> Self {
        MerlinConfig { min_len, max_len, n_lengths: 3, early_abandon: true, max_dims: 4 }
    }

    fn lengths(&self) -> Vec<usize> {
        assert!(self.min_len >= 3 && self.max_len >= self.min_len, "bad length range");
        if self.n_lengths <= 1 || self.min_len == self.max_len {
            return vec![self.min_len];
        }
        let n = self.n_lengths;
        (0..n)
            .map(|i| {
                self.min_len + (self.max_len - self.min_len) * i / (n - 1)
            })
            .collect()
    }
}

impl Default for MerlinConfig {
    fn default() -> Self {
        MerlinConfig::optimized(10, 40)
    }
}

/// The MERLIN discord detector.
pub struct Merlin {
    config: MerlinConfig,
    train_scores: Vec<Vec<f64>>,
    /// Total discovery time on the training series (Table 5 reports this
    /// in place of a training time).
    pub discovery_seconds: f64,
}

impl Merlin {
    /// Creates a detector with the given configuration.
    pub fn new(config: MerlinConfig) -> Self {
        Merlin { config, train_scores: Vec::new(), discovery_seconds: 0.0 }
    }

    fn score_series(&self, series: &TimeSeries) -> Vec<Vec<f64>> {
        let n = series.len();
        let m = series.dims();
        let scanned = m.min(self.config.max_dims);
        // Shared fallback profile from the cross-dimension mean channel.
        let mean_channel: Vec<f64> = (0..n)
            .map(|t| series.row(t).iter().sum::<f64>() / m as f64)
            .collect();
        let fallback = if scanned < m {
            self.channel_profile(&mean_channel)
        } else {
            Vec::new()
        };
        let mut per_dim: Vec<Vec<f64>> = Vec::with_capacity(m);
        for d in 0..m {
            if d < scanned {
                per_dim.push(self.channel_profile(&series.column(d)));
            } else {
                per_dim.push(fallback.clone());
            }
        }
        // Transpose to [t][d].
        (0..n).map(|t| per_dim.iter().map(|col| col[t]).collect()).collect()
    }

    /// Per-timestamp discord score for one channel: max over lengths of the
    /// normalized nearest-neighbor distance of the windows covering `t`.
    fn channel_profile(&self, x: &[f64]) -> Vec<f64> {
        let n = x.len();
        let mut out = vec![0.0; n];
        for &l in &self.config.lengths() {
            if n < 2 * l {
                continue;
            }
            let profile = nn_distance_profile(x, l, self.config.early_abandon);
            // Normalize so different lengths are comparable (distance grows
            // with sqrt(L)).
            let norm = 1.0 / (l as f64).sqrt();
            for (start, &dist) in profile.iter().enumerate() {
                let v = dist * norm;
                for o in &mut out[start..(start + l).min(n)] {
                    if v > *o {
                        *o = v;
                    }
                }
            }
        }
        out
    }
}

impl Detector for Merlin {
    fn name(&self) -> &'static str {
        "MERLIN"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        // MERLIN needs no training; the paper reports its test-set discord
        // discovery time as the Table 5 entry. We time discovery on the
        // training series here to populate the calibration scores.
        if train.is_empty() {
            return Err(DetectorError::EmptySeries);
        }
        let start = Instant::now();
        self.train_scores = self.score_series(train);
        self.discovery_seconds = start.elapsed().as_secs_f64();
        rec.emit("baseline.fit", |e| {
            e.str("method", "MERLIN").f64("seconds", self.discovery_seconds);
        });
        Ok(FitReport { seconds_per_epoch: self.discovery_seconds, epochs: 1 })
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        if self.train_scores.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        Ok(self.score_series(test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        if self.train_scores.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        Ok(&self.train_scores)
    }

    /// MERLIN's native labeling: a test subsequence is a discord-anomaly if
    /// its nearest-neighbor distance exceeds anything observed on the
    /// anomaly-free training series (per channel). This matches MERLIN's
    /// own semantics — discords, not tail-risk thresholds — and is how the
    /// paper evaluates it (Appendix A).
    fn native_labels(&self, test: &TimeSeries) -> Option<Vec<bool>> {
        if self.train_scores.is_empty() {
            return None;
        }
        let m = test.dims();
        let mut ceilings = vec![0.0f64; m];
        for row in &self.train_scores {
            for (c, &v) in ceilings.iter_mut().zip(row) {
                *c = c.max(v);
            }
        }
        let scores = self.score_series(test);
        Some(
            scores
                .iter()
                .map(|row| {
                    row.iter()
                        .zip(&ceilings)
                        .any(|(&s, &c)| s > c * 1.001 + 1e-12)
                })
                .collect(),
        )
    }
}

/// Z-normalized Euclidean distance from each subsequence of length `l` to
/// its nearest non-overlapping neighbor (exclusion zone of `l`).
fn nn_distance_profile(x: &[f64], l: usize, early_abandon: bool) -> Vec<f64> {
    let n_sub = x.len() - l + 1;
    // Precompute per-subsequence mean and std via prefix sums.
    let mut prefix = vec![0.0; x.len() + 1];
    let mut prefix_sq = vec![0.0; x.len() + 1];
    for (i, &v) in x.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    // Floor per-subsequence std at a fraction of the channel's global std:
    // on piecewise-constant telemetry, raw z-normalization of a flat
    // subsequence amplifies sensor noise into garbage distances and hides
    // genuine level changes.
    let n_f = x.len() as f64;
    let global_mean = prefix[x.len()] / n_f;
    let global_std =
        (prefix_sq[x.len()] / n_f - global_mean * global_mean).max(0.0).sqrt();
    let std_floor = (0.05 * global_std).max(1e-8);
    let stats: Vec<(f64, f64)> = (0..n_sub)
        .map(|i| {
            let s = prefix[i + l] - prefix[i];
            let sq = prefix_sq[i + l] - prefix_sq[i];
            let mean = s / l as f64;
            let var = (sq / l as f64 - mean * mean).max(0.0);
            (mean, var.sqrt().max(std_floor))
        })
        .collect();

    let mut out = vec![f64::INFINITY; n_sub];
    for i in 0..n_sub {
        let (mi, si) = stats[i];
        let mut best = out[i];
        for j in 0..n_sub {
            // Exclusion zone: trivial matches share the window.
            if j.abs_diff(i) < l {
                continue;
            }
            let (mj, sj) = stats[j];
            let mut acc = 0.0;
            let mut abandoned = false;
            for k in 0..l {
                let a = (x[i + k] - mi) / si;
                let b = (x[j + k] - mj) / sj;
                let d = a - b;
                acc += d * d;
                if early_abandon && acc >= best {
                    abandoned = true;
                    break;
                }
            }
            if !abandoned && acc < best {
                best = acc;
            }
        }
        out[i] = if best.is_finite() { best.sqrt() } else { 0.0 };
    }
    out
}

/// A discovered discord: the most unusual subsequence at one length.
#[derive(Debug, Clone, Copy)]
pub struct Discord {
    /// Start index of the discord subsequence.
    pub start: usize,
    /// Subsequence length.
    pub length: usize,
    /// Nearest-neighbor distance (z-normalized).
    pub distance: f64,
}

/// Finds the top discord at each configured length — MERLIN's headline
/// output (used by tests and the Table 7 harness).
pub fn find_discords(x: &[f64], config: MerlinConfig) -> Vec<Discord> {
    config
        .lengths()
        .into_iter()
        .filter(|&l| x.len() >= 2 * l)
        .map(|l| {
            let profile = nn_distance_profile(x, l, config.early_abandon);
            let (start, &distance) = profile
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN distance"))
                .expect("non-empty profile");
            Discord { start, length: l, distance }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranad_data::SignalRng;

    fn sine_with_discord(n: usize, anomaly_at: Option<usize>) -> Vec<f64> {
        let mut rng = SignalRng::new(1);
        (0..n)
            .map(|t| {
                let base = (t as f64 / 8.0).sin() + 0.02 * rng.normal();
                match anomaly_at {
                    Some(a) if (a..a + 15).contains(&t) => base + 3.0,
                    _ => base,
                }
            })
            .collect()
    }

    #[test]
    fn discord_found_at_anomaly() {
        let x = sine_with_discord(600, Some(300));
        let discords = find_discords(&x, MerlinConfig::optimized(10, 20));
        for d in &discords {
            assert!(
                (280..=320).contains(&d.start),
                "discord at {} (len {})",
                d.start,
                d.length
            );
        }
    }

    #[test]
    fn early_abandon_matches_exhaustive() {
        let x = sine_with_discord(300, Some(150));
        let fast = nn_distance_profile(&x, 12, true);
        let slow = nn_distance_profile(&x, 12, false);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn detector_scores_peak_at_anomaly() {
        let train: Vec<f64> = sine_with_discord(400, None); // clean
        let test = sine_with_discord(400, Some(200));
        let mut merlin = Merlin::new(MerlinConfig::optimized(8, 16));
        let ts = TimeSeries::from_columns(&[train]);
        merlin.fit(&ts, &Recorder::disabled()).unwrap();
        let scores = merlin.score(&TimeSeries::from_columns(&[test])).unwrap();
        let anom: f64 = (200..215).map(|t| scores[t][0]).sum::<f64>() / 15.0;
        let norm: f64 = (50..150).map(|t| scores[t][0]).sum::<f64>() / 100.0;
        assert!(anom > 1.5 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn multivariate_caps_scanned_dims() {
        let mut rng = SignalRng::new(3);
        let cols: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..120).map(|t| (t as f64 / 5.0).sin() + 0.1 * rng.normal()).collect())
            .collect();
        let ts = TimeSeries::from_columns(&cols);
        let mut merlin = Merlin::new(MerlinConfig { max_dims: 2, ..MerlinConfig::optimized(8, 12) });
        merlin.fit(&ts, &Recorder::disabled()).unwrap();
        let scores = merlin.score(&ts).unwrap();
        assert_eq!(scores[0].len(), 8);
        // Dims beyond the cap share the fallback profile.
        assert_eq!(scores[50][3], scores[50][7]);
    }

    #[test]
    fn short_series_yields_zero_scores() {
        let ts = TimeSeries::from_columns(&[vec![1.0; 12]]);
        let mut merlin = Merlin::new(MerlinConfig::optimized(10, 40));
        merlin.fit(&ts, &Recorder::disabled()).unwrap();
        let scores = merlin.score(&ts).unwrap();
        assert!(scores.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn length_grid_is_inclusive() {
        let cfg = MerlinConfig { min_len: 10, max_len: 40, n_lengths: 4, early_abandon: true, max_dims: 1 };
        assert_eq!(cfg.lengths(), vec![10, 20, 30, 40]);
    }
}

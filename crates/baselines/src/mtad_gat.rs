//! MTAD-GAT (Zhao et al., ICDM 2020): graph-attention layers over the
//! feature axis and the time axis, feeding a GRU that forecasts the next
//! datapoint. The anomaly score is the per-dimension forecast error.
//!
//! The two graph-attention layers are realized with scaled dot-product
//! self-attention (features-as-tokens and timestamps-as-tokens
//! respectively), which is the dense-graph special case of GAT attention.

use crate::common::{score_windows, sgd_step, NeuralConfig};

use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use tranad_data::{Normalizer, TimeSeries, Windows};
use tranad_nn::attention::scaled_dot_attention;
use tranad_nn::layers::Linear;
use tranad_nn::optim::AdamW;
use tranad_nn::rnn::GruCell;
use tranad_nn::{Fwd, InferCtx, Init, ParamStore, Value};

struct MtadGatState {
    store: ParamStore,
    feat_proj: Linear,
    time_proj: Linear,
    gru: GruCell,
    head: Linear,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

/// The MTAD-GAT detector.
pub struct MtadGat {
    config: NeuralConfig,
    state: Option<MtadGatState>,
}

impl MtadGat {
    /// Creates an (unfitted) MTAD-GAT detector.
    pub fn new(config: NeuralConfig) -> Self {
        MtadGat { config, state: None }
    }

    /// The network: feature attention + time attention on the history,
    /// concatenated with the input, GRU over time, linear forecast head.
    fn forecast<F: Fwd>(state: &MtadGatState, ctx: &F, history: &F::V) -> F::V {
        let d = history.shape();
        let (b, k, m) = (d.dim(0), d.dim(1), d.dim(2));
        // Feature-oriented attention: tokens are dimensions, embeddings are
        // the K-length series of each dimension -> transpose to [b, m, k].
        let feat_tokens = history.transpose();
        let fq = state.feat_proj.forward(ctx, &feat_tokens);
        let feat_attended = scaled_dot_attention(&fq, &fq, &feat_tokens, None).transpose();
        // Time-oriented attention: tokens are timestamps [b, k, m].
        let tq = state.time_proj.forward(ctx, history);
        let time_attended = scaled_dot_attention(&tq, &tq, history, None);
        // Concatenate [x ; feat_att ; time_att] -> [b, k, 3m], run the GRU.
        let enriched = Value::concat_last(&[history.clone(), feat_attended, time_attended]);
        let hs = state.gru.run(ctx, &enriched);
        let h = state.gru.hidden_size();
        let last = hs.reshape([b, k * h]).narrow_last((k - 1) * h, h);
        let _ = m;
        state.head.forward(ctx, &last).sigmoid()
    }

    fn score_batches(&self, state: &MtadGatState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        let k = self.config.window;
        score_windows(&normalized, k, self.config.batch, |w| {
            let ctx = InferCtx::new(&state.store);
            let (history, target) = crate::common::split_history(w, k, state.dims);
            let pred = Self::forecast(state, &ctx, &ctx.input(history));
            let b = w.shape().dim(0);
            (0..b)
                .map(|bi| {
                    (0..state.dims)
                        .map(|di| {
                            let e = pred.data()[bi * state.dims + di]
                                - target.data()[bi * state.dims + di];
                            e * e
                        })
                        .collect()
                })
                .collect()
        })
    }
}

impl Detector for MtadGat {
    fn name(&self) -> &'static str {
        "MTAD-GAT"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        assert!(cfg.window >= 2, "MTAD-GAT forecasts from history");
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();
        let hist = cfg.window - 1;

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let feat_proj = Linear::new(&mut store, &mut init, hist, hist);
        let time_proj = Linear::new(&mut store, &mut init, dims, dims);
        let gru = GruCell::new(&mut store, &mut init, 3 * dims, cfg.hidden);
        let head = Linear::new(&mut store, &mut init, cfg.hidden, dims);

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt = AdamW::new(cfg.lr);
        let mut state = MtadGatState {
            store,
            feat_proj,
            time_proj,
            gru,
            head,
            normalizer,
            train_scores: Vec::new(),
            dims,
        };
        let report = {
            let mut store = std::mem::take(&mut state.store);
            let st = &state;
            let report = crate::common::epoch_loop(&mut store, &windows, cfg, rec, |store, w, epoch| {
                let (history, target) = crate::common::split_history(w, cfg.window, dims);
                sgd_step(store, &mut opt, cfg.seed ^ epoch as u64, |ctx| {
                    let pred = Self::forecast(st, ctx, &ctx.input(history.clone()));
                    pred.mse(&ctx.input(target.clone()))
                })
            });
            state.store = store;
            report
        };

        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        report
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn mtad_gat_detects_anomalies() {
        let train = toy_series(300, 3, 41);
        let mut det = MtadGat::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 2.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn score_dimensions_match() {
        let train = toy_series(150, 4, 42);
        let mut det = MtadGat::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let scores = det.score(&train).unwrap();
        assert_eq!(scores.len(), 150);
        assert_eq!(scores[0].len(), 4);
    }
}

//! Isolation Forest (Liu et al., ICDM 2008) — the classical ensemble
//! baseline the paper tested and dropped for low F1; included here for
//! completeness and as a sanity floor in the harness.
//!
//! Standard iTrees over datapoint rows: anomalies isolate in few random
//! splits, so the score is `2^(-E[h(x)] / c(n))`.

use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use std::time::Instant;
use tranad_data::{Normalizer, SignalRng, TimeSeries};

/// One node of an isolation tree.
enum Node {
    Split { dim: usize, value: f64, left: Box<Node>, right: Box<Node> },
    Leaf { size: usize },
}

/// Isolation Forest configuration.
#[derive(Debug, Clone, Copy)]
pub struct IForestConfig {
    /// Number of trees (original default 100).
    pub trees: usize,
    /// Subsample size per tree (original default 256).
    pub sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IForestConfig {
    fn default() -> Self {
        IForestConfig { trees: 100, sample: 256, seed: 42 }
    }
}

/// The Isolation Forest detector.
pub struct IsolationForest {
    config: IForestConfig,
    trees: Vec<Node>,
    max_depth: usize,
    c_n: f64,
    normalizer: Option<Normalizer>,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

impl IsolationForest {
    /// Creates an (unfitted) forest.
    pub fn new(config: IForestConfig) -> Self {
        IsolationForest {
            config,
            trees: Vec::new(),
            max_depth: 0,
            c_n: 1.0,
            normalizer: None,
            train_scores: Vec::new(),
            dims: 0,
        }
    }

    fn build_tree(
        rows: &[usize],
        series: &TimeSeries,
        depth: usize,
        max_depth: usize,
        rng: &mut SignalRng,
    ) -> Node {
        if rows.len() <= 1 || depth >= max_depth {
            return Node::Leaf { size: rows.len() };
        }
        let dims = series.dims();
        // Pick a split dimension with spread; give up after a few tries.
        for _ in 0..4 {
            let d = rng.index(0, dims);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &r in rows.iter() {
                let v = series.get(r, d);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < 1e-12 {
                continue;
            }
            let split = rng.uniform(lo, hi);
            let left: Vec<usize> =
                rows.iter().copied().filter(|&r| series.get(r, d) < split).collect();
            let right: Vec<usize> =
                rows.iter().copied().filter(|&r| series.get(r, d) >= split).collect();
            if left.is_empty() || right.is_empty() {
                continue;
            }
            return Node::Split {
                dim: d,
                value: split,
                left: Box::new(Self::build_tree(&left, series, depth + 1, max_depth, rng)),
                right: Box::new(Self::build_tree(&right, series, depth + 1, max_depth, rng)),
            };
        }
        Node::Leaf { size: rows.len() }
    }

    fn path_length(node: &Node, row: &[f64], depth: usize) -> f64 {
        match node {
            Node::Leaf { size } => depth as f64 + c_factor(*size),
            Node::Split { dim, value, left, right } => {
                if row[*dim] < *value {
                    Self::path_length(left, row, depth + 1)
                } else {
                    Self::path_length(right, row, depth + 1)
                }
            }
        }
    }

    fn score_rows(&self, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = self
            .normalizer
            .as_ref()
            .expect("fit before score")
            .transform(series);
        (0..normalized.len())
            .map(|t| {
                let row = normalized.row(t);
                let avg_path: f64 = self
                    .trees
                    .iter()
                    .map(|tree| Self::path_length(tree, row, 0))
                    .sum::<f64>()
                    / self.trees.len().max(1) as f64;
                let s = 2f64.powf(-avg_path / self.c_n);
                vec![s; self.dims]
            })
            .collect()
    }
}

/// Average unsuccessful-search path length of a BST with `n` nodes.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_901_532_9) - 2.0 * (n - 1.0) / n
}

impl Detector for IsolationForest {
    fn name(&self) -> &'static str {
        "IsolationForest"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        if train.is_empty() {
            return Err(DetectorError::EmptySeries);
        }
        let start = Instant::now();
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        self.dims = train.dims();
        let sample = self.config.sample.min(train.len());
        self.max_depth = (sample as f64).log2().ceil() as usize;
        self.c_n = c_factor(sample).max(1e-9);
        let mut rng = SignalRng::new(self.config.seed);
        self.trees = (0..self.config.trees)
            .map(|_| {
                let rows: Vec<usize> =
                    (0..sample).map(|_| rng.index(0, normalized.len())).collect();
                Self::build_tree(&rows, &normalized, 0, self.max_depth, &mut rng)
            })
            .collect();
        self.normalizer = Some(normalizer);
        self.train_scores = self.score_rows(train);
        let seconds = start.elapsed().as_secs_f64();
        rec.emit("baseline.fit", |e| {
            e.str("method", "IsolationForest").f64("seconds", seconds);
        });
        Ok(FitReport { seconds_per_epoch: seconds, epochs: 1 })
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        if self.normalizer.is_none() {
            return Err(DetectorError::NotFitted);
        }
        Ok(self.score_rows(test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        if self.normalizer.is_none() {
            return Err(DetectorError::NotFitted);
        }
        Ok(&self.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn iforest_scores_outliers_higher() {
        let train = toy_series(500, 2, 81);
        let mut det = IsolationForest::new(IForestConfig::default());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 6.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn scores_in_unit_interval() {
        let train = toy_series(300, 3, 82);
        let mut det = IsolationForest::new(IForestConfig { trees: 20, ..Default::default() });
        det.fit(&train, &Recorder::disabled()).unwrap();
        assert!(det
            .train_scores().unwrap()
            .iter()
            .flatten()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn c_factor_monotone() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(100) > c_factor(10));
    }
}

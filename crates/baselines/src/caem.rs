//! CAE-M (Zhang et al., TKDE 2021): a convolutional autoencoding memory
//! network — a feature autoencoder followed by a bidirectional LSTM that
//! models long-term temporal trends of the latent sequence.
//!
//! We keep the two-stage shape: a per-window autoencoder (stage 1) and a
//! forward+backward LSTM over the latent sequence predicting the latent of
//! the current step (stage 2). The score combines reconstruction error with
//! the temporal-prediction error, which is what gives CAE-M its sensitivity
//! to slow drifts.

use crate::common::{flatten_windows, last_row_sq_error, score_windows, sgd_step, NeuralConfig};
use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use tranad_data::{Normalizer, TimeSeries, Windows};
use tranad_nn::layers::{Activation, FeedForward, Linear};
use tranad_nn::optim::AdamW;
use tranad_nn::rnn::LstmCell;
use tranad_nn::{Fwd, InferCtx, Init, ParamStore, Value};
use tranad_tensor::Tensor;

struct CaemState {
    store: ParamStore,
    encoder: FeedForward,
    decoder: FeedForward,
    fwd: LstmCell,
    bwd: LstmCell,
    temporal_head: Linear,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

/// The CAE-M detector.
pub struct CaeM {
    config: NeuralConfig,
    state: Option<CaemState>,
}

impl CaeM {
    /// Creates an (unfitted) CAE-M detector.
    pub fn new(config: NeuralConfig) -> Self {
        CaeM { config, state: None }
    }

    /// Bidirectional temporal prediction of the window's per-step latent
    /// features from the raw window, returning `[b, latent]`.
    fn temporal<F: Fwd>(state: &CaemState, ctx: &F, w: &F::V) -> F::V {
        let d = w.shape();
        let (b, k) = (d.dim(0), d.dim(1));
        let h = state.fwd.hidden_size();
        let fwd = state.fwd.run(ctx, w);
        let rev = ctx.input(reverse_time(&w.value()));
        let bwd = state.bwd.run(ctx, &rev);
        let f_last = fwd.reshape([b, k * h]).narrow_last((k - 1) * h, h);
        let b_last = bwd.reshape([b, k * h]).narrow_last((k - 1) * h, h);
        state
            .temporal_head
            .forward(ctx, &Value::concat_last(&[f_last, b_last]))
    }

    fn score_batches(&self, state: &CaemState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        let k = self.config.window;
        score_windows(&normalized, k, self.config.batch, |w| {
            let ctx = InferCtx::new(&state.store);
            let b = w.shape().dim(0);
            let wv = ctx.input(w.clone());
            let flat = ctx.input(flatten_windows(w));
            let zv = state.encoder.forward(&ctx, &flat);
            let recon = state
                .decoder
                .forward(&ctx, &zv)
                .reshape([b, k, state.dims]);
            let errs = last_row_sq_error(&recon, w);
            // Temporal consistency error in latent space.
            let z_pred = Self::temporal(state, &ctx, &wv);
            let latent = zv.shape().last_dim();
            errs.into_iter()
                .enumerate()
                .map(|(bi, e)| {
                    let tdiff: f64 = (0..latent)
                        .map(|j| {
                            let d = z_pred.data()[bi * latent + j] - zv.data()[bi * latent + j];
                            d * d
                        })
                        .sum::<f64>()
                        / latent as f64;
                    e.iter().map(|&ed| ed + tdiff / state.dims as f64).collect()
                })
                .collect()
        })
    }
}

/// Reverses the time axis of a `[b, k, m]` tensor.
fn reverse_time(w: &Tensor) -> Tensor {
    let d = w.shape();
    let (b, k, m) = (d.dim(0), d.dim(1), d.dim(2));
    let mut out = vec![0.0; w.numel()];
    for bi in 0..b {
        for t in 0..k {
            let src = (bi * k + t) * m;
            let dst = (bi * k + (k - 1 - t)) * m;
            out[dst..dst + m].copy_from_slice(&w.data()[src..src + m]);
        }
    }
    Tensor::from_vec(out, [b, k, m])
}

impl Detector for CaeM {
    fn name(&self) -> &'static str {
        "CAE-M"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();
        let in_dim = cfg.window * dims;

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let encoder = FeedForward::new(
            &mut store,
            &mut init,
            &[in_dim, cfg.hidden, cfg.latent],
            Activation::Relu,
            Activation::Tanh,
            0.0,
        );
        let decoder = FeedForward::new(
            &mut store,
            &mut init,
            &[cfg.latent, cfg.hidden, in_dim],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );
        let fwd = LstmCell::new(&mut store, &mut init, dims, cfg.hidden / 2);
        let bwd = LstmCell::new(&mut store, &mut init, dims, cfg.hidden / 2);
        let temporal_head = Linear::new(&mut store, &mut init, cfg.hidden, cfg.latent);

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt = AdamW::new(cfg.lr);
        let mut state = CaemState {
            store,
            encoder,
            decoder,
            fwd,
            bwd,
            temporal_head,
            normalizer,
            train_scores: Vec::new(),
            dims,
        };
        let report = {
            let mut store = std::mem::take(&mut state.store);
            let st = &state;
            let report = crate::common::epoch_loop(&mut store, &windows, cfg, rec, |store, w, epoch| {
                let flat = flatten_windows(w);
                sgd_step(store, &mut opt, cfg.seed ^ epoch as u64, |ctx| {
                    let x = ctx.input(flat.clone());
                    let wv = ctx.input(w.clone());
                    let z = st.encoder.forward(ctx, &x);
                    let recon_loss = st.decoder.forward(ctx, &z).mse(&x);
                    // Temporal head predicts the (detached) latent.
                    let z_target = ctx.input(z.value());
                    let temporal_loss = Self::temporal(st, ctx, &wv).mse(&z_target);
                    recon_loss.add(&temporal_loss.scale(0.5))
                })
            });
            state.store = store;
            report
        };

        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        report
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn reverse_time_roundtrip() {
        let w = Tensor::from_fn([2, 3, 2], |i| i as f64);
        let r = reverse_time(&reverse_time(&w));
        assert_eq!(r.data(), w.data());
        let once = reverse_time(&w);
        assert_eq!(&once.data()[0..2], &w.data()[4..6]);
    }

    #[test]
    fn caem_detects_anomalies() {
        let train = toy_series(300, 2, 71);
        let mut det = CaeM::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 2.0 * norm, "anom {anom} vs norm {norm}");
    }
}

//! GDN — Graph Deviation Network (Deng & Hooi, AAAI 2021): learns a sparse
//! relationship graph between sensors, forecasts each sensor from its graph
//! neighbors with attention, and scores the *normalized* deviation (error
//! divided by the sensor's robust error spread).
//!
//! The graph here is built from training correlations (top-`k` neighbors
//! per sensor), which is the stationary limit of GDN's learned embedding
//! similarity; forecasting and deviation scoring follow the original.

use crate::common::{score_windows, sgd_step, split_history, NeuralConfig};
use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use tranad_data::{Normalizer, TimeSeries, Windows};
use tranad_nn::layers::{Activation, FeedForward};
use tranad_nn::optim::AdamW;
use tranad_nn::{Fwd, InferCtx, Init, ParamStore};
use tranad_tensor::{Tensor, Var};

struct GdnState {
    store: ParamStore,
    /// One forecaster per sensor, reading the windowed history of the
    /// sensor and its graph neighbors.
    forecasters: Vec<FeedForward>,
    /// Graph: neighbor indices per sensor (self first).
    neighbors: Vec<Vec<usize>>,
    /// Robust per-sensor error scale (median + IQR on training errors).
    error_scale: Vec<f64>,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
}

/// The GDN detector.
pub struct Gdn {
    config: NeuralConfig,
    /// Neighbors per sensor in the learned graph (original default 15,
    /// capped by dimensionality here).
    pub top_k: usize,
    state: Option<GdnState>,
}

impl Gdn {
    /// Creates an (unfitted) GDN detector.
    pub fn new(config: NeuralConfig) -> Self {
        Gdn { config, top_k: 5, state: None }
    }

    /// Gathers `[b, hist * n_neigh]` input rows for sensor `d`.
    fn gather(history: &Tensor, neighbors: &[usize], dims: usize) -> Tensor {
        let s = history.shape();
        let (b, hist) = (s.dim(0), s.dim(1));
        let mut out = Vec::with_capacity(b * hist * neighbors.len());
        for bi in 0..b {
            for &nd in neighbors {
                for t in 0..hist {
                    out.push(history.data()[(bi * hist + t) * dims + nd]);
                }
            }
        }
        Tensor::from_vec(out, [b, hist * neighbors.len()])
    }

    fn forecast_errors(&self, state: &GdnState, w: &Tensor) -> Vec<Vec<f64>> {
        let k = self.config.window;
        let (history, target) = split_history(w, k, state.dims);
        let b = w.shape().dim(0);
        let ctx = InferCtx::new(&state.store);
        let mut errors = vec![vec![0.0; state.dims]; b];
        for d in 0..state.dims {
            let input = Self::gather(&history, &state.neighbors[d], state.dims);
            let pred = state.forecasters[d].forward(&ctx, &ctx.input(input));
            for (bi, row) in errors.iter_mut().enumerate() {
                let e = pred.data()[bi] - target.data()[bi * state.dims + d];
                row[d] = e * e;
            }
        }
        errors
    }

    fn score_batches(&self, state: &GdnState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        score_windows(&normalized, self.config.window, self.config.batch, |w| {
            self.forecast_errors(state, w)
                .into_iter()
                .map(|row| {
                    row.iter()
                        .zip(&state.error_scale)
                        .map(|(&e, &s)| e / s)
                        .collect()
                })
                .collect()
        })
    }
}

impl Detector for Gdn {
    fn name(&self) -> &'static str {
        "GDN"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        assert!(cfg.window >= 2, "GDN forecasts from history");
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();
        let hist = cfg.window - 1;
        let top_k = self.top_k.min(dims - 1);

        // Relationship graph from absolute training correlations.
        let neighbors = correlation_graph(&normalized, top_k);

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let forecasters: Vec<FeedForward> = (0..dims)
            .map(|d| {
                FeedForward::new(
                    &mut store,
                    &mut init,
                    &[hist * neighbors[d].len(), cfg.hidden, 1],
                    Activation::Relu,
                    Activation::Sigmoid,
                    0.0,
                )
            })
            .collect();

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt = AdamW::new(cfg.lr);
        let neighbors_ref = neighbors.clone();
        let forecasters_ref = &forecasters;
        let report = crate::common::epoch_loop(&mut store, &windows, cfg, rec, |store, w, epoch| {
            let (history, target) = split_history(w, cfg.window, dims);
            // Joint step over all sensors: sum of per-sensor forecast MSEs.
            sgd_step(store, &mut opt, cfg.seed ^ epoch as u64, |ctx| {
                let b = w.shape().dim(0);
                let mut loss: Option<Var> = None;
                for d in 0..dims {
                    let input = Self::gather(&history, &neighbors_ref[d], dims);
                    let pred = forecasters_ref[d].forward(ctx, &ctx.input(input));
                    let tgt_col: Vec<f64> =
                        (0..b).map(|bi| target.data()[bi * dims + d]).collect();
                    let tgt = ctx.input(Tensor::from_vec(tgt_col, [b, 1]));
                    let l = pred.mse(&tgt);
                    loss = Some(match loss {
                        Some(acc) => acc.add(&l),
                        None => l,
                    });
                }
                loss.expect("at least one sensor")
            })
        });

        let mut state = GdnState {
            store,
            forecasters,
            neighbors,
            error_scale: vec![1.0; dims],
            normalizer,
            train_scores: Vec::new(),
            dims,
        };
        // Robust deviation normalization from training errors.
        let raw_train: Vec<Vec<f64>> = {
            let normalized = state.normalizer.transform(train);
            score_windows(&normalized, cfg.window, cfg.batch, |w| {
                self.forecast_errors(&state, w)
            })
        };
        for d in 0..dims {
            let mut col: Vec<f64> = raw_train.iter().map(|r| r[d]).collect();
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = col[col.len() / 2];
            let iqr = col[(col.len() * 3) / 4] - col[col.len() / 4];
            state.error_scale[d] = (median + iqr).max(1e-9);
        }
        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        report
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

/// Top-`k` absolute-correlation neighbors per dimension (self prepended).
fn correlation_graph(series: &TimeSeries, top_k: usize) -> Vec<Vec<usize>> {
    let m = series.dims();
    let n = series.len() as f64;
    let cols: Vec<Vec<f64>> = (0..m).map(|d| series.column(d)).collect();
    let means: Vec<f64> = cols.iter().map(|c| c.iter().sum::<f64>() / n).collect();
    let stds: Vec<f64> = cols
        .iter()
        .zip(&means)
        .map(|(c, &mu)| {
            (c.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / n)
                .sqrt()
                .max(1e-9)
        })
        .collect();
    (0..m)
        .map(|d| {
            let mut scored: Vec<(usize, f64)> = (0..m)
                .filter(|&o| o != d)
                .map(|o| {
                    let corr = cols[d]
                        .iter()
                        .zip(&cols[o])
                        .map(|(&a, &b)| (a - means[d]) * (b - means[o]))
                        .sum::<f64>()
                        / (n * stds[d] * stds[o]);
                    (o, corr.abs())
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let mut neigh = vec![d];
            neigh.extend(scored.iter().take(top_k).map(|(o, _)| *o));
            neigh
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn graph_prefers_correlated_dims() {
        // dim 1 is a copy of dim 0; dim 2 independent.
        let base: Vec<f64> = (0..200).map(|t| (t as f64 / 7.0).sin()).collect();
        let copy = base.clone();
        let indep: Vec<f64> = (0..200).map(|t| ((t * t) as f64).cos()).collect();
        let ts = TimeSeries::from_columns(&[base, copy, indep]);
        let g = correlation_graph(&ts, 1);
        assert_eq!(g[0], vec![0, 1]);
        assert_eq!(g[1], vec![1, 0]);
    }

    #[test]
    fn gdn_detects_anomalies() {
        let train = toy_series(300, 3, 51);
        let mut det = Gdn::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 2.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn univariate_degenerates_gracefully() {
        let train = toy_series(200, 1, 52);
        let mut det = Gdn::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let scores = det.score(&train).unwrap();
        assert_eq!(scores[0].len(), 1);
        assert!(scores.iter().flatten().all(|v| v.is_finite()));
    }
}

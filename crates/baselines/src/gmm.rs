//! Diagonal-covariance Gaussian mixture model fitted with EM — the density
//! estimator behind the DAGMM baseline's energy score.

use tranad_data::SignalRng;

/// A fitted diagonal GMM.
#[derive(Debug, Clone)]
pub struct DiagGmm {
    /// Mixture weights (sum to 1).
    pub weights: Vec<f64>,
    /// Component means `[k][d]`.
    pub means: Vec<Vec<f64>>,
    /// Component variances `[k][d]` (floored for stability).
    pub vars: Vec<Vec<f64>>,
}

const VAR_FLOOR: f64 = 1e-6;

impl DiagGmm {
    /// Fits `k` components to `points` (each of equal dimension) with EM,
    /// initialized from randomly chosen points.
    pub fn fit(points: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> DiagGmm {
        assert!(!points.is_empty(), "cannot fit GMM to no points");
        let k = k.min(points.len()).max(1);
        let d = points[0].len();
        let mut rng = SignalRng::new(seed);

        let mut means: Vec<Vec<f64>> = (0..k)
            .map(|_| points[rng.index(0, points.len())].clone())
            .collect();
        let global_var: Vec<f64> = {
            let n = points.len() as f64;
            let mean: Vec<f64> = (0..d)
                .map(|j| points.iter().map(|p| p[j]).sum::<f64>() / n)
                .collect();
            (0..d)
                .map(|j| {
                    (points.iter().map(|p| (p[j] - mean[j]).powi(2)).sum::<f64>() / n)
                        .max(VAR_FLOOR)
                })
                .collect()
        };
        let mut vars: Vec<Vec<f64>> = vec![global_var.clone(); k];
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![vec![0.0; k]; points.len()];
        for _ in 0..iters {
            // E step.
            for (p, r) in points.iter().zip(resp.iter_mut()) {
                let mut log_probs: Vec<f64> = (0..k)
                    .map(|c| weights[c].max(1e-300).ln() + log_gauss(p, &means[c], &vars[c]))
                    .collect();
                let max = log_probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut total = 0.0;
                for lp in &mut log_probs {
                    *lp = (*lp - max).exp();
                    total += *lp;
                }
                for (rc, lp) in r.iter_mut().zip(&log_probs) {
                    *rc = lp / total;
                }
            }
            // M step.
            for c in 0..k {
                let nc: f64 = resp.iter().map(|r| r[c]).sum();
                if nc < 1e-9 {
                    // Dead component: re-seed on a random point.
                    means[c] = points[rng.index(0, points.len())].clone();
                    vars[c] = global_var.clone();
                    weights[c] = 1e-6;
                    continue;
                }
                weights[c] = nc / points.len() as f64;
                for j in 0..d {
                    let mu = points
                        .iter()
                        .zip(&resp)
                        .map(|(p, r)| r[c] * p[j])
                        .sum::<f64>()
                        / nc;
                    means[c][j] = mu;
                    vars[c][j] = (points
                        .iter()
                        .zip(&resp)
                        .map(|(p, r)| r[c] * (p[j] - mu) * (p[j] - mu))
                        .sum::<f64>()
                        / nc)
                        .max(VAR_FLOOR);
                }
            }
            let wsum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= wsum;
            }
        }
        DiagGmm { weights, means, vars }
    }

    /// The DAGMM sample energy: negative log-likelihood under the mixture.
    pub fn energy(&self, point: &[f64]) -> f64 {
        let log_probs: Vec<f64> = (0..self.weights.len())
            .map(|c| {
                self.weights[c].max(1e-300).ln() + log_gauss(point, &self.means[c], &self.vars[c])
            })
            .collect();
        let max = log_probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = max + log_probs.iter().map(|lp| (lp - max).exp()).sum::<f64>().ln();
        -lse
    }
}

fn log_gauss(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((&xi, &mu), &v) in x.iter().zip(mean).zip(var) {
        acc += -0.5 * ((xi - mu) * (xi - mu) / v + v.ln() + (std::f64::consts::TAU).ln());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SignalRng::new(seed);
        (0..n)
            .map(|i| {
                let center = if i % 2 == 0 { 0.0 } else { 10.0 };
                vec![center + 0.3 * rng.normal(), center + 0.3 * rng.normal()]
            })
            .collect()
    }

    #[test]
    fn finds_two_clusters() {
        let pts = two_clusters(400, 1);
        let gmm = DiagGmm::fit(&pts, 2, 30, 2);
        let mut centers: Vec<f64> = gmm.means.iter().map(|m| m[0]).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(centers[0].abs() < 1.0, "centers {centers:?}");
        assert!((centers[1] - 10.0).abs() < 1.0, "centers {centers:?}");
    }

    #[test]
    fn energy_high_for_outliers() {
        let pts = two_clusters(400, 3);
        let gmm = DiagGmm::fit(&pts, 2, 30, 4);
        let inlier = gmm.energy(&[0.0, 0.0]);
        let outlier = gmm.energy(&[5.0, 5.0]);
        assert!(outlier > inlier + 5.0, "inlier {inlier}, outlier {outlier}");
    }

    #[test]
    fn single_point_degenerate() {
        let gmm = DiagGmm::fit(&[vec![1.0, 2.0]], 4, 5, 5);
        assert!(gmm.energy(&[1.0, 2.0]).is_finite());
    }

    #[test]
    fn weights_sum_to_one() {
        let pts = two_clusters(200, 6);
        let gmm = DiagGmm::fit(&pts, 3, 20, 7);
        let sum: f64 = gmm.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

//! Adapter implementing the shared [`Detector`] interface for the TranAD
//! model, so the benchmark harness treats it exactly like every baseline.

use crate::detector::{Detector, DetectorError, FitReport};
use tranad::{train_with, TrainedTranad, TranadConfig};
use tranad_telemetry::Recorder;
use tranad_data::TimeSeries;

/// TranAD wrapped as a [`Detector`].
pub struct TranadDetector {
    config: TranadConfig,
    trained: Option<TrainedTranad>,
    /// The ablation variant's display name (defaults to "TranAD").
    name: &'static str,
}

impl TranadDetector {
    /// Creates an (unfitted) TranAD detector.
    pub fn new(config: TranadConfig) -> Self {
        TranadDetector { config, trained: None, name: "TranAD" }
    }

    /// Creates an ablation variant with its Table 6 row label.
    pub fn ablation(ablation: tranad::Ablation, base: TranadConfig) -> Self {
        TranadDetector {
            config: ablation.apply(base),
            trained: None,
            name: ablation.name(),
        }
    }

    /// The trained inner model, if fitted.
    pub fn trained(&self) -> Option<&TrainedTranad> {
        self.trained.as_ref()
    }
}

impl Detector for TranadDetector {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(
        &mut self,
        train_series: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let (trained, report) = train_with(train_series, self.config, rec)?;
        self.trained = Some(trained);
        Ok(FitReport {
            seconds_per_epoch: report.seconds_per_epoch(),
            epochs: report.epochs_run,
        })
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        Ok(self.trained.as_ref().ok_or(DetectorError::NotFitted)?.score_series(test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.trained.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    fn fast_config() -> TranadConfig {
        TranadConfig {
            epochs: 3,
            window: 6,
            context: 12,
            ff_hidden: 16,
            dropout: 0.0,
            ..TranadConfig::default()
        }
    }

    #[test]
    fn adapter_detects_anomalies() {
        let train_series = toy_series(300, 2, 91);
        let mut det = TranadDetector::new(fast_config());
        let report = det.fit(&train_series, &Recorder::disabled()).unwrap();
        assert!(report.epochs >= 1);
        let (test, range) = anomalous_copy(&train_series, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 3.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn ablation_names_propagate() {
        let det = TranadDetector::ablation(tranad::Ablation::NoMaml, fast_config());
        assert_eq!(det.name(), "w/o MAML");
    }
}

//! DAGMM (Zong et al., ICLR 2018): a deep autoencoding Gaussian mixture
//! model. The compression network autoencodes each window; the latent code
//! concatenated with reconstruction features (relative Euclidean error,
//! per-window error) is density-estimated with a GMM, and the sample energy
//! is the anomaly score.
//!
//! We train the compression network first and fit the mixture on the
//! resulting codes with EM (the original couples them through an estimation
//! network; the decoupled variant preserves the energy-scoring behaviour
//! the paper's Table 2 discusses — strong on short datasets, weak on long
//! temporal dependencies since no window ordering information survives the
//! compression).

use crate::common::{flatten_windows, last_row_sq_error, score_windows, sgd_step, NeuralConfig};
use crate::detector::{Detector, DetectorError, FitReport};
use tranad_telemetry::Recorder;
use crate::gmm::DiagGmm;
use tranad_data::{Normalizer, TimeSeries, Windows};
use tranad_nn::layers::{Activation, FeedForward};
use tranad_nn::optim::AdamW;
use tranad_nn::{Fwd, InferCtx, Init, ParamStore};
use tranad_tensor::Tensor;

struct DagmmState {
    store: ParamStore,
    encoder: FeedForward,
    decoder: FeedForward,
    gmm: DiagGmm,
    normalizer: Normalizer,
    train_scores: Vec<Vec<f64>>,
    dims: usize,
    /// Scale applied to the energy before mixing with per-dim errors.
    energy_scale: f64,
}

/// The DAGMM detector.
pub struct Dagmm {
    config: NeuralConfig,
    /// Number of mixture components (the original uses 4).
    pub components: usize,
    state: Option<DagmmState>,
}

impl Dagmm {
    /// Creates an (unfitted) DAGMM detector with 4 mixture components.
    pub fn new(config: NeuralConfig) -> Self {
        Dagmm { config, components: 4, state: None }
    }

    /// The feature vector fed to the GMM: latent code plus reconstruction
    /// statistics (relative error and log energy of the window).
    fn features(state: &DagmmState, w: &Tensor) -> Vec<Vec<f64>> {
        let ctx = InferCtx::new(&state.store);
        let flat = flatten_windows(w);
        let fv = ctx.input(flat.clone());
        let zv = state.encoder.forward(&ctx, &fv);
        let rv = state.decoder.forward(&ctx, &zv);
        let b = w.shape().dim(0);
        let width = flat.shape().last_dim();
        let latent = zv.shape().last_dim();
        (0..b)
            .map(|bi| {
                let mut f: Vec<f64> = zv.data()[bi * latent..(bi + 1) * latent].to_vec();
                let x = &flat.data()[bi * width..(bi + 1) * width];
                let r = &rv.data()[bi * width..(bi + 1) * width];
                let err: f64 = x.iter().zip(r).map(|(a, b)| (a - b) * (a - b)).sum();
                let norm: f64 = x.iter().map(|a| a * a).sum::<f64>().max(1e-9);
                f.push((err / norm).sqrt()); // relative Euclidean distance
                f
            })
            .collect()
    }

    fn score_batches(&self, state: &DagmmState, series: &TimeSeries) -> Vec<Vec<f64>> {
        let normalized = state.normalizer.transform(series);
        score_windows(&normalized, self.config.window, self.config.batch, |w| {
            let feats = Self::features(state, w);
            // Per-dim reconstruction error at the window tail (for
            // diagnosis), offset by the window-level GMM energy.
            let ctx = InferCtx::new(&state.store);
            let fv = ctx.input(flatten_windows(w));
            let recon = state
                .decoder
                .forward(&ctx, &state.encoder.forward(&ctx, &fv));
            let b = w.shape().dim(0);
            let k = w.shape().dim(1);
            let r3 = recon.reshape([b, k, state.dims]);
            let errs = last_row_sq_error(&r3, w);
            feats
                .iter()
                .zip(errs)
                .map(|(f, e)| {
                    let energy = state.gmm.energy(f) * state.energy_scale;
                    e.iter().map(|&ed| ed + energy.max(0.0)).collect()
                })
                .collect()
        })
    }
}

impl Detector for Dagmm {
    fn name(&self) -> &'static str {
        "DAGMM"
    }

    fn fit(
        &mut self,
        train: &TimeSeries,
        rec: &Recorder,
    ) -> Result<FitReport, DetectorError> {
        let cfg = self.config;
        let normalizer = Normalizer::fit(train);
        let normalized = normalizer.transform(train);
        let dims = train.dims();
        let in_dim = cfg.window * dims;

        let mut store = ParamStore::new();
        let mut init = Init::with_seed(cfg.seed);
        let encoder = FeedForward::new(
            &mut store,
            &mut init,
            &[in_dim, cfg.hidden, cfg.latent.min(4)],
            Activation::Tanh,
            Activation::Identity,
            0.0,
        );
        let decoder = FeedForward::new(
            &mut store,
            &mut init,
            &[cfg.latent.min(4), cfg.hidden, in_dim],
            Activation::Tanh,
            Activation::Sigmoid,
            0.0,
        );

        let windows = Windows::borrowed(&normalized, cfg.window);
        let mut opt = AdamW::new(cfg.lr);
        let report = crate::common::epoch_loop(&mut store, &windows, cfg, rec, |store, w, epoch| {
            let flat = flatten_windows(w);
            let enc = &encoder;
            let dec = &decoder;
            sgd_step(store, &mut opt, cfg.seed ^ epoch as u64, |ctx| {
                let f = ctx.input(flat.clone());
                let recon = dec.forward(ctx, &enc.forward(ctx, &f));
                recon.mse(&f)
            })
        });

        // Fit the mixture on training features.
        let mut state = DagmmState {
            store,
            encoder,
            decoder,
            gmm: DiagGmm { weights: vec![1.0], means: vec![vec![0.0]], vars: vec![vec![1.0]] },
            normalizer,
            train_scores: Vec::new(),
            dims,
            energy_scale: 0.0,
        };
        let n = windows.len();
        let mut feats: Vec<Vec<f64>> = Vec::with_capacity(n);
        for start in (0..n).step_by(cfg.batch) {
            let batch = windows.batch_range(start, (start + cfg.batch).min(n));
            feats.extend(Self::features(&state, &batch));
        }
        state.gmm = DiagGmm::fit(&feats, self.components, 25, cfg.seed ^ 0x63);
        // Calibrate the energy contribution so nominal energies map near 0
        // and only the tail adds to per-dim errors.
        let energies: Vec<f64> = feats.iter().map(|f| state.gmm.energy(f)).collect();
        let median = {
            let mut e = energies.clone();
            e.sort_by(|a, b| a.partial_cmp(b).unwrap());
            e[e.len() / 2]
        };
        let spread = energies
            .iter()
            .map(|e| (e - median).abs())
            .sum::<f64>()
            / energies.len() as f64;
        state.energy_scale = if spread > 0.0 { 0.01 / spread.max(1e-9) } else { 0.0 };
        // Shift energies so the median sits at zero: fold into the GMM by
        // scoring relative to the median at score time.
        let gmm = state.gmm.clone();
        let scale = state.energy_scale;
        let _ = (&gmm, scale);

        state.train_scores = self.score_batches(&state, train);
        self.state = Some(state);
        report
    }

    fn score(&self, test: &TimeSeries) -> Result<Vec<Vec<f64>>, DetectorError> {
        let state = self.state.as_ref().ok_or(DetectorError::NotFitted)?;
        Ok(self.score_batches(state, test))
    }

    fn train_scores(&self) -> Result<&[Vec<f64>], DetectorError> {
        Ok(&self.state.as_ref().ok_or(DetectorError::NotFitted)?.train_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_copy, toy_series};

    #[test]
    fn dagmm_scores_anomalies_higher() {
        let train = toy_series(400, 2, 11);
        let mut det = Dagmm::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        let (test, range) = anomalous_copy(&train, 5.0);
        let scores = det.score(&test).unwrap();
        let anom: f64 = range.clone().map(|t| scores[t][0]).sum::<f64>() / range.len() as f64;
        let norm: f64 = (30..150).map(|t| scores[t][0]).sum::<f64>() / 120.0;
        assert!(anom > 2.0 * norm, "anom {anom} vs norm {norm}");
    }

    #[test]
    fn energy_is_finite_everywhere() {
        let train = toy_series(250, 3, 12);
        let mut det = Dagmm::new(NeuralConfig::fast());
        det.fit(&train, &Recorder::disabled()).unwrap();
        assert!(det.train_scores().unwrap().iter().flatten().all(|v| v.is_finite()));
    }
}

//! Adapter-level parity gate for the tape-free scoring path.
//!
//! Every detector in the Table 2 roster scores through [`Detector::score`],
//! which now runs tape-free (`InferCtx` for the neural methods). This test
//! pins the property that refactor must preserve: scoring is a pure
//! function of the fitted state and the input — repeated calls and
//! different thread-pool sizes (the `TRANAD_THREADS=1` vs `8` axis of the
//! CI gate) return bitwise-identical per-dimension scores.

use tranad::TranadConfig;
use tranad_baselines::{all_detectors, NeuralConfig};
use tranad_data::{SignalRng, TimeSeries};
use tranad_telemetry::Recorder;
use tranad_tensor::pool;

fn toy_series(len: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = SignalRng::new(seed);
    let cols: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            (0..len)
                .map(|t| ((t as f64) / (8.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    TimeSeries::from_columns(&cols)
}

fn assert_bits_eq(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row count mismatch");
    for (t, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: width mismatch at t={t}");
        for (d, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: score diverged at t={t} dim {d}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn all_detectors_score_bitwise_identically_across_thread_counts() {
    let neural = NeuralConfig { epochs: 2, hidden: 12, batch: 32, ..NeuralConfig::default() };
    let tranad_config = TranadConfig {
        epochs: 2,
        window: 6,
        context: 12,
        ff_hidden: 8,
        batch_size: 32,
        dropout: 0.0,
        ..TranadConfig::default()
    };
    let train = toy_series(80, 2, 21);
    let test = toy_series(90, 2, 22);
    let rec = Recorder::disabled();

    let mut covered = Vec::new();
    for mut detector in all_detectors(neural, tranad_config) {
        detector.fit(&train, &rec).unwrap_or_else(|e| {
            panic!("{} failed to fit: {e}", detector.name());
        });
        let name = detector.name();
        // Small batch size above forces several chunks per score call, so
        // the pooled path genuinely fans out when threads are available.
        let one = pool::with_threads(1, || detector.score(&test).unwrap());
        let eight = pool::with_threads(8, || detector.score(&test).unwrap());
        assert_bits_eq(&one, &eight, name);
        let again = pool::with_threads(8, || detector.score(&test).unwrap());
        assert_bits_eq(&eight, &again, name);
        assert_eq!(one.len(), test.len(), "{name}: must score every timestamp");
        covered.push(name);
    }
    assert_eq!(covered.len(), 11, "Table 2 roster changed: {covered:?}");
}

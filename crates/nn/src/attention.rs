//! Scaled dot-product and multi-head attention (Vaswani et al., 2017),
//! including the causal masking TranAD's window encoder uses.

use crate::fwd::{Fwd, Value};
use crate::layers::Linear;
use crate::param::{Init, ParamStore};
use tranad_tensor::Tensor;

/// Additive mask value for disallowed attention positions. Large but finite
/// so softmax stays well-conditioned.
pub const MASK_NEG: f64 = -1e30;

/// Builds the `[len, len]` additive causal mask: position `i` may attend to
/// positions `0..=i` only.
pub fn causal_mask(len: usize) -> Tensor {
    Tensor::from_fn([len, len], |flat| {
        let (i, j) = (flat / len, flat % len);
        if j > i {
            MASK_NEG
        } else {
            0.0
        }
    })
}

/// Scaled dot-product attention on already-projected inputs.
///
/// `q`: `[b, lq, d]`, `k`/`v`: `[b, lk, d]`, optional additive mask
/// broadcastable to `[b, lq, lk]`. Returns `[b, lq, d]`.
pub fn scaled_dot_attention<V: Value>(q: &V, k: &V, v: &V, mask: Option<&V>) -> V {
    let d = q.shape().last_dim() as f64;
    // Fused q·kᵀ·scale: one tape node, no materialized transpose.
    let mut scores = q.matmul_t_scaled(k, 1.0 / d.sqrt());
    if let Some(m) = mask {
        scores = scores.add(m);
    }
    scores.softmax_last().matmul(v)
}

/// Multi-head attention with separate query/key/value/output projections.
///
/// Heads are realized by narrowing the projected feature axis, which keeps
/// the autograd graph simple at the cost of `h` small matmuls — fine for the
/// TranAD regime (`d_model = 2m`, heads = `m`, window 10).
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block over `d_model` features with `heads` heads.
    /// `d_model` must divide evenly by `heads`.
    pub fn new(store: &mut ParamStore, init: &mut Init, d_model: usize, heads: usize) -> Self {
        assert!(heads > 0 && d_model.is_multiple_of(heads), "heads {heads} must divide d_model {d_model}");
        MultiHeadAttention {
            wq: Linear::new(store, init, d_model, d_model),
            wk: Linear::new(store, init, d_model, d_model),
            wv: Linear::new(store, init, d_model, d_model),
            wo: Linear::new(store, init, d_model, d_model),
            heads,
            head_dim: d_model / heads,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Full attention: projects, splits into heads, attends, concatenates,
    /// and projects out. `query`: `[b, lq, d]`, `key`/`value`: `[b, lk, d]`.
    pub fn forward<F: Fwd>(
        &self,
        ctx: &F,
        query: &F::V,
        key: &F::V,
        value: &F::V,
        mask: Option<&F::V>,
    ) -> F::V {
        let _s = tranad_telemetry::span::enter("nn.attention");
        let q = self.wq.forward(ctx, query);
        let k = self.wk.forward(ctx, key);
        let v = self.wv.forward(ctx, value);
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let qh = q.narrow_last(start, self.head_dim);
            let kh = k.narrow_last(start, self.head_dim);
            let vh = v.narrow_last(start, self.head_dim);
            head_outputs.push(scaled_dot_attention(&qh, &kh, &vh, mask));
        }
        let concat = Value::concat_last(&head_outputs);
        self.wo.forward(ctx, &concat)
    }

    /// Self-attention convenience: `forward(x, x, x, mask)`.
    pub fn self_attention<F: Fwd>(&self, ctx: &F, x: &F::V, mask: Option<&F::V>) -> F::V {
        self.forward(ctx, x, x, x, mask)
    }

    /// Returns the averaged (over heads) post-softmax attention weights for
    /// introspection, e.g. the Figure 3 visualization. Shape `[b, lq, lk]`.
    pub fn attention_weights<F: Fwd>(
        &self,
        ctx: &F,
        query: &F::V,
        key: &F::V,
        mask: Option<&F::V>,
    ) -> Tensor {
        let q = self.wq.forward(ctx, query);
        let k = self.wk.forward(ctx, key);
        let mut acc: Option<Tensor> = None;
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let qh = q.narrow_last(start, self.head_dim);
            let kh = k.narrow_last(start, self.head_dim);
            let mut scores = qh.matmul_t_scaled(&kh, 1.0 / (self.head_dim as f64).sqrt());
            if let Some(m) = mask {
                scores = scores.add(m);
            }
            let w = scores.softmax_last().value();
            match &mut acc {
                Some(a) => a.add_assign(&w),
                slot @ None => *slot = Some(w),
            }
        }
        let mut avg = acc.expect("at least one head");
        avg.scale_assign(1.0 / self.heads as f64);
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use crate::param::{Init, ParamStore};
    use tranad_tensor::check::assert_gradients_match;

    #[test]
    fn causal_mask_lower_triangular() {
        let m = causal_mask(3);
        assert_eq!(m.at(&[0, 0]), 0.0);
        assert_eq!(m.at(&[0, 1]), MASK_NEG);
        assert_eq!(m.at(&[2, 1]), 0.0);
        assert_eq!(m.at(&[1, 2]), MASK_NEG);
    }

    #[test]
    fn attention_preserves_shape() {
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(0);
        let mha = MultiHeadAttention::new(&mut store, &mut init, 8, 2);
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::from_fn([3, 5, 8], |i| (i as f64 * 0.1).sin()));
        let y = mha.self_attention(&ctx, &x, None);
        assert_eq!(y.shape().dims(), &[3, 5, 8]);
    }

    #[test]
    fn cross_attention_uses_key_length() {
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(0);
        let mha = MultiHeadAttention::new(&mut store, &mut init, 4, 2);
        let ctx = Ctx::eval(&store);
        let q = ctx.input(Tensor::ones([2, 3, 4]));
        let kv = ctx.input(Tensor::ones([2, 7, 4]));
        let y = mha.forward(&ctx, &q, &kv, &kv, None);
        assert_eq!(y.shape().dims(), &[2, 3, 4]);
    }

    #[test]
    fn causal_attention_ignores_future() {
        // With a causal mask, changing the *last* timestep of the input must
        // not change the output at the *first* timestep.
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(1);
        let mha = MultiHeadAttention::new(&mut store, &mut init, 4, 1);
        let ctx = Ctx::eval(&store);
        let mask = ctx.input(causal_mask(3));

        let base = Tensor::from_fn([1, 3, 4], |i| (i as f64 * 0.3).cos());
        let mut changed = base.clone();
        for v in &mut changed.data_mut()[8..12] {
            *v += 5.0; // perturb t=2 only
        }

        let y0 = mha
            .self_attention(&ctx, &ctx.input(base), Some(&mask))
            .value();
        let y1 = mha
            .self_attention(&ctx, &ctx.input(changed), Some(&mask))
            .value();
        for j in 0..4 {
            assert!((y0.at(&[0, 0, j]) - y1.at(&[0, 0, j])).abs() < 1e-12);
            assert!((y0.at(&[0, 1, j]) - y1.at(&[0, 1, j])).abs() < 1e-12);
        }
        // ...but the masked step itself does change.
        assert!((y0.at(&[0, 2, 0]) - y1.at(&[0, 2, 0])).abs() > 1e-6);
    }

    #[test]
    fn attention_weights_rows_sum_to_one() {
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(2);
        let mha = MultiHeadAttention::new(&mut store, &mut init, 6, 3);
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::from_fn([1, 4, 6], |i| (i as f64 * 0.17).sin()));
        let w = mha.attention_weights(&ctx, &x, &x, None);
        assert_eq!(w.shape().dims(), &[1, 4, 4]);
        for r in 0..4 {
            let s: f64 = (0..4).map(|c| w.at(&[0, r, c])).sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn scaled_dot_attention_gradients() {
        let q = Tensor::from_fn([1, 2, 3], |i| (i as f64 * 0.4).sin());
        let k = Tensor::from_fn([1, 2, 3], |i| (i as f64 * 0.6).cos());
        let v = Tensor::from_fn([1, 2, 3], |i| i as f64 * 0.1);
        assert_gradients_match(&[q, k, v], 1e-3, |_t, vars| {
            scaled_dot_attention(&vars[0], &vars[1], &vars[2], None)
                .square()
                .mean_all()
        });
    }
}

//! Basic neural network layers: affine maps, layer normalization, and
//! position-wise feed-forward blocks.

use crate::fwd::{Fwd, Value};
use crate::param::{Init, ParamId, ParamStore};
use tranad_tensor::{Act, Tensor};

/// Affine layer `y = x W + b` applied to the last dimension.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer.
    pub fn new(store: &mut ParamStore, init: &mut Init, in_dim: usize, out_dim: usize) -> Self {
        Self::with_bias(store, init, in_dim, out_dim, true)
    }

    /// Creates a linear layer, optionally without bias.
    pub fn with_bias(
        store: &mut ParamStore,
        init: &mut Init,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(init.xavier(in_dim, out_dim));
        let b = bias.then(|| store.add(Tensor::zeros([out_dim])));
        Linear { w, b, in_dim, out_dim }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer. `x` may be `[.., in_dim]` of rank 2 or 3.
    pub fn forward<F: Fwd>(&self, ctx: &F, x: &F::V) -> F::V {
        self.forward_act(ctx, x, Act::Identity)
    }

    /// Applies the layer fused with an activation: `act(x W + b)` records a
    /// single tape node instead of three (matmul, add, activation), with
    /// bitwise-identical values and gradients.
    pub fn forward_act<F: Fwd>(&self, ctx: &F, x: &F::V, act: Act) -> F::V {
        debug_assert_eq!(
            x.shape().last_dim(),
            self.in_dim,
            "Linear expected last dim {}, got {}",
            self.in_dim,
            x.shape()
        );
        let w = ctx.param(self.w);
        let b = self.b.map(|b| ctx.param(b));
        x.linear_act(&w, b.as_ref(), act)
    }
}

/// Layer normalization over the last dimension with learned scale and shift.
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f64,
}

impl LayerNorm {
    /// Creates a layer norm for feature width `dim`.
    pub fn new(store: &mut ParamStore, dim: usize) -> Self {
        LayerNorm {
            gamma: store.add(Tensor::ones([dim])),
            beta: store.add(Tensor::zeros([dim])),
            eps: 1e-5,
        }
    }

    /// Applies normalization followed by the affine transform, fused into a
    /// single tape node (bitwise identical to the norm/mul/add chain).
    pub fn forward<F: Fwd>(&self, ctx: &F, x: &F::V) -> F::V {
        x.layer_norm_affine(&ctx.param(self.gamma), &ctx.param(self.beta), self.eps)
    }
}

/// Supported activation functions for feed-forward blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no activation).
    Identity,
}

impl Activation {
    /// Applies the activation.
    pub fn apply<V: Value>(self, x: &V) -> V {
        match self {
            Activation::Relu => x.relu(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x.clone(),
        }
    }

    /// The elementwise-kernel equivalent used by fused ops.
    pub fn to_act(self) -> Act {
        match self {
            Activation::Relu => Act::Relu,
            Activation::Sigmoid => Act::Sigmoid,
            Activation::Tanh => Act::Tanh,
            Activation::Identity => Act::Identity,
        }
    }
}

/// A stack of linear layers with a shared hidden activation, e.g. the
/// two-layer position-wise feed-forward unit of a transformer encoder.
pub struct FeedForward {
    layers: Vec<Linear>,
    hidden_act: Activation,
    out_act: Activation,
    dropout: f64,
}

impl FeedForward {
    /// Builds an MLP through the given widths, e.g. `[64, 128, 64]` for a
    /// two-layer block. `hidden_act` is applied between layers, `out_act`
    /// after the last layer.
    pub fn new(
        store: &mut ParamStore,
        init: &mut Init,
        widths: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        dropout: f64,
    ) -> Self {
        assert!(widths.len() >= 2, "FeedForward needs at least input and output widths");
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(store, init, w[0], w[1]))
            .collect();
        FeedForward { layers, hidden_act, out_act, dropout }
    }

    /// Applies the block. Each linear layer is fused with its activation
    /// into one tape node.
    pub fn forward<F: Fwd>(&self, ctx: &F, x: &F::V) -> F::V {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            if i < last {
                h = layer.forward_act(ctx, &h, self.hidden_act.to_act());
                h = ctx.dropout(&h, self.dropout);
            } else {
                h = layer.forward_act(ctx, &h, self.out_act.to_act());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use tranad_tensor::check::assert_gradients_match;

    fn setup() -> (ParamStore, Init) {
        (ParamStore::new(), Init::with_seed(0))
    }

    #[test]
    fn linear_shapes() {
        let (mut store, mut init) = setup();
        let lin = Linear::new(&mut store, &mut init, 3, 5);
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::ones([2, 3]));
        assert_eq!(lin.forward(&ctx, &x).shape().dims(), &[2, 5]);
        let x3 = ctx.input(Tensor::ones([4, 2, 3]));
        assert_eq!(lin.forward(&ctx, &x3).shape().dims(), &[4, 2, 5]);
    }

    #[test]
    fn linear_zero_weights_returns_bias() {
        let mut store = ParamStore::new();
        let mut init = Init::with_seed(0);
        let lin = Linear::new(&mut store, &mut init, 2, 2);
        // overwrite weights with zeros, bias with [1, 2]
        store.set(crate::param::ParamId(0), Tensor::zeros([2, 2]));
        store.set(crate::param::ParamId(1), Tensor::from_slice(&[1.0, 2.0]));
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::ones([3, 2]));
        let y = lin.forward(&ctx, &x).value();
        assert_eq!(y.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn linear_gradients_flow_to_params() {
        let (mut store, mut init) = setup();
        let lin = Linear::new(&mut store, &mut init, 3, 2);
        let ctx = Ctx::train(&store, 0);
        let x = ctx.input(Tensor::ones([4, 3]));
        let loss = lin.forward(&ctx, &x).square().mean_all();
        loss.backward();
        let grads = ctx.grads();
        assert_eq!(grads.len(), 2); // w and b
        assert!(grads.iter().any(|(_, g)| g.l2_norm() > 0.0));
    }

    #[test]
    fn layer_norm_affine_identity_params() {
        let (mut store, _) = setup();
        let ln = LayerNorm::new(&mut store, 4);
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]));
        let y = ln.forward(&ctx, &x).value();
        // gamma=1, beta=0 -> standardized output
        assert!(y.mean().abs() < 1e-10);
    }

    #[test]
    fn feed_forward_output_range_sigmoid() {
        let (mut store, mut init) = setup();
        let ff = FeedForward::new(
            &mut store,
            &mut init,
            &[4, 8, 4],
            Activation::Relu,
            Activation::Sigmoid,
            0.0,
        );
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::from_fn([5, 4], |i| i as f64 - 10.0));
        let y = ff.forward(&ctx, &x).value();
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn composite_layer_matches_numeric_grad() {
        // End-to-end gradient check through Linear + LayerNorm wiring,
        // with the weights treated as the checked inputs.
        let w = Tensor::from_fn([3, 3], |i| (i as f64 * 0.37).sin());
        let x = Tensor::from_fn([2, 3], |i| (i as f64 * 0.71).cos());
        assert_gradients_match(&[w, x], 1e-3, |_t, v| {
            v[1].matmul(&v[0]).layer_norm_last(1e-5).sigmoid().mean_all()
        });
    }
}

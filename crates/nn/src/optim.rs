//! Optimizers (AdamW, SGD) and the step learning-rate scheduler used by the
//! paper (§4: AdamW, initial lr 0.01, step scheduler with factor 0.5).

use crate::param::{ParamId, ParamStore};
use std::collections::HashMap;
use tranad_telemetry::Recorder;
use tranad_tensor::Tensor;

/// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter).
pub struct AdamW {
    /// Learning rate (mutated by schedulers).
    pub lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
    rec: Recorder,
}

impl AdamW {
    /// Creates an AdamW optimizer with standard betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-4,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
            rec: Recorder::disabled(),
        }
    }

    /// Sets the decoupled weight-decay coefficient.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Attaches a telemetry recorder: each step observes the gradient L2
    /// norm (`optim.grad_norm` histogram) and tracks the learning-rate
    /// schedule (`optim.lr` gauge). The norm is only computed when the
    /// recorder is enabled, so a disabled recorder costs one branch.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Applies one update given `(param, gradient)` pairs.
    ///
    /// Updates run in place through [`ParamStore::get_mut`]; copy-on-write
    /// detaches any live snapshot or tape leaf sharing the storage, so the
    /// result is bitwise identical to the old clone-and-set path.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        let _s = tranad_telemetry::span::enter("optim.step");
        self.t += 1;
        if self.rec.enabled() {
            self.rec.observe("optim.grad_norm", grad_norm(grads));
            self.rec.gauge("optim.lr", self.lr);
            self.rec.add("optim.steps", 1);
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads {
            let idx = id.index();
            let m = self.m.entry(idx).or_insert_with(|| Tensor::zeros(*g.shape()));
            let v = self.v.entry(idx).or_insert_with(|| Tensor::zeros(*g.shape()));
            let gd = g.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            let pd = store.get_mut(*id).data_mut();
            for i in 0..gd.len() {
                let gi = gd[i];
                let mi = self.beta1 * md[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * vd[i] + (1.0 - self.beta2) * gi * gi;
                md[i] = mi;
                vd[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                pd[i] -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * pd[i]);
            }
        }
    }
}

/// Plain stochastic gradient descent; used for the MAML inner loop.
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64) -> Self {
        Sgd { lr }
    }

    /// Applies `p -= lr * g` for each pair, in place (copy-on-write protects
    /// any snapshot sharing the storage).
    pub fn step(&self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        let _s = tranad_telemetry::span::enter("optim.sgd_step");
        for (id, g) in grads {
            for (pi, gi) in store.get_mut(*id).data_mut().iter_mut().zip(g.data()) {
                *pi -= self.lr * gi;
            }
        }
    }
}

/// Multiplies the learning rate by `gamma` every `step_size` epochs.
pub struct StepLr {
    base_lr: f64,
    step_size: u64,
    gamma: f64,
}

impl StepLr {
    /// Creates a scheduler. The paper uses `gamma = 0.5`.
    pub fn new(base_lr: f64, step_size: u64, gamma: f64) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        StepLr { base_lr, step_size, gamma }
    }

    /// Learning rate at the given (0-based) epoch.
    pub fn lr_at(&self, epoch: u64) -> f64 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }

    /// Updates an optimizer in place for the given epoch.
    pub fn apply(&self, opt: &mut AdamW, epoch: u64) {
        opt.lr = self.lr_at(epoch);
    }
}

/// Global L2 norm of a gradient list.
pub fn grad_norm(grads: &[(ParamId, Tensor)]) -> f64 {
    grads
        .iter()
        .map(|(_, g)| g.data().iter().map(|v| v * v).sum::<f64>())
        .sum::<f64>()
        .sqrt()
}

/// Clips gradients in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [(ParamId, Tensor)], max_norm: f64) -> f64 {
    let norm = grad_norm(grads);
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for (_, g) in grads.iter_mut() {
            g.scale_assign(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    /// Minimizes (p - 3)^2; any sane optimizer drives p toward 3.
    fn quadratic_descent(mut make_step: impl FnMut(&mut ParamStore, &[(ParamId, Tensor)])) -> f64 {
        let mut store = ParamStore::new();
        let id = store.add(Tensor::from_slice(&[0.0]));
        for _ in 0..200 {
            let ctx = Ctx::train(&store, 0);
            let p = ctx.param(id);
            let target = ctx.input(Tensor::from_slice(&[3.0]));
            let loss = p.sub(&target).square().sum_all();
            loss.backward();
            let grads = ctx.grads();
            make_step(&mut store, &grads);
        }
        store.get(id).data()[0]
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let mut opt = AdamW::new(0.1).with_weight_decay(0.0);
        let p = quadratic_descent(|store, grads| opt.step(store, grads));
        assert!((p - 3.0).abs() < 0.05, "converged to {p}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let opt = Sgd::new(0.1);
        let p = quadratic_descent(|store, grads| opt.step(store, grads));
        assert!((p - 3.0).abs() < 1e-6, "converged to {p}");
    }

    #[test]
    fn weight_decay_shrinks_unused_direction() {
        // With pure decay (zero gradient), parameters shrink toward 0.
        let mut store = ParamStore::new();
        let id = store.add(Tensor::from_slice(&[1.0]));
        let mut opt = AdamW::new(0.1).with_weight_decay(0.1);
        for _ in 0..50 {
            opt.step(&mut store, &[(id, Tensor::zeros([1]))]);
        }
        assert!(store.get(id).data()[0] < 0.7);
    }

    /// The pre-refactor AdamW update: clone the parameter, update the clone
    /// element by element, write it back with `set`. Kept here as the
    /// reference the in-place path must match to the last bit.
    struct CloneAndSetAdamW {
        lr: f64,
        beta1: f64,
        beta2: f64,
        eps: f64,
        weight_decay: f64,
        t: u64,
        m: std::collections::HashMap<usize, Tensor>,
        v: std::collections::HashMap<usize, Tensor>,
    }

    impl CloneAndSetAdamW {
        fn new(lr: f64, weight_decay: f64) -> Self {
            CloneAndSetAdamW {
                lr,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                weight_decay,
                t: 0,
                m: std::collections::HashMap::new(),
                v: std::collections::HashMap::new(),
            }
        }

        fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
            self.t += 1;
            let bc1 = 1.0 - self.beta1.powi(self.t as i32);
            let bc2 = 1.0 - self.beta2.powi(self.t as i32);
            for (id, g) in grads {
                let idx = id.index();
                let m = self.m.entry(idx).or_insert_with(|| Tensor::zeros(*g.shape()));
                let v = self.v.entry(idx).or_insert_with(|| Tensor::zeros(*g.shape()));
                let mut p = store.get(*id).clone();
                for i in 0..g.numel() {
                    let gi = g.data()[i];
                    let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                    let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                    m.data_mut()[i] = mi;
                    v.data_mut()[i] = vi;
                    let m_hat = mi / bc1;
                    let v_hat = vi / bc2;
                    let pd = p.data_mut();
                    pd[i] -=
                        self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * pd[i]);
                }
                store.set(*id, p);
            }
        }
    }

    #[test]
    fn in_place_adamw_matches_clone_and_set_bitwise() {
        use tranad_tensor::Rng;

        let mut rng = Rng::new(0x5eed);
        let mut store_a = ParamStore::new();
        let mut store_b = ParamStore::new();
        let init = Tensor::from_fn([4, 3], |i| ((i as f64) * 0.31).sin());
        let ida = store_a.add(init.clone());
        let idb = store_b.add(init);

        let mut new_opt = AdamW::new(0.01).with_weight_decay(1e-4);
        let mut old_opt = CloneAndSetAdamW::new(0.01, 1e-4);
        for _ in 0..25 {
            let g = Tensor::from_fn([4, 3], |_| rng.normal());
            // Keep a live snapshot across the in-place step so the update
            // has to copy-on-write, exercising the aliased path too.
            let snap = store_a.snapshot();
            new_opt.step(&mut store_a, &[(ida, g.clone())]);
            old_opt.step(&mut store_b, &[(idb, g)]);
            assert_eq!(
                store_a.get(ida).data(),
                store_b.get(idb).data(),
                "in-place AdamW diverged from clone-and-set at t={}",
                new_opt.t
            );
            assert_ne!(
                snap[0].data(),
                store_a.get(ida).data(),
                "snapshot must keep pre-step values"
            );
        }
    }

    #[test]
    fn in_place_sgd_matches_clone_and_set_bitwise() {
        let mut store_a = ParamStore::new();
        let mut store_b = ParamStore::new();
        let init = Tensor::from_fn([7], |i| (i as f64 * 0.7).cos());
        let ida = store_a.add(init.clone());
        let idb = store_b.add(init);
        let opt = Sgd::new(0.05);
        for step in 0..10 {
            let g = Tensor::from_fn([7], |i| ((i + step) as f64 * 0.13).sin());
            opt.step(&mut store_a, &[(ida, g.clone())]);
            // reference: clone, update, set
            let mut p = store_b.get(idb).clone();
            for (pi, gi) in p.data_mut().iter_mut().zip(g.data()) {
                *pi -= opt.lr * gi;
            }
            store_b.set(idb, p);
            assert_eq!(store_a.get(ida).data(), store_b.get(idb).data());
        }
    }

    #[test]
    fn step_lr_schedule() {
        let sched = StepLr::new(0.01, 5, 0.5);
        assert_eq!(sched.lr_at(0), 0.01);
        assert_eq!(sched.lr_at(4), 0.01);
        assert_eq!(sched.lr_at(5), 0.005);
        assert_eq!(sched.lr_at(10), 0.0025);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut grads = vec![(ParamId(0), Tensor::from_slice(&[3.0, 4.0]))];
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        let post: f64 = grads[0].1.data().iter().map(|v| v * v).sum::<f64>();
        assert!((post.sqrt() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_noop_under_limit() {
        let mut grads = vec![(ParamId(0), Tensor::from_slice(&[0.3, 0.4]))];
        clip_grad_norm(&mut grads, 1.0);
        assert_eq!(grads[0].1.data(), &[0.3, 0.4]);
    }
}

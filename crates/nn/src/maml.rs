//! First-order model-agnostic meta-learning (FOMAML).
//!
//! The paper's Algorithm 1 performs, at the end of each epoch, a meta update
//! `θ ← θ − β ∇_θ L(f(θ'))` where `θ' = θ − α ∇_θ L(f(θ))` is computed on a
//! random batch (Eqs. 11–12). We implement the first-order approximation:
//! the gradient at `θ'` is applied directly to `θ`, which Finn et al. (2017)
//! report performs nearly identically while avoiding second derivatives.

use crate::optim::Sgd;
use crate::param::{ParamId, ParamStore};
use tranad_tensor::Tensor;

/// Configuration for a FOMAML meta step.
#[derive(Debug, Clone, Copy)]
pub struct MamlConfig {
    /// Inner-loop (adaptation) learning rate α.
    pub inner_lr: f64,
    /// Meta (outer) learning rate β. The paper uses 0.02.
    pub meta_lr: f64,
}

impl Default for MamlConfig {
    fn default() -> Self {
        MamlConfig { inner_lr: 0.01, meta_lr: 0.02 }
    }
}

/// Performs one first-order MAML step.
///
/// `loss_grads` computes gradients of the task loss at the *current* store
/// contents (e.g. by running a forward/backward pass over a random batch).
/// It is invoked twice: once at θ to compute the adaptation step, and once
/// at θ' = θ − α∇L(θ) to compute the meta gradient, which is then applied
/// to the original θ with step size β.
pub fn fomaml_step(
    store: &mut ParamStore,
    config: MamlConfig,
    mut loss_grads: impl FnMut(&ParamStore) -> Vec<(ParamId, Tensor)>,
) {
    let _s = tranad_telemetry::span::enter("maml.step");
    let theta = store.snapshot();

    // Inner adaptation: θ' = θ - α ∇L(θ)
    {
        let _inner = tranad_telemetry::span::enter("maml.inner");
        let inner_grads = loss_grads(store);
        Sgd::new(config.inner_lr).step(store, &inner_grads);
    }

    // Meta gradient evaluated at θ', then restore θ and apply it with β.
    let _meta = tranad_telemetry::span::enter("maml.meta");
    let meta_grads = loss_grads(store);
    store.restore(&theta);
    Sgd::new(config.meta_lr).step(store, &meta_grads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn fomaml_moves_toward_task_optimum() {
        // Task loss: (p - 5)^2. FOMAML should still descend toward 5.
        let mut store = ParamStore::new();
        let id = store.add(Tensor::from_slice(&[0.0]));
        let cfg = MamlConfig { inner_lr: 0.05, meta_lr: 0.05 };
        for _ in 0..100 {
            fomaml_step(&mut store, cfg, |s| {
                let ctx = Ctx::train(s, 0);
                let p = ctx.param(id);
                let t = ctx.input(Tensor::from_slice(&[5.0]));
                p.sub(&t).square().sum_all().backward();
                ctx.grads()
            });
        }
        let p = store.get(id).data()[0];
        assert!((p - 5.0).abs() < 0.1, "converged to {p}");
    }

    #[test]
    fn fomaml_restores_theta_before_meta_update() {
        // With meta_lr = 0 the parameters must be unchanged even though the
        // inner loop moved them.
        let mut store = ParamStore::new();
        let id = store.add(Tensor::from_slice(&[1.0]));
        let cfg = MamlConfig { inner_lr: 0.5, meta_lr: 0.0 };
        fomaml_step(&mut store, cfg, |s| {
            let ctx = Ctx::train(s, 0);
            let p = ctx.param(id);
            p.square().sum_all().backward();
            ctx.grads()
        });
        assert_eq!(store.get(id).data(), &[1.0]);
    }

    #[test]
    fn fomaml_uses_adapted_gradient() {
        // Loss (p - 4)^2 starting from p=0 with α=0.25: θ' = 0 + 0.25*8 = 2,
        // meta grad at θ' is 2(2-4) = -4, so θ ← 0 + 0.1*4 = 0.4.
        let mut store = ParamStore::new();
        let id = store.add(Tensor::from_slice(&[0.0]));
        let cfg = MamlConfig { inner_lr: 0.25, meta_lr: 0.1 };
        fomaml_step(&mut store, cfg, |s| {
            let ctx = Ctx::train(s, 0);
            let p = ctx.param(id);
            let t = ctx.input(Tensor::from_slice(&[4.0]));
            p.sub(&t).square().sum_all().backward();
            ctx.grads()
        });
        let p = store.get(id).data()[0];
        assert!((p - 0.4).abs() < 1e-9, "got {p}");
    }
}

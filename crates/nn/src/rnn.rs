//! Recurrent cells (LSTM, GRU) needed by the paper's recurrent baselines
//! (LSTM-NDT, OmniAnomaly, MAD-GAN, CAE-M, DAGMM's estimation network).

use crate::fwd::{Fwd, Value};
use crate::layers::Linear;
use crate::param::{Init, ParamStore};
use tranad_tensor::Tensor;

/// A single LSTM cell with fused gate projections.
pub struct LstmCell {
    wx: Linear, // input -> 4H (i, f, g, o)
    wh: Linear, // hidden -> 4H
    hidden: usize,
}

impl LstmCell {
    /// Creates a cell mapping `input` features to a `hidden`-sized state.
    pub fn new(store: &mut ParamStore, init: &mut Init, input: usize, hidden: usize) -> Self {
        LstmCell {
            wx: Linear::new(store, init, input, 4 * hidden),
            wh: Linear::with_bias(store, init, hidden, 4 * hidden, false),
            hidden,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Zero-initialized `(h, c)` state for a batch of size `b`.
    pub fn zero_state<F: Fwd>(&self, ctx: &F, b: usize) -> (F::V, F::V) {
        (
            ctx.input(Tensor::zeros([b, self.hidden])),
            ctx.input(Tensor::zeros([b, self.hidden])),
        )
    }

    /// One step: `x` is `[b, input]`, state is `([b, h], [b, h])`.
    pub fn step<F: Fwd>(&self, ctx: &F, x: &F::V, state: (&F::V, &F::V)) -> (F::V, F::V) {
        let (h, c) = state;
        let gates = self.wx.forward(ctx, x).add(&self.wh.forward(ctx, h));
        let hd = self.hidden;
        let i = gates.narrow_last(0, hd).sigmoid();
        let f = gates.narrow_last(hd, hd).sigmoid();
        let g = gates.narrow_last(2 * hd, hd).tanh();
        let o = gates.narrow_last(3 * hd, hd).sigmoid();
        let c_next = f.mul(c).add(&i.mul(&g));
        let h_next = o.mul(&c_next.tanh());
        (h_next, c_next)
    }

    /// Runs the cell over a `[b, len, input]` sequence, returning the hidden
    /// state at every step as `[b, len, hidden]`.
    pub fn run<F: Fwd>(&self, ctx: &F, xs: &F::V) -> F::V {
        let dims = xs.shape();
        assert_eq!(dims.rank(), 3, "LstmCell::run expects [b, len, input]");
        let (b, len, input) = (dims.dim(0), dims.dim(1), dims.dim(2));
        let (mut h, mut c) = self.zero_state(ctx, b);
        let mut outputs = Vec::with_capacity(len);
        for t in 0..len {
            let xt = slice_time(ctx, xs, b, len, input, t);
            let (h2, c2) = self.step(ctx, &xt, (&h, &c));
            h = h2;
            c = c2;
            outputs.push(h.reshape([b, 1, self.hidden]));
        }
        stack_time(&outputs, b, len, self.hidden)
    }
}

/// A single GRU cell with fused gate projections.
pub struct GruCell {
    wx: Linear, // input -> 3H (r, z, n)
    wh: Linear, // hidden -> 3H
    hidden: usize,
}

impl GruCell {
    /// Creates a cell mapping `input` features to a `hidden`-sized state.
    pub fn new(store: &mut ParamStore, init: &mut Init, input: usize, hidden: usize) -> Self {
        GruCell {
            wx: Linear::new(store, init, input, 3 * hidden),
            wh: Linear::with_bias(store, init, hidden, 3 * hidden, false),
            hidden,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Zero-initialized hidden state for a batch of size `b`.
    pub fn zero_state<F: Fwd>(&self, ctx: &F, b: usize) -> F::V {
        ctx.input(Tensor::zeros([b, self.hidden]))
    }

    /// One step: `x` is `[b, input]`, `h` is `[b, hidden]`.
    pub fn step<F: Fwd>(&self, ctx: &F, x: &F::V, h: &F::V) -> F::V {
        let gx = self.wx.forward(ctx, x);
        let gh = self.wh.forward(ctx, h);
        let hd = self.hidden;
        let r = gx.narrow_last(0, hd).add(&gh.narrow_last(0, hd)).sigmoid();
        let z = gx
            .narrow_last(hd, hd)
            .add(&gh.narrow_last(hd, hd))
            .sigmoid();
        let n = gx
            .narrow_last(2 * hd, hd)
            .add(&r.mul(&gh.narrow_last(2 * hd, hd)))
            .tanh();
        // h' = (1 - z) * n + z * h
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(&n).add(&z.mul(h))
    }

    /// Runs the cell over a `[b, len, input]` sequence, returning hidden
    /// states `[b, len, hidden]`.
    pub fn run<F: Fwd>(&self, ctx: &F, xs: &F::V) -> F::V {
        let dims = xs.shape();
        assert_eq!(dims.rank(), 3, "GruCell::run expects [b, len, input]");
        let (b, len, input) = (dims.dim(0), dims.dim(1), dims.dim(2));
        let mut h = self.zero_state(ctx, b);
        let mut outputs = Vec::with_capacity(len);
        for t in 0..len {
            let xt = slice_time(ctx, xs, b, len, input, t);
            h = self.step(ctx, &xt, &h);
            outputs.push(h.reshape([b, 1, self.hidden]));
        }
        stack_time(&outputs, b, len, self.hidden)
    }
}

/// Extracts timestep `t` of a `[b, len, d]` sequence as `[b, d]`,
/// differentiably (reshape + narrow trick on the flattened time axis).
fn slice_time<F: Fwd>(_ctx: &F, xs: &F::V, b: usize, len: usize, d: usize, t: usize) -> F::V {
    // [b, len, d] -> [b, len*d] -> narrow -> [b, d]
    xs.reshape([b, len * d]).narrow_last(t * d, d)
}

/// Stacks per-timestep `[b, 1, h]` outputs into `[b, len, h]`.
fn stack_time<V: Value>(outputs: &[V], b: usize, len: usize, h: usize) -> V {
    // concat over the last dim of [b, 1, h] views flattened to [b, h] each,
    // then reshape back: [b, len*h] -> [b, len, h]
    let flat: Vec<V> = outputs.iter().map(|o| o.reshape([b, h])).collect();
    Value::concat_last(&flat).reshape([b, len, h])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    fn setup() -> (ParamStore, Init) {
        (ParamStore::new(), Init::with_seed(0))
    }

    #[test]
    fn lstm_step_shapes() {
        let (mut store, mut init) = setup();
        let cell = LstmCell::new(&mut store, &mut init, 3, 5);
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::ones([2, 3]));
        let (h0, c0) = cell.zero_state(&ctx, 2);
        let (h, c) = cell.step(&ctx, &x, (&h0, &c0));
        assert_eq!(h.shape().dims(), &[2, 5]);
        assert_eq!(c.shape().dims(), &[2, 5]);
    }

    #[test]
    fn lstm_run_over_sequence() {
        let (mut store, mut init) = setup();
        let cell = LstmCell::new(&mut store, &mut init, 2, 4);
        let ctx = Ctx::eval(&store);
        let xs = ctx.input(Tensor::from_fn([3, 6, 2], |i| (i as f64 * 0.1).sin()));
        let hs = cell.run(&ctx, &xs);
        assert_eq!(hs.shape().dims(), &[3, 6, 4]);
        // hidden states bounded by tanh
        assert!(hs.value().data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_state_carries_information() {
        // Output at the last step must depend on the first input.
        let (mut store, mut init) = setup();
        let cell = LstmCell::new(&mut store, &mut init, 1, 3);
        let ctx = Ctx::eval(&store);
        let mut a = Tensor::zeros([1, 4, 1]);
        let b = a.clone();
        a.data_mut()[0] = 10.0; // change t=0 only
        let ha = cell.run(&ctx, &ctx.input(a)).value();
        let hb = cell.run(&ctx, &ctx.input(b)).value();
        let last_a = ha.at(&[0, 3, 0]);
        let last_b = hb.at(&[0, 3, 0]);
        assert!((last_a - last_b).abs() > 1e-8, "no memory: {last_a} vs {last_b}");
    }

    #[test]
    fn gru_run_shapes_and_grads() {
        let (mut store, mut init) = setup();
        let cell = GruCell::new(&mut store, &mut init, 2, 3);
        let ctx = Ctx::train(&store, 0);
        let xs = ctx.input(Tensor::from_fn([2, 5, 2], |i| (i as f64 * 0.2).cos()));
        let hs = cell.run(&ctx, &xs);
        assert_eq!(hs.shape().dims(), &[2, 5, 3]);
        hs.square().mean_all().backward();
        assert!(ctx.grad_norm_sq() > 0.0);
        assert!(ctx
            .grads()
            .iter()
            .all(|(_, g)| g.data().iter().all(|v| v.is_finite())));
    }

    #[test]
    fn gru_zero_input_zero_state_is_stable() {
        let (mut store, mut init) = setup();
        let cell = GruCell::new(&mut store, &mut init, 2, 3);
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::zeros([1, 2]));
        let h = cell.zero_state(&ctx, 1);
        let h1 = cell.step(&ctx, &x, &h);
        assert!(h1.value().data().iter().all(|v| v.is_finite()));
    }
}

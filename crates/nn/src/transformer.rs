//! Transformer building blocks: sinusoidal positional encoding, the
//! encoder layer of TranAD's Eq. (4), and the masked decoder-style window
//! encoder layer of Eq. (5).

use crate::attention::MultiHeadAttention;
use crate::fwd::{Fwd, Value};
use crate::layers::{Activation, FeedForward, LayerNorm};
use crate::param::{Init, ParamStore};
use tranad_tensor::Tensor;

/// Sinusoidal positional encoding table (Vaswani et al., 2017 §3.5).
///
/// Precomputed up to `max_len` positions for `d_model` features; sliced per
/// sequence length at forward time.
pub struct PositionalEncoding {
    table: Tensor,
    max_len: usize,
    d_model: usize,
}

impl PositionalEncoding {
    /// Builds the encoding table.
    pub fn new(max_len: usize, d_model: usize) -> Self {
        let table = Tensor::from_fn([max_len, d_model], |flat| {
            let pos = (flat / d_model) as f64;
            let i = flat % d_model;
            let exponent = (2 * (i / 2)) as f64 / d_model as f64;
            let angle = pos / 10_000_f64.powf(exponent);
            if i.is_multiple_of(2) {
                angle.sin()
            } else {
                angle.cos()
            }
        });
        PositionalEncoding { table, max_len, d_model }
    }

    /// Adds position encodings to `x` of shape `[b, len, d_model]`.
    pub fn forward<F: Fwd>(&self, ctx: &F, x: &F::V) -> F::V {
        let dims = x.shape();
        let len = dims.dim(dims.rank() - 2);
        assert!(
            len <= self.max_len,
            "sequence length {len} exceeds positional encoding table {}",
            self.max_len
        );
        assert_eq!(dims.last_dim(), self.d_model, "d_model mismatch");
        let rows = len * self.d_model;
        let slice = Tensor::from_vec(self.table.data()[..rows].to_vec(), [len, self.d_model]);
        x.add(&ctx.input(slice))
    }
}

/// Standard pre-built transformer encoder layer (TranAD Eq. 4):
/// self-attention + residual + LayerNorm, then feed-forward + residual +
/// LayerNorm, with dropout on each sublayer output.
pub struct EncoderLayer {
    attn: MultiHeadAttention,
    norm1: LayerNorm,
    ff: FeedForward,
    norm2: LayerNorm,
    dropout: f64,
}

impl EncoderLayer {
    /// Creates an encoder layer. `ff_hidden` is the feed-forward expansion
    /// width (the paper uses 2 feed-forward layers with 64 hidden units).
    pub fn new(
        store: &mut ParamStore,
        init: &mut Init,
        d_model: usize,
        heads: usize,
        ff_hidden: usize,
        dropout: f64,
    ) -> Self {
        EncoderLayer {
            attn: MultiHeadAttention::new(store, init, d_model, heads),
            norm1: LayerNorm::new(store, d_model),
            ff: FeedForward::new(
                store,
                init,
                &[d_model, ff_hidden, d_model],
                Activation::Relu,
                Activation::Identity,
                dropout,
            ),
            norm2: LayerNorm::new(store, d_model),
            dropout,
        }
    }

    /// Applies the layer to `x` `[b, len, d_model]` with an optional
    /// additive attention mask.
    pub fn forward<F: Fwd>(&self, ctx: &F, x: &F::V, mask: Option<&F::V>) -> F::V {
        let _s = tranad_telemetry::span::enter("nn.encoder_layer");
        let attn_out = ctx.dropout(&self.attn.self_attention(ctx, x, mask), self.dropout);
        let h = self.norm1.forward(ctx, &x.add(&attn_out));
        let ff_out = ctx.dropout(&self.ff.forward(ctx, &h), self.dropout);
        self.norm2.forward(ctx, &h.add(&ff_out))
    }

    /// Averaged self-attention weights for introspection.
    pub fn attention_weights<F: Fwd>(&self, ctx: &F, x: &F::V, mask: Option<&F::V>) -> Tensor {
        self.attn.attention_weights(ctx, x, x, mask)
    }
}

/// TranAD's window encoder (Eq. 5): masked self-attention on the window,
/// then cross-attention with the context encoding as keys/values, then a
/// feed-forward sublayer (as in a standard transformer decoder layer).
pub struct WindowEncoderLayer {
    self_attn: MultiHeadAttention,
    norm1: LayerNorm,
    cross_attn: MultiHeadAttention,
    norm2: LayerNorm,
    ff: FeedForward,
    norm3: LayerNorm,
    dropout: f64,
}

impl WindowEncoderLayer {
    /// Creates the window encoder layer.
    pub fn new(
        store: &mut ParamStore,
        init: &mut Init,
        d_model: usize,
        heads: usize,
        ff_hidden: usize,
        dropout: f64,
    ) -> Self {
        WindowEncoderLayer {
            self_attn: MultiHeadAttention::new(store, init, d_model, heads),
            norm1: LayerNorm::new(store, d_model),
            cross_attn: MultiHeadAttention::new(store, init, d_model, heads),
            norm2: LayerNorm::new(store, d_model),
            ff: FeedForward::new(
                store,
                init,
                &[d_model, ff_hidden, d_model],
                Activation::Relu,
                Activation::Identity,
                dropout,
            ),
            norm3: LayerNorm::new(store, d_model),
            dropout,
        }
    }

    /// `window`: `[b, k, d_model]`; `context`: `[b, c, d_model]` — the
    /// encoded complete sequence, used as keys and values of the
    /// cross-attention. `causal` is the `[k, k]` additive mask of Eq. 5.
    pub fn forward<F: Fwd>(&self, ctx: &F, window: &F::V, context: &F::V, causal: &F::V) -> F::V {
        let _s = tranad_telemetry::span::enter("nn.window_encoder_layer");
        let sa = ctx.dropout(
            &self.self_attn.self_attention(ctx, window, Some(causal)),
            self.dropout,
        );
        let h = self.norm1.forward(ctx, &window.add(&sa));
        let ca = ctx.dropout(
            &self.cross_attn.forward(ctx, &h, context, context, None),
            self.dropout,
        );
        let h2 = self.norm2.forward(ctx, &h.add(&ca));
        let ff_out = ctx.dropout(&self.ff.forward(ctx, &h2), self.dropout);
        self.norm3.forward(ctx, &h2.add(&ff_out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::causal_mask;
    use crate::ctx::Ctx;

    fn setup() -> (ParamStore, Init) {
        (ParamStore::new(), Init::with_seed(0))
    }

    #[test]
    fn positional_encoding_values() {
        let pe = PositionalEncoding::new(16, 4);
        // position 0: sin(0)=0, cos(0)=1 alternating
        assert_eq!(pe.table.at(&[0, 0]), 0.0);
        assert_eq!(pe.table.at(&[0, 1]), 1.0);
        // position 1, i=0: sin(1)
        assert!((pe.table.at(&[1, 0]) - 1f64.sin()).abs() < 1e-12);
    }

    #[test]
    fn positional_encoding_broadcasts_over_batch() {
        let pe = PositionalEncoding::new(8, 4);
        let store = ParamStore::new();
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::zeros([3, 5, 4]));
        let y = pe.forward(&ctx, &x).value();
        // all batches identical and equal to the table slice
        for b in 0..3 {
            for p in 0..5 {
                for d in 0..4 {
                    assert_eq!(y.at(&[b, p, d]), pe.table.at(&[p, d]));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds positional encoding table")]
    fn positional_encoding_length_check() {
        let pe = PositionalEncoding::new(4, 2);
        let store = ParamStore::new();
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::zeros([1, 8, 2]));
        pe.forward(&ctx, &x);
    }

    #[test]
    fn encoder_layer_shape_and_grads() {
        let (mut store, mut init) = setup();
        let layer = EncoderLayer::new(&mut store, &mut init, 8, 2, 16, 0.0);
        let ctx = Ctx::train(&store, 0);
        let x = ctx.input(Tensor::from_fn([2, 5, 8], |i| (i as f64 * 0.07).sin()));
        let y = layer.forward(&ctx, &x, None);
        assert_eq!(y.shape().dims(), &[2, 5, 8]);
        y.square().mean_all().backward();
        // every parameter of the layer received gradient
        assert!(ctx.grads().iter().all(|(_, g)| g.data().iter().all(|v| v.is_finite())));
        assert!(ctx.grad_norm_sq() > 0.0);
    }

    #[test]
    fn window_encoder_layer_shapes() {
        let (mut store, mut init) = setup();
        let layer = WindowEncoderLayer::new(&mut store, &mut init, 6, 3, 12, 0.0);
        let ctx = Ctx::eval(&store);
        let w = ctx.input(Tensor::from_fn([2, 4, 6], |i| (i as f64 * 0.11).cos()));
        let c = ctx.input(Tensor::from_fn([2, 9, 6], |i| (i as f64 * 0.05).sin()));
        let mask = ctx.input(causal_mask(4));
        let y = layer.forward(&ctx, &w, &c, &mask);
        assert_eq!(y.shape().dims(), &[2, 4, 6]);
    }

    #[test]
    fn encoder_output_changes_with_input() {
        let (mut store, mut init) = setup();
        let layer = EncoderLayer::new(&mut store, &mut init, 4, 2, 8, 0.0);
        let ctx = Ctx::eval(&store);
        let a = layer
            .forward(&ctx, &ctx.input(Tensor::zeros([1, 3, 4])), None)
            .value();
        let b = layer
            .forward(&ctx, &ctx.input(Tensor::ones([1, 3, 4])), None)
            .value();
        assert_ne!(a.data(), b.data());
    }
}

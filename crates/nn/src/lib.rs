//! # tranad-nn
//!
//! Neural-network layers, optimizers and meta-learning utilities built on
//! [`tranad_tensor`]'s autograd tape. This crate is the shared deep-learning
//! substrate for the TranAD model and all neural baselines of the paper.
//!
//! ## Architecture
//!
//! Parameters live in a [`ParamStore`]; each forward pass opens a [`Ctx`]
//! binding a fresh tape to the store, modules pull their parameters in as
//! tape leaves, and after `backward()` the context hands gradients back as
//! `(ParamId, Tensor)` pairs for [`optim::AdamW`] / [`optim::Sgd`].
//!
//! Layers are written once against the [`Fwd`] trait and run in two modes:
//! taped through [`TrainCtx`] (the historical `Ctx`) for training, or
//! tape-free through [`InferCtx`] for serving — plain tensor kernels, no
//! tape nodes or backward closures, bitwise-identical outputs (see [`fwd`]).
//!
//! ```
//! use tranad_nn::{Ctx, Init, ParamStore};
//! use tranad_nn::layers::Linear;
//! use tranad_nn::optim::AdamW;
//! use tranad_tensor::Tensor;
//!
//! let mut store = ParamStore::new();
//! let mut init = Init::with_seed(0);
//! let layer = Linear::new(&mut store, &mut init, 4, 1);
//! let mut opt = AdamW::new(0.01);
//!
//! for _step in 0..10 {
//!     let grads = {
//!         let ctx = Ctx::train(&store, 0);
//!         let x = ctx.input(Tensor::ones([8, 4]));
//!         let y = ctx.input(Tensor::zeros([8, 1]));
//!         let loss = layer.forward(&ctx, &x).mse(&y);
//!         loss.backward();
//!         ctx.grads()
//!     };
//!     opt.step(&mut store, &grads);
//! }
//! ```

pub mod attention;
pub mod ctx;
pub mod fwd;
pub mod layers;
pub mod maml;
pub mod optim;
pub mod param;
pub mod rnn;
pub mod transformer;

pub use ctx::{Ctx, TrainCtx};
pub use fwd::{Fwd, InferCtx, InferWorkspace, Value};
pub use param::{Init, ParamId, ParamStore};

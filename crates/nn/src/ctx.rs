//! Per-forward-pass context: binds a fresh autograd tape to a parameter
//! store, caching one leaf per parameter so gradients can be read back after
//! `backward`.

use crate::param::{ParamId, ParamStore};
use std::cell::RefCell;
use std::collections::HashMap;
use tranad_tensor::{Rng, Tape, Tensor, Var};

/// One forward/backward pass worth of state.
///
/// This is the **taped** implementation of [`crate::fwd::Fwd`]: every op
/// records a tape node so `backward()` can run. The tape-free counterpart
/// for serving is [`crate::fwd::InferCtx`].
pub struct TrainCtx<'a> {
    tape: Tape,
    store: &'a ParamStore,
    leaves: RefCell<HashMap<usize, Var>>,
    rng: RefCell<Rng>,
    /// Whether stochastic layers (dropout) are active.
    pub training: bool,
}

/// Historical name for [`TrainCtx`] — the taped context predates the
/// taped/tape-free split and most call sites (training, tests, docs) still
/// read naturally as `Ctx`.
pub type Ctx<'a> = TrainCtx<'a>;

impl<'a> TrainCtx<'a> {
    /// A training-mode context (dropout active) with a seeded RNG.
    pub fn train(store: &'a ParamStore, seed: u64) -> Self {
        TrainCtx {
            tape: Tape::new(),
            store,
            leaves: RefCell::new(HashMap::new()),
            rng: RefCell::new(Rng::new(seed)),
            training: true,
        }
    }

    /// An evaluation-mode context (dropout is the identity).
    pub fn eval(store: &'a ParamStore) -> Self {
        let mut ctx = Self::train(store, 0);
        ctx.training = false;
        ctx
    }

    /// The underlying tape.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// The leaf variable for a parameter, created on first use and cached so
    /// every use of the parameter shares gradient accumulation. The leaf is
    /// a borrowed view of the stored tensor (an O(1) shared-storage handle,
    /// not a copy); copy-on-write keeps it stable if the store is updated
    /// in place while the context is alive.
    pub fn param(&self, id: ParamId) -> Var {
        let mut leaves = self.leaves.borrow_mut();
        leaves
            .entry(id.index())
            .or_insert_with(|| self.tape.leaf(self.store.get(id).clone()))
            .clone()
    }

    /// Introduces a non-parameter input (data, masks, constants).
    pub fn input(&self, t: Tensor) -> Var {
        self.tape.leaf(t)
    }

    /// Inverted dropout: scales kept activations by `1/(1-p)` during
    /// training; identity in eval mode.
    pub fn dropout(&self, x: &Var, p: f64) -> Var {
        if !self.training || p <= 0.0 {
            return x.clone();
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let keep = 1.0 - p;
        let mask = {
            let mut rng = self.rng.borrow_mut();
            Tensor::from_fn(x.shape(), |_| {
                if rng.next_f64() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
        };
        x.mul(&self.input(mask))
    }

    /// Gradients of every parameter touched during this pass, as
    /// `(id, gradient)` pairs. Call after `backward()` on the loss.
    pub fn grads(&self) -> Vec<(ParamId, Tensor)> {
        let leaves = self.leaves.borrow();
        let mut out: Vec<(ParamId, Tensor)> = leaves
            .iter()
            .map(|(&idx, var)| (ParamId(idx), var.grad()))
            .collect();
        out.sort_by_key(|(id, _)| id.index());
        out
    }

    /// Squared L2 norm of all parameter gradients (for clipping/diagnostics).
    pub fn grad_norm_sq(&self) -> f64 {
        self.grads()
            .iter()
            .map(|(_, g)| g.data().iter().map(|v| v * v).sum::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;

    #[test]
    fn param_leaf_is_cached() {
        let mut store = ParamStore::new();
        let id = store.add(Tensor::from_slice(&[2.0]));
        let ctx = Ctx::train(&store, 0);
        let a = ctx.param(id);
        let b = ctx.param(id);
        // Reuse must accumulate gradient in one leaf: d(x*x)/dx = 2x = 4.
        let y = a.mul(&b).sum_all();
        y.backward();
        let grads = ctx.grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1.data(), &[4.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let store = ParamStore::new();
        let ctx = Ctx::eval(&store);
        let x = ctx.input(Tensor::ones([4, 4]));
        let y = ctx.dropout(&x, 0.5);
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn dropout_train_scales_kept_units() {
        let store = ParamStore::new();
        let ctx = Ctx::train(&store, 3);
        let x = ctx.input(Tensor::ones([100, 10]));
        let y = ctx.dropout(&x, 0.5).value();
        let kept = y.data().iter().filter(|&&v| v != 0.0).count();
        // Expect roughly half kept, each scaled to 2.0.
        assert!(kept > 350 && kept < 650, "kept {kept}");
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-12));
        // Expectation preserved.
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn grads_only_for_touched_params() {
        let mut store = ParamStore::new();
        let a = store.add(Tensor::from_slice(&[1.0]));
        let _unused = store.add(Tensor::from_slice(&[1.0]));
        let ctx = Ctx::train(&store, 0);
        let loss = ctx.param(a).square().sum_all();
        loss.backward();
        assert_eq!(ctx.grads().len(), 1);
    }
}

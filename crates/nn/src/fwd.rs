//! The two-mode forward abstraction: model code is written once against
//! [`Fwd`] / [`Value`] and runs either **taped** (training — every op records
//! a tape node with a backward closure, via [`TrainCtx`](crate::ctx::TrainCtx)
//! and [`Var`]) or **tape-free** (serving — plain eager tensor kernels, via
//! [`InferCtx`] and [`Tensor`]).
//!
//! ## Determinism argument
//!
//! The tape-free path is bitwise-identical to the taped forward pass by
//! construction: every [`Var`] forward op *is* an eager [`Tensor`] kernel
//! call (the tape node only adds bookkeeping for backward), and the
//! [`Value`] impl for [`Tensor`] invokes exactly the same kernels with
//! exactly the same operand order. No reassociation, no fused-multiply-add,
//! no skipped work — the only differences are the absent tape allocations
//! and the absent `op.*` telemetry spans, neither of which touches an f64.
//! The eager kernels themselves are thread-count-invariant (task boundaries
//! depend only on problem size), so taped-vs-tape-free parity holds at any
//! `TRANAD_THREADS` setting. `crates/tranad/tests/infer_parity.rs` asserts
//! all of this bit-for-bit.
//!
//! ## Workspace lifecycle
//!
//! [`InferCtx`] holds no buffers of its own: intermediates draw from the
//! thread-local [`tranad_tensor::bufpool`], and because no tape keeps them
//! alive, each one is recycled the moment the next op drops it. A scoring
//! pass therefore reuses a small, fixed working set of pooled buffers
//! instead of accreting one allocation per op the way a tape does.

use crate::ctx::TrainCtx;
use crate::param::{ParamId, ParamStore};
use tranad_tensor::{Act, Shape, Tensor, Var};

/// The op surface a forward pass may use, implemented by the taped [`Var`]
/// and the tape-free [`Tensor`]. Semantics (and bit patterns) of every op
/// are identical between the two; only the bookkeeping differs.
pub trait Value: Clone {
    /// Elementwise (broadcasting) addition.
    fn add(&self, other: &Self) -> Self;
    /// Elementwise (broadcasting) subtraction.
    fn sub(&self, other: &Self) -> Self;
    /// Elementwise (broadcasting) multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Elementwise (broadcasting) division.
    fn div(&self, other: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// Multiplication by a constant.
    fn scale(&self, c: f64) -> Self;
    /// Addition of a constant.
    fn add_scalar(&self, c: f64) -> Self;
    /// Matrix product (rank pairs as in [`Tensor::matmul`]).
    fn matmul(&self, other: &Self) -> Self;
    /// Swap of the last two dimensions.
    fn transpose(&self) -> Self;
    /// Shape reinterpretation (element count preserved).
    fn reshape(&self, shape: impl Into<Shape>) -> Self;
    /// Elementwise `exp`.
    fn exp(&self) -> Self;
    /// Elementwise natural log.
    fn ln(&self) -> Self;
    /// Elementwise square root.
    fn sqrt(&self) -> Self;
    /// Elementwise square.
    fn square(&self) -> Self;
    /// Elementwise absolute value.
    fn abs(&self) -> Self;
    /// Logistic sigmoid.
    fn sigmoid(&self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(&self) -> Self;
    /// Rectified linear unit.
    fn relu(&self) -> Self;
    /// Softmax over the last dimension.
    fn softmax_last(&self) -> Self;
    /// Layer normalization over the last dimension (no affine).
    fn layer_norm_last(&self, eps: f64) -> Self;
    /// Fused `act(self @ w + b)`.
    fn linear_act(&self, w: &Self, b: Option<&Self>, act: Act) -> Self;
    /// Fused `layer_norm(self) * gamma + beta`.
    fn layer_norm_affine(&self, gamma: &Self, beta: &Self, eps: f64) -> Self;
    /// Fused `(self @ other^T) * scale` (attention scores).
    fn matmul_t_scaled(&self, other: &Self, scale: f64) -> Self;
    /// Sum of all elements (rank-0 result).
    fn sum_all(&self) -> Self;
    /// Mean of all elements (rank-0 result).
    fn mean_all(&self) -> Self;
    /// Sum over the last dimension, dropping it.
    fn sum_last(&self) -> Self;
    /// Mean over the last dimension, dropping it.
    fn mean_last(&self) -> Self;
    /// Concatenation along the last dimension.
    fn concat_last(parts: &[Self]) -> Self;
    /// `len` columns of the last dimension starting at `start`.
    fn narrow_last(&self, start: usize, len: usize) -> Self;
    /// The current value as a plain tensor (O(1) shared-storage handle).
    fn value(&self) -> Tensor;
    /// The shape of the current value.
    fn shape(&self) -> Shape;

    /// Mean squared error against `target`: `mean((self - target)^2)`.
    fn mse(&self, target: &Self) -> Self {
        self.sub(target).square().mean_all()
    }
}

impl Value for Var {
    fn add(&self, other: &Self) -> Self {
        Var::add(self, other)
    }
    fn sub(&self, other: &Self) -> Self {
        Var::sub(self, other)
    }
    fn mul(&self, other: &Self) -> Self {
        Var::mul(self, other)
    }
    fn div(&self, other: &Self) -> Self {
        Var::div(self, other)
    }
    fn neg(&self) -> Self {
        Var::neg(self)
    }
    fn scale(&self, c: f64) -> Self {
        Var::scale(self, c)
    }
    fn add_scalar(&self, c: f64) -> Self {
        Var::add_scalar(self, c)
    }
    fn matmul(&self, other: &Self) -> Self {
        Var::matmul(self, other)
    }
    fn transpose(&self) -> Self {
        Var::transpose(self)
    }
    fn reshape(&self, shape: impl Into<Shape>) -> Self {
        Var::reshape(self, shape)
    }
    fn exp(&self) -> Self {
        Var::exp(self)
    }
    fn ln(&self) -> Self {
        Var::ln(self)
    }
    fn sqrt(&self) -> Self {
        Var::sqrt(self)
    }
    fn square(&self) -> Self {
        Var::square(self)
    }
    fn abs(&self) -> Self {
        Var::abs(self)
    }
    fn sigmoid(&self) -> Self {
        Var::sigmoid(self)
    }
    fn tanh(&self) -> Self {
        Var::tanh(self)
    }
    fn relu(&self) -> Self {
        Var::relu(self)
    }
    fn softmax_last(&self) -> Self {
        Var::softmax_last(self)
    }
    fn layer_norm_last(&self, eps: f64) -> Self {
        Var::layer_norm_last(self, eps)
    }
    fn linear_act(&self, w: &Self, b: Option<&Self>, act: Act) -> Self {
        Var::linear_act(self, w, b, act)
    }
    fn layer_norm_affine(&self, gamma: &Self, beta: &Self, eps: f64) -> Self {
        Var::layer_norm_affine(self, gamma, beta, eps)
    }
    fn matmul_t_scaled(&self, other: &Self, scale: f64) -> Self {
        Var::matmul_t_scaled(self, other, scale)
    }
    fn sum_all(&self) -> Self {
        Var::sum_all(self)
    }
    fn mean_all(&self) -> Self {
        Var::mean_all(self)
    }
    fn sum_last(&self) -> Self {
        Var::sum_last(self)
    }
    fn mean_last(&self) -> Self {
        Var::mean_last(self)
    }
    fn concat_last(parts: &[Self]) -> Self {
        Var::concat_last(parts)
    }
    fn narrow_last(&self, start: usize, len: usize) -> Self {
        Var::narrow_last(self, start, len)
    }
    fn value(&self) -> Tensor {
        Var::value(self)
    }
    fn shape(&self) -> Shape {
        Var::shape(self)
    }
    fn mse(&self, target: &Self) -> Self {
        Var::mse(self, target)
    }
}

// Each body below is copied verbatim from the forward expression of the
// corresponding `Var` op in `tranad_tensor::tape` — that, and nothing else,
// is what makes taped and tape-free outputs bitwise identical. Change the
// two together or `infer_parity` tests will fail.
impl Value for Tensor {
    fn add(&self, other: &Self) -> Self {
        self.broadcast_zip(other, |a, b| a + b)
    }
    fn sub(&self, other: &Self) -> Self {
        self.broadcast_zip(other, |a, b| a - b)
    }
    fn mul(&self, other: &Self) -> Self {
        self.broadcast_zip(other, |a, b| a * b)
    }
    fn div(&self, other: &Self) -> Self {
        self.broadcast_zip(other, |a, b| a / b)
    }
    fn neg(&self) -> Self {
        self.map(|x| -x)
    }
    fn scale(&self, c: f64) -> Self {
        self.map(|x| x * c)
    }
    fn add_scalar(&self, c: f64) -> Self {
        self.map(|x| x + c)
    }
    fn matmul(&self, other: &Self) -> Self {
        Tensor::matmul(self, other)
    }
    fn transpose(&self) -> Self {
        Tensor::transpose(self)
    }
    fn reshape(&self, shape: impl Into<Shape>) -> Self {
        Tensor::reshape(self, shape)
    }
    fn exp(&self) -> Self {
        self.map(f64::exp)
    }
    fn ln(&self) -> Self {
        self.map(f64::ln)
    }
    fn sqrt(&self) -> Self {
        self.map(f64::sqrt)
    }
    fn square(&self) -> Self {
        self.map(|x| x * x)
    }
    fn abs(&self) -> Self {
        self.map(f64::abs)
    }
    fn sigmoid(&self) -> Self {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }
    fn tanh(&self) -> Self {
        self.map(f64::tanh)
    }
    fn relu(&self) -> Self {
        self.map(|x| x.max(0.0))
    }
    fn softmax_last(&self) -> Self {
        Tensor::softmax_last(self)
    }
    fn layer_norm_last(&self, eps: f64) -> Self {
        self.layer_norm_parts(eps).0
    }
    fn linear_act(&self, w: &Self, b: Option<&Self>, act: Act) -> Self {
        self.matmul_bias_act(w, b, act)
    }
    fn layer_norm_affine(&self, gamma: &Self, beta: &Self, eps: f64) -> Self {
        Tensor::layer_norm_affine(self, gamma, beta, eps)
    }
    fn matmul_t_scaled(&self, other: &Self, scale: f64) -> Self {
        self.matmul_nt_scaled(other, scale)
    }
    fn sum_all(&self) -> Self {
        Tensor::scalar(self.sum())
    }
    fn mean_all(&self) -> Self {
        Tensor::scalar(self.mean())
    }
    fn sum_last(&self) -> Self {
        Tensor::sum_last(self)
    }
    fn mean_last(&self) -> Self {
        Tensor::mean_last(self)
    }
    fn concat_last(parts: &[Self]) -> Self {
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat_last(&refs)
    }
    fn narrow_last(&self, start: usize, len: usize) -> Self {
        Tensor::narrow_last(self, start, len)
    }
    fn value(&self) -> Tensor {
        self.clone()
    }
    fn shape(&self) -> Shape {
        *Tensor::shape(self)
    }
}

/// A forward-pass context: hands model code its parameters and inputs as
/// [`Value`]s and hosts the stochastic bits (dropout). Layers are written
/// once against this trait; [`TrainCtx`] runs them taped for training,
/// [`InferCtx`] runs them tape-free for serving.
pub trait Fwd {
    /// The value representation this context computes with.
    type V: Value;
    /// The value of parameter `id`.
    fn param(&self, id: ParamId) -> Self::V;
    /// Introduces a non-parameter input (data, masks, constants).
    fn input(&self, t: Tensor) -> Self::V;
    /// Inverted dropout (identity when not training).
    fn dropout(&self, x: &Self::V, p: f64) -> Self::V;
    /// Whether stochastic layers are active.
    fn training(&self) -> bool;
}

impl Fwd for TrainCtx<'_> {
    type V = Var;
    fn param(&self, id: ParamId) -> Var {
        TrainCtx::param(self, id)
    }
    fn input(&self, t: Tensor) -> Var {
        TrainCtx::input(self, t)
    }
    fn dropout(&self, x: &Var, p: f64) -> Var {
        TrainCtx::dropout(self, x, p)
    }
    fn training(&self) -> bool {
        self.training
    }
}

/// The tape-free serving context: parameters come straight out of the
/// [`ParamStore`] as O(1) copy-on-write handles, inputs pass through
/// untouched, dropout is the identity (inference is always eval-mode), and
/// no tape, node list or backward closure is ever allocated.
pub struct InferCtx<'a> {
    store: &'a ParamStore,
}

impl<'a> InferCtx<'a> {
    /// A tape-free evaluation context over the given parameters.
    pub fn new(store: &'a ParamStore) -> Self {
        InferCtx { store }
    }
}

/// Reusable input staging for tape-free forwards: one window stack and one
/// context stack, resized per batch and recycled across calls.
///
/// A batch-1 owner (a single-stream online state) calls
/// [`InferWorkspace::stage`] with `n = 1` every push and keeps reusing the
/// same two buffers; the serving engine stages `n` rows per cross-stream
/// round, and because [`Tensor::stage`] reuses storage whenever the element
/// count matches, consecutive rounds at the same occupancy are
/// allocation-free. The forward pass holds its input clones only
/// transiently, so the storage is uniquely owned again by the next call.
pub struct InferWorkspace {
    window: Tensor,
    context: Tensor,
}

impl InferWorkspace {
    /// An empty workspace; the first [`InferWorkspace::stage`] call sizes it.
    pub fn new() -> Self {
        InferWorkspace { window: Tensor::zeros([1]), context: Tensor::zeros([1]) }
    }

    /// Sizes the stacks for an `n`-row batch over `[k, m]` windows and
    /// `[c, m]` contexts and returns their writable storage
    /// (`n*k*m` and `n*c*m` f64s, stale — the caller fills every row).
    pub fn stage(&mut self, n: usize, k: usize, c: usize, m: usize) -> (&mut [f64], &mut [f64]) {
        (self.window.stage([n, k, m]), self.context.stage([n, c, m]))
    }

    /// The staged `[n, window, m]` input stack.
    pub fn window(&self) -> &Tensor {
        &self.window
    }

    /// The staged `[n, context, m]` input stack.
    pub fn context(&self) -> &Tensor {
        &self.context
    }
}

impl Default for InferWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Fwd for InferCtx<'_> {
    type V = Tensor;
    fn param(&self, id: ParamId) -> Tensor {
        self.store.get(id).clone()
    }
    fn input(&self, t: Tensor) -> Tensor {
        t
    }
    fn dropout(&self, x: &Tensor, _p: f64) -> Tensor {
        // Inference is always eval-mode, where dropout is the identity —
        // exactly what `TrainCtx::eval` computes.
        x.clone()
    }
    fn training(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    /// Bitwise slice equality (NaN == NaN, unlike `f64` equality).
    fn assert_bits_eq(a: &[f64], b: &[f64], name: &str) {
        let (ab, bb): (Vec<u64>, Vec<u64>) =
            (a.iter().map(|v| v.to_bits()).collect(), b.iter().map(|v| v.to_bits()).collect());
        assert_eq!(ab, bb, "{name}");
    }

    /// Deterministic pseudo-random tensor (mirrors `tape.rs` tests).
    fn pseudo(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        Tensor::from_fn(shape, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn tensor_ops_match_var_ops_bitwise() {
        let a = pseudo([2, 3, 4], 1);
        let b = pseudo([2, 3, 4], 2);
        let w = pseudo([4, 5], 3);
        let bias = pseudo([5], 4);
        let gamma = pseudo([4], 5);
        let beta = pseudo([4], 6);

        let store = ParamStore::new();
        let ctx = Ctx::eval(&store);
        let (va, vb) = (ctx.input(a.clone()), ctx.input(b.clone()));
        let (vw, vbias) = (ctx.input(w.clone()), ctx.input(bias.clone()));
        let (vg, vbeta) = (ctx.input(gamma.clone()), ctx.input(beta.clone()));

        #[allow(clippy::type_complexity)]
        let unary: &[(&str, fn(&Tensor) -> Tensor, fn(&Var) -> Var)] = &[
            ("neg", |x| Value::neg(x), |x| x.neg()),
            ("exp", |x| Value::exp(x), |x| x.exp()),
            ("sqrt", |x| Value::sqrt(x), |x| x.sqrt()),
            ("square", |x| Value::square(x), |x| x.square()),
            ("abs", |x| Value::abs(x), |x| x.abs()),
            ("sigmoid", |x| Value::sigmoid(x), |x| x.sigmoid()),
            ("tanh", |x| Value::tanh(x), |x| x.tanh()),
            ("relu", |x| Value::relu(x), |x| x.relu()),
            ("softmax", |x| Value::softmax_last(x), |x| x.softmax_last()),
            ("ln_norm", |x| Value::layer_norm_last(x, 1e-5), |x| x.layer_norm_last(1e-5)),
            ("sum_last", |x| Value::sum_last(x), |x| x.sum_last()),
            ("mean_last", |x| Value::mean_last(x), |x| x.mean_last()),
            ("sum_all", |x| Value::sum_all(x), |x| x.sum_all()),
            ("mean_all", |x| Value::mean_all(x), |x| x.mean_all()),
        ];
        for (name, tf, vf) in unary {
            assert_bits_eq(tf(&a).data(), vf(&va).value().data(), name);
        }

        assert_eq!(Value::add(&a, &b).data(), va.add(&vb).value().data());
        assert_eq!(Value::sub(&a, &b).data(), va.sub(&vb).value().data());
        assert_eq!(Value::mul(&a, &b).data(), va.mul(&vb).value().data());
        assert_eq!(Value::div(&a, &b).data(), va.div(&vb).value().data());
        assert_eq!(Value::scale(&a, 0.37).data(), va.scale(0.37).value().data());
        assert_eq!(Value::add_scalar(&a, -0.2).data(), va.add_scalar(-0.2).value().data());
        assert_eq!(Value::matmul(&a, &w).data(), va.matmul(&vw).value().data());
        assert_eq!(
            Value::linear_act(&a, &w, Some(&bias), Act::Tanh).data(),
            va.linear_act(&vw, Some(&vbias), Act::Tanh).value().data()
        );
        assert_eq!(
            Value::layer_norm_affine(&a, &gamma, &beta, 1e-5).data(),
            va.layer_norm_affine(&vg, &vbeta, 1e-5).value().data()
        );
        assert_eq!(
            Value::matmul_t_scaled(&a, &b, 0.5).data(),
            va.matmul_t_scaled(&vb, 0.5).value().data()
        );
        assert_eq!(
            Value::concat_last(&[a.clone(), b.clone()]).data(),
            Var::concat_last(&[va.clone(), vb.clone()]).value().data()
        );
        assert_eq!(
            Value::narrow_last(&a, 1, 2).data(),
            va.narrow_last(1, 2).value().data()
        );
        assert_eq!(Value::mse(&a, &b).data(), va.mse(&vb).value().data());
        assert_eq!(Value::transpose(&a).data(), va.transpose().value().data());
        assert_eq!(
            Value::reshape(&a, [6, 4]).shape().dims(),
            va.reshape([6, 4]).shape().dims()
        );
    }

    #[test]
    fn infer_ctx_hands_out_shared_params_and_identity_dropout() {
        let mut store = ParamStore::new();
        let id = store.add(pseudo([3, 3], 9));
        let ctx = InferCtx::new(&store);
        let p = ctx.param(id);
        assert!(p.shares_storage(store.get(id)), "param must be an O(1) handle");
        let x = ctx.input(pseudo([4, 4], 10));
        let y = ctx.dropout(&x, 0.9);
        assert_eq!(x.data(), y.data());
        assert!(!ctx.training());
    }
}

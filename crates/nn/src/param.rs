//! Parameter storage shared by all modules of a model.
//!
//! Parameters live *outside* the autograd tape: each forward pass introduces
//! them as tape leaves via [`crate::ctx::Ctx::param`], and the optimizer
//! writes updated values back into the store.

use tranad_tensor::{Rng, Shape, Tensor};

/// Opaque handle to one parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Flat container of every trainable tensor in a model.
#[derive(Clone, Default)]
pub struct ParamStore {
    params: Vec<Tensor>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter with the given initial value.
    pub fn add(&mut self, value: Tensor) -> ParamId {
        self.params.push(value);
        ParamId(self.params.len() - 1)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0]
    }

    /// Overwrites a parameter's value (optimizer step).
    pub fn set(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.params[id.0].shape(),
            value.shape(),
            "parameter shape changed"
        );
        self.params[id.0] = value;
    }

    /// Mutable access to a parameter for in-place updates. Writing through
    /// the returned tensor's `data_mut` copies-on-write first if the storage
    /// is shared (e.g. a live snapshot or tape leaf), so aliases keep their
    /// old values.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0]
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn numel(&self) -> usize {
        self.params.iter().map(Tensor::numel).sum()
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Snapshot of every parameter value (for MAML snapshot/restore and
    /// early-stopping best-weights tracking). With shared tensor storage
    /// this is O(#params) handle clones, not a deep copy — copy-on-write
    /// keeps the snapshot stable if the live parameters are later updated
    /// in place.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params.clone()
    }

    /// Restores values taken with [`ParamStore::snapshot`].
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.params.len(), "snapshot size mismatch");
        self.params.clone_from_slice(snapshot);
    }
}

/// Deterministic initializer for model weights.
pub struct Init {
    rng: Rng,
}

impl Init {
    /// A seeded initializer; the same seed yields identical models.
    pub fn with_seed(seed: u64) -> Self {
        Init { rng: Rng::new(seed) }
    }

    /// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        self.uniform([fan_in, fan_out], -limit, limit)
    }

    /// Uniform values in `[lo, hi)` of an arbitrary shape.
    pub fn uniform(&mut self, shape: impl Into<Shape>, lo: f64, hi: f64) -> Tensor {
        let shape = shape.into();
        let rng = &mut self.rng;
        Tensor::from_fn(shape, |_| rng.range_f64(lo, hi))
    }

    /// Standard-normal values scaled by `std`.
    pub fn normal(&mut self, shape: impl Into<Shape>, std: f64) -> Tensor {
        let shape = shape.into();
        let rng = &mut self.rng;
        Tensor::from_fn(shape, |_| rng.normal() * std)
    }

    /// Access to the underlying RNG (e.g. for shuffling).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_set_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add(Tensor::ones([2, 2]));
        assert_eq!(store.get(id).data(), &[1.0; 4]);
        store.set(id, Tensor::zeros([2, 2]));
        assert_eq!(store.get(id).data(), &[0.0; 4]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.numel(), 4);
    }

    #[test]
    #[should_panic(expected = "parameter shape changed")]
    fn set_shape_mismatch_panics() {
        let mut store = ParamStore::new();
        let id = store.add(Tensor::ones([2, 2]));
        store.set(id, Tensor::zeros([3]));
    }

    #[test]
    fn snapshot_restore() {
        let mut store = ParamStore::new();
        let id = store.add(Tensor::ones([3]));
        let snap = store.snapshot();
        store.set(id, Tensor::zeros([3]));
        store.restore(&snap);
        assert_eq!(store.get(id).data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn xavier_within_limit() {
        let mut init = Init::with_seed(42);
        let w = init.xavier(8, 8);
        let limit = (6.0 / 16.0_f64).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= limit));
        assert_eq!(w.shape().dims(), &[8, 8]);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Init::with_seed(7).xavier(4, 4);
        let b = Init::with_seed(7).xavier(4, 4);
        assert_eq!(a.data(), b.data());
        let c = Init::with_seed(8).xavier(4, 4);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut init = Init::with_seed(1);
        let t = init.normal([10_000], 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / t.numel() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}

//! Seeded, dependency-free pseudo-random numbers (SplitMix64).
//!
//! The whole workspace draws randomness from this one generator so the
//! build stays hermetic (no crates.io `rand` dependency) and every result
//! is reproducible from a single `u64` seed. SplitMix64 passes BigCrush,
//! has a full 2^64 period over its state, and is a few instructions per
//! draw — more than enough for weight init, shuffling, dropout masks and
//! synthetic-signal generation.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; the same seed yields the same
    /// stream forever (the stream is part of the persistence/determinism
    /// contract, so changing the algorithm is a breaking change).
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Modulo bias is < 2^-32 for every range in this codebase.
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.range_f64(f64::EPSILON, 1.0);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference outputs for seed 1234567 from the canonical C code.
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut r = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_has_unit_variance() {
        let mut r = Rng::new(11);
        let xs: Vec<f64> = (0..20_000).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_frequency_matches_p() {
        let mut r = Rng::new(13);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "hits {hits}");
    }
}

//! Dense row-major `f64` tensors and the eager (non-differentiable) ops the
//! autograd tape is built on.
//!
//! Storage is shared and pooled (see [`crate::buf`] / [`crate::bufpool`]):
//! cloning a tensor is O(1), mutation is copy-on-write through
//! [`Tensor::data_mut`], and every op draws its output buffer from the
//! thread-local pool instead of the system allocator.

use crate::buf::Buf;
use crate::kernels::{self, Epilogue};
use crate::pool;
use crate::shape::Shape;
use std::fmt;

/// Elementwise ops on tensors smaller than this stay serial: pool dispatch
/// costs more than the loop itself.
const ELEMENTWISE_CUTOFF: usize = 16 * 1024;
/// Matmuls below this many multiply-adds (`n * k * m`) stay serial.
const MATMUL_CUTOFF: usize = 64 * 64 * 64;
/// Rows handed to one elementwise/softmax/transpose task.
const ROW_GRAIN: usize = 64;

/// Activation fused into [`Tensor::matmul_bias_act`] and the tape's fused
/// linear op. Every variant's derivative is expressible from the activation
/// *output*, which is what makes the fusion free: backward needs no saved
/// pre-activation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Act {
    /// No activation.
    Identity,
    /// `max(x, 0)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Act {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Act::Identity => x,
            Act::Relu => x.max(0.0),
            Act::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Act::Tanh => x.tanh(),
        }
    }

    /// Derivative at a point, computed from the activation output `y`.
    #[inline]
    pub fn grad_from_output(self, y: f64) -> f64 {
        match self {
            Act::Identity => 1.0,
            Act::Relu => f64::from(y > 0.0),
            Act::Sigmoid => y * (1.0 - y),
            Act::Tanh => 1.0 - y * y,
        }
    }
}

/// A dense, row-major `f64` tensor backed by shared, pooled storage.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Buf,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape. Panics if the element
    /// count does not match the shape.
    pub fn from_vec(data: Vec<f64>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data: Buf::from_vec(data), shape }
    }

    /// Internal: a pooled tensor whose contents are stale and must be fully
    /// overwritten before the tensor escapes.
    pub(crate) fn uninit(shape: Shape) -> Self {
        Tensor { data: Buf::uninit(shape.numel()), shape }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(v: f64) -> Self {
        let mut t = Tensor::uninit(Shape::scalar());
        t.data.make_mut()[0] = v;
        t
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor { data: Buf::zeroed(shape.numel()), shape }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor of the given shape.
    pub fn full(shape: impl Into<Shape>, v: f64) -> Self {
        let mut t = Tensor::uninit(shape.into());
        t.data.make_mut().fill(v);
        t
    }

    /// Builds a tensor by calling `f` for each flat (row-major) index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f64) -> Self {
        let mut t = Tensor::uninit(shape.into());
        for (i, o) in t.data.make_mut().iter_mut().enumerate() {
            *o = f(i);
        }
        t
    }

    /// A 1-d tensor over a slice.
    pub fn from_slice(v: &[f64]) -> Self {
        Tensor { data: Buf::copy_of(v), shape: Shape::new([v.len()]) }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat row-major view of the elements.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of the elements. Copy-on-write: if the storage is
    /// shared with another tensor, it is copied first, so writes are never
    /// visible through other handles.
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.data.make_mut()
    }

    /// Consumes the tensor, returning its flat data (copies only if the
    /// storage is shared).
    pub fn into_vec(self) -> Vec<f64> {
        self.data.into_vec()
    }

    /// True if this tensor shares storage with `other` (diagnostics/tests).
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        self.data.ptr_eq(&other.data)
    }

    /// The single value of a rank-0 or single-element tensor.
    pub fn item(&self) -> f64 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {}", self.shape);
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f64 {
        assert_eq!(index.len(), self.shape.rank(), "index rank mismatch");
        let strides = self.shape.strides();
        let mut flat = 0;
        for (i, (&ix, &st)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(ix < self.shape.dim(i), "index {ix} out of range in dim {i}");
            flat += ix * st;
        }
        self.data[flat]
    }

    /// Reinterprets the data with a new shape of equal element count. O(1):
    /// the result shares this tensor's storage.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(self.numel(), shape.numel(), "reshape {} -> {shape}", self.shape);
        Tensor { data: self.data.clone(), shape }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    // ---- elementwise helpers ----------------------------------------------

    /// Applies `f` to every element, returning a new tensor. Large tensors
    /// are processed in parallel chunks (each output element depends only
    /// on its input element, so chunking never changes the result).
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Tensor {
        let mut out = Tensor::uninit(self.shape);
        let od = out.data.make_mut();
        if self.numel() < ELEMENTWISE_CUTOFF {
            for (o, &v) in od.iter_mut().zip(self.data.iter()) {
                *o = f(v);
            }
        } else {
            pool::parallel_chunks_mut(od, ELEMENTWISE_CUTOFF, |start, chunk| {
                let src = &self.data[start..start + chunk.len()];
                for (o, &v) in chunk.iter_mut().zip(src) {
                    *o = f(v);
                }
            });
        }
        out
    }

    /// Combines two same-shaped tensors elementwise (parallel above the
    /// size cutoff, like [`Tensor::map`]).
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        let mut out = Tensor::uninit(self.shape);
        let od = out.data.make_mut();
        if self.numel() < ELEMENTWISE_CUTOFF {
            for ((o, &x), &y) in od.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
                *o = f(x, y);
            }
        } else {
            pool::parallel_chunks_mut(od, ELEMENTWISE_CUTOFF, |start, chunk| {
                let a = &self.data[start..start + chunk.len()];
                let b = &other.data[start..start + chunk.len()];
                for ((o, &x), &y) in chunk.iter_mut().zip(a).zip(b) {
                    *o = f(x, y);
                }
            });
        }
        out
    }

    /// In-place `self += other` (same shape; copy-on-write if shared).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        let od = other.data.clone(); // O(1); survives even if self == other
        for (a, &b) in self.data.make_mut().iter_mut().zip(od.iter()) {
            *a += b;
        }
    }

    /// In-place scale by a constant (copy-on-write if shared).
    pub fn scale_assign(&mut self, c: f64) {
        for a in self.data.make_mut().iter_mut() {
            *a *= c;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.numel() as f64
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    // ---- binary ops with broadcasting -------------------------------------

    /// Elementwise binary op with NumPy-style broadcasting.
    pub fn broadcast_zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64 + Sync) -> Tensor {
        if self.shape == other.shape {
            return self.zip(other, f);
        }
        // Fast path: one operand's shape is a suffix of the other's (bias
        // adds, attention-mask adds, affine layer-norm) — tile blockwise
        // without per-element index arithmetic.
        if is_suffix(&other.shape, &self.shape) {
            let block = other.numel();
            let mut out = Tensor::uninit(self.shape);
            let od = out.data.make_mut();
            for (dst, chunk) in od.chunks_exact_mut(block).zip(self.data.chunks_exact(block)) {
                for ((o, &a), &b) in dst.iter_mut().zip(chunk).zip(other.data.iter()) {
                    *o = f(a, b);
                }
            }
            return out;
        }
        if is_suffix(&self.shape, &other.shape) {
            let block = self.numel();
            let mut out = Tensor::uninit(other.shape);
            let od = out.data.make_mut();
            for (dst, chunk) in od.chunks_exact_mut(block).zip(other.data.chunks_exact(block)) {
                for ((o, &a), &b) in dst.iter_mut().zip(self.data.iter()).zip(chunk) {
                    *o = f(a, b);
                }
            }
            return out;
        }
        let out_shape = self
            .shape
            .broadcast_with(&other.shape)
            .unwrap_or_else(|| panic!("cannot broadcast {} with {}", self.shape, other.shape));
        let a_bstrides = broadcast_strides(&self.shape, &out_shape);
        let b_bstrides = broadcast_strides(&other.shape, &out_shape);
        let mut out = Tensor::uninit(out_shape);
        let od = out.data.make_mut();
        let rank = out_shape.rank();
        let mut index = [0usize; crate::shape::MAX_RANK];
        for o in od.iter_mut() {
            let mut a_off = 0;
            let mut b_off = 0;
            for d in 0..rank {
                a_off += index[d] * a_bstrides[d];
                b_off += index[d] * b_bstrides[d];
            }
            *o = f(self.data[a_off], other.data[b_off]);
            // increment multi-index
            for d in (0..rank).rev() {
                index[d] += 1;
                if index[d] < out_shape.dim(d) {
                    break;
                }
                index[d] = 0;
            }
        }
        out
    }

    /// Reduces (sums) a gradient of `grad_shape` down to `self`-like
    /// `target_shape`, undoing broadcasting. Used by autograd backward.
    pub fn reduce_to_shape(&self, target: &Shape) -> Tensor {
        if &self.shape == target {
            return self.clone();
        }
        assert!(
            target.broadcasts_to(&self.shape),
            "cannot reduce {} to {target}",
            self.shape
        );
        // Fast path mirroring the broadcast fast path: the target is a
        // plain suffix of this shape — sum the leading blocks.
        if is_suffix(target, &self.shape) {
            let block = target.numel();
            let mut out = Tensor::zeros(*target);
            let od = out.data.make_mut();
            for chunk in self.data.chunks_exact(block) {
                for (o, &v) in od.iter_mut().zip(chunk) {
                    *o += v;
                }
            }
            return out;
        }
        let rank = self.shape.rank();
        let t_rank = target.rank();
        let mut out = Tensor::zeros(*target);
        let od = out.data.make_mut();
        let t_strides = target.strides();
        let mut index = [0usize; crate::shape::MAX_RANK];
        for &v in self.data.iter() {
            // Map the broadcast index back onto the (possibly lower-rank,
            // possibly extent-1) target index.
            let mut t_off = 0;
            for (d, &stride) in t_strides.iter().enumerate().take(t_rank) {
                let src_d = rank - t_rank + d;
                let ix = if target.dim(d) == 1 { 0 } else { index[src_d] };
                t_off += ix * stride;
            }
            od[t_off] += v;
            for d in (0..rank).rev() {
                index[d] += 1;
                if index[d] < self.shape.dim(d) {
                    break;
                }
                index[d] = 0;
            }
        }
        out
    }

    // ---- linear algebra ----------------------------------------------------

    /// Matrix product. Supports:
    /// - `[n, k] x [k, m]` -> `[n, m]`
    /// - `[b, n, k] x [k, m]` -> `[b, n, m]` (shared rhs)
    /// - `[b, n, k] x [b, k, m]` -> `[b, n, m]` (batched)
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::uninit(Shape::scalar());
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into a caller-provided tensor. `out`'s
    /// storage is reused in place when it is uniquely owned and already the
    /// right element count; otherwise a pooled buffer is swapped in. Results
    /// are bitwise identical to the allocating form (same kernels, same
    /// summation order) — this only changes where the output lives.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.matmul_epilogue_into(rhs, Epilogue::NONE, out);
    }

    /// Shared dispatch for [`Tensor::matmul_into`] and
    /// [`Tensor::matmul_bias_act_into`]: the tiled kernels from
    /// [`crate::kernels`] with `epi` folded into each tile write-out.
    fn matmul_epilogue_into(&self, rhs: &Tensor, epi: Epilogue, out: &mut Tensor) {
        match (self.shape.rank(), rhs.shape.rank()) {
            (2, 2) => {
                let (n, k) = (self.shape.dim(0), self.shape.dim(1));
                let (k2, m) = (rhs.shape.dim(0), rhs.shape.dim(1));
                assert_eq!(k, k2, "matmul inner dim: {} vs {}", self.shape, rhs.shape);
                let od = take_out(out, Shape::new([n, m]));
                matmul_shared_rhs(&self.data, &rhs.data, od, n, k, m, epi);
            }
            (3, 2) => {
                // A shared rhs makes the batch dimension just more rows:
                // `[b, n, k] @ [k, m]` is `[b * n, k] @ [k, m]` on the same
                // contiguous storage, so the whole batch row-blocks (and
                // packs the rhs once) like one big 2-d product.
                let (b, n, k) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
                let (k2, m) = (rhs.shape.dim(0), rhs.shape.dim(1));
                assert_eq!(k, k2, "matmul inner dim: {} vs {}", self.shape, rhs.shape);
                let od = take_out(out, Shape::new([b, n, m]));
                matmul_shared_rhs(&self.data, &rhs.data, od, b * n, k, m, epi);
            }
            (3, 3) => {
                let (b, n, k) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
                let (b2, k2, m) = (rhs.shape.dim(0), rhs.shape.dim(1), rhs.shape.dim(2));
                assert_eq!(b, b2, "matmul batch dim: {} vs {}", self.shape, rhs.shape);
                assert_eq!(k, k2, "matmul inner dim: {} vs {}", self.shape, rhs.shape);
                let od = take_out(out, Shape::new([b, n, m]));
                matmul_batched_rhs(&self.data, &rhs.data, od, b, n, k, m, epi);
            }
            _ => panic!(
                "unsupported matmul ranks: {} x {}",
                self.shape, rhs.shape
            ),
        }
    }

    /// Fused `act(self @ w + bias)`. Bias and activation are folded into
    /// the micro-kernel's tile write-out — per row-block, on whichever
    /// thread computed the block — so the result is bitwise identical to
    /// the unfused `matmul` → broadcast-add → `map` chain while recording a
    /// single tape node, allocating a single output, and never re-walking
    /// the finished buffer.
    pub fn matmul_bias_act(&self, w: &Tensor, bias: Option<&Tensor>, act: Act) -> Tensor {
        let mut out = Tensor::uninit(Shape::scalar());
        self.matmul_bias_act_into(w, bias, act, &mut out);
        out
    }

    /// [`Tensor::matmul_bias_act`] writing into a caller-provided tensor
    /// (see [`Tensor::matmul_into`] for the reuse contract).
    pub fn matmul_bias_act_into(
        &self,
        w: &Tensor,
        bias: Option<&Tensor>,
        act: Act,
        out: &mut Tensor,
    ) {
        let m = w.shape.last_dim();
        if let Some(b) = bias {
            assert_eq!(b.numel(), m, "bias {} vs last dim {m}", b.shape());
        }
        let epi = Epilogue { bias: bias.map(|b| b.data()), act };
        self.matmul_epilogue_into(w, epi, out);
    }

    /// Fused `(self @ rhs^T) * scale` without materializing the transpose.
    /// Shapes: `[n, k] x [m, k] -> [n, m]` or batched `[b, n, k] x [b, m, k]
    /// -> [b, n, m]`. Row dot-products accumulate in the same index order as
    /// `matmul(rhs.transpose())`, so results match the unfused chain
    /// bitwise; batched planes run in parallel above the work cutoff.
    pub fn matmul_nt_scaled(&self, rhs: &Tensor, scale: f64) -> Tensor {
        let mut out = Tensor::uninit(Shape::scalar());
        self.matmul_nt_scaled_into(rhs, scale, &mut out);
        out
    }

    /// [`Tensor::matmul_nt_scaled`] writing into a caller-provided tensor
    /// (see [`Tensor::matmul_into`] for the reuse contract).
    pub fn matmul_nt_scaled_into(&self, rhs: &Tensor, scale: f64, out: &mut Tensor) {
        let rank = self.shape.rank();
        assert_eq!(rank, rhs.shape.rank(), "matmul_nt rank: {} vs {}", self.shape, rhs.shape);
        assert!(rank == 2 || rank == 3, "matmul_nt supports rank 2 or 3, got {}", self.shape);
        let (b, n, k) = if rank == 2 {
            (1, self.shape.dim(0), self.shape.dim(1))
        } else {
            (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2))
        };
        let (b2, m, k2) = if rank == 2 {
            (1, rhs.shape.dim(0), rhs.shape.dim(1))
        } else {
            (rhs.shape.dim(0), rhs.shape.dim(1), rhs.shape.dim(2))
        };
        assert_eq!(b, b2, "matmul_nt batch dim: {} vs {}", self.shape, rhs.shape);
        assert_eq!(k, k2, "matmul_nt inner dim: {} vs {}", self.shape, rhs.shape);
        let out_shape = if rank == 2 {
            Shape::new([n, m])
        } else {
            Shape::new([b, n, m])
        };
        let od = take_out(out, out_shape);
        if b == 1 {
            // Single plane: row-block it like the NN path (tile-aligned so
            // the chunks replay the serial tile sequence exactly).
            if n * k * m < MATMUL_CUTOFF {
                kernels::matmul_nt_tiled(&self.data, &rhs.data, od, n, k, m, scale);
            } else {
                let grain =
                    pool::aligned_grain((MATMUL_CUTOFF / (k * m).max(1)).max(1), kernels::MR);
                pool::parallel_chunks_mut(od, grain * m, |start, chunk| {
                    let r0 = start / m;
                    let rows = chunk.len() / m;
                    kernels::matmul_nt_tiled(
                        &self.data[r0 * k..(r0 + rows) * k],
                        &rhs.data,
                        chunk,
                        rows,
                        k,
                        m,
                        scale,
                    );
                });
            }
            return;
        }
        let plane = n * m;
        let kernel_one = |bi: usize, dst: &mut [f64]| {
            kernels::matmul_nt_tiled(
                &self.data[bi * n * k..(bi + 1) * n * k],
                &rhs.data[bi * m * k..(bi + 1) * m * k],
                dst,
                n,
                k,
                m,
                scale,
            );
        };
        if b * n * k * m < MATMUL_CUTOFF {
            for (bi, dst) in od.chunks_mut(plane).enumerate() {
                kernel_one(bi, dst);
            }
        } else {
            pool::parallel_chunks_mut(od, plane, |start, chunk| {
                kernel_one(start / plane, chunk);
            });
        }
    }

    /// `self^T @ rhs` without materializing the transpose: `[n, k] x [n, m]
    /// -> [k, m]`, or batched `[b, n, k] x [b, n, m] -> [b, k, m]` (plane by
    /// plane). Every output element sums over the shared `n` axis in
    /// ascending order — the same order as
    /// `self.transpose().matmul(rhs)` — so results match the
    /// transpose-then-multiply chain bitwise. This is the grad-matmul shape
    /// the tape's backward closures need.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::uninit(Shape::scalar());
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_tn`] writing into a caller-provided tensor
    /// (see [`Tensor::matmul_into`] for the reuse contract).
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        let rank = self.shape.rank();
        assert_eq!(rank, rhs.shape.rank(), "matmul_tn rank: {} vs {}", self.shape, rhs.shape);
        assert!(rank == 2 || rank == 3, "matmul_tn supports rank 2 or 3, got {}", self.shape);
        let (b, n, k) = if rank == 2 {
            (1, self.shape.dim(0), self.shape.dim(1))
        } else {
            (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2))
        };
        let (b2, n2, m) = if rank == 2 {
            (1, rhs.shape.dim(0), rhs.shape.dim(1))
        } else {
            (rhs.shape.dim(0), rhs.shape.dim(1), rhs.shape.dim(2))
        };
        assert_eq!(b, b2, "matmul_tn batch dim: {} vs {}", self.shape, rhs.shape);
        assert_eq!(n, n2, "matmul_tn shared dim: {} vs {}", self.shape, rhs.shape);
        let out_shape = if rank == 2 {
            Shape::new([k, m])
        } else {
            Shape::new([b, k, m])
        };
        let od = take_out(out, out_shape);
        if b == 1 {
            // Row-block the [k, m] output: each task owns output rows
            // [l0, l0 + rows) — columns [l0, l0 + rows) of self — and
            // streams all of `rhs`.
            if n * k * m < MATMUL_CUTOFF {
                kernels::matmul_tn_tiled(&self.data, k, &rhs.data, od, n, k, m);
            } else {
                let grain =
                    pool::aligned_grain((MATMUL_CUTOFF / (n * m).max(1)).max(1), kernels::MR);
                pool::parallel_chunks_mut(od, grain * m, |start, chunk| {
                    let l0 = start / m;
                    let rows = chunk.len() / m;
                    kernels::matmul_tn_tiled(&self.data[l0..], k, &rhs.data, chunk, n, rows, m);
                });
            }
            return;
        }
        let plane = k * m;
        let kernel_one = |bi: usize, dst: &mut [f64]| {
            kernels::matmul_tn_tiled(
                &self.data[bi * n * k..(bi + 1) * n * k],
                k,
                &rhs.data[bi * n * m..(bi + 1) * n * m],
                dst,
                n,
                k,
                m,
            );
        };
        if b * n * k * m < MATMUL_CUTOFF {
            for (bi, dst) in od.chunks_mut(plane).enumerate() {
                kernel_one(bi, dst);
            }
        } else {
            pool::parallel_chunks_mut(od, plane, |start, chunk| {
                kernel_one(start / plane, chunk);
            });
        }
    }

    /// Swaps the last two dimensions, materializing the result. Batched
    /// inputs transpose their `[n, m]` planes in parallel.
    pub fn transpose(&self) -> Tensor {
        let rank = self.shape.rank();
        assert!(rank >= 2, "transpose requires rank >= 2, got {}", self.shape);
        let n = self.shape.dim(rank - 2);
        let m = self.shape.dim(rank - 1);
        let plane = n * m;
        let mut out = Tensor::uninit(self.shape.transposed());
        let od = out.data.make_mut();
        let transpose_plane = |b: usize, dst: &mut [f64]| {
            let src = &self.data[b * plane..(b + 1) * plane];
            for i in 0..n {
                for j in 0..m {
                    dst[j * n + i] = src[i * m + j];
                }
            }
        };
        if self.numel() < ELEMENTWISE_CUTOFF {
            for (b, dst) in od.chunks_mut(plane).enumerate() {
                transpose_plane(b, dst);
            }
        } else {
            pool::parallel_chunks_mut(od, plane, |start, chunk| {
                transpose_plane(start / plane, chunk);
            });
        }
        out
    }

    /// Softmax over the last dimension. Rows are independent, so row blocks
    /// run in parallel above the size cutoff.
    pub fn softmax_last(&self) -> Tensor {
        let mut out = Tensor::uninit(Shape::scalar());
        self.softmax_last_into(&mut out);
        out
    }

    /// [`Tensor::softmax_last`] writing into a caller-provided tensor
    /// (see [`Tensor::matmul_into`] for the reuse contract).
    pub fn softmax_last_into(&self, out: &mut Tensor) {
        let m = self.shape.last_dim();
        assert!(m > 0, "softmax over empty dim");
        let od = take_out(out, self.shape);
        let softmax_rows = |start: usize, out_rows: &mut [f64]| {
            for (r, dst) in out_rows.chunks_mut(m).enumerate() {
                let base = start + r * m;
                let row = &self.data[base..base + m];
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for (o, &v) in dst.iter_mut().zip(row) {
                    // If the whole row is -inf (fully masked), fall back to uniform.
                    let e = if max == f64::NEG_INFINITY { 1.0 } else { (v - max).exp() };
                    *o = e;
                    sum += e;
                }
                for o in dst.iter_mut() {
                    *o /= sum;
                }
            }
        };
        if self.numel() < ELEMENTWISE_CUTOFF {
            softmax_rows(0, od);
        } else {
            pool::parallel_chunks_mut(od, ROW_GRAIN * m, softmax_rows);
        }
    }

    /// Row-wise layer normalization over the last dimension. Returns the
    /// normalized tensor and the per-row inverse standard deviation (needed
    /// by the backward pass).
    pub fn layer_norm_parts(&self, eps: f64) -> (Tensor, Tensor) {
        let m = self.shape.last_dim();
        let rows = self.numel() / m;
        let mut normed = Tensor::uninit(self.shape);
        let mut inv_std = Tensor::uninit(Shape::new([rows]));
        let nd = normed.data.make_mut();
        let isd = inv_std.data.make_mut();
        for r in 0..rows {
            let row = &self.data[r * m..(r + 1) * m];
            let mean: f64 = row.iter().sum::<f64>() / m as f64;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m as f64;
            let is = 1.0 / (var + eps).sqrt();
            for (o, &v) in nd[r * m..(r + 1) * m].iter_mut().zip(row) {
                *o = (v - mean) * is;
            }
            isd[r] = is;
        }
        (normed, inv_std)
    }

    /// Layer normalization over the last dimension fused with the learned
    /// affine transform. Bitwise identical to
    /// `self.layer_norm_parts(eps).0.scale_shift_last(gamma, beta)` — the
    /// same f64 operations in the same order, without materializing the
    /// normalized intermediate or the inverse-std vector (which only the
    /// backward pass needs).
    pub fn layer_norm_affine(&self, gamma: &Tensor, beta: &Tensor, eps: f64) -> Tensor {
        let mut out = Tensor::uninit(Shape::scalar());
        self.layer_norm_affine_into(gamma, beta, eps, &mut out);
        out
    }

    /// [`Tensor::layer_norm_affine`] writing into a caller-provided tensor
    /// (see [`Tensor::matmul_into`] for the reuse contract).
    pub fn layer_norm_affine_into(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f64,
        out: &mut Tensor,
    ) {
        let m = self.shape.last_dim();
        assert_eq!(gamma.numel(), m, "gamma {} vs last dim {m}", gamma.shape());
        assert_eq!(beta.numel(), m, "beta {} vs last dim {m}", beta.shape());
        let rows = self.numel() / m;
        let (g, b) = (gamma.data(), beta.data());
        let od = take_out(out, self.shape);
        for r in 0..rows {
            let row = &self.data[r * m..(r + 1) * m];
            let mean: f64 = row.iter().sum::<f64>() / m as f64;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m as f64;
            let is = 1.0 / (var + eps).sqrt();
            for (o, (&v, (&gj, &bj))) in
                od[r * m..(r + 1) * m].iter_mut().zip(row.iter().zip(g.iter().zip(b)))
            {
                *o = (v - mean) * is * gj + bj;
            }
        }
    }

    /// Row-wise affine over the last dimension: `self * gamma + beta` with
    /// `gamma`/`beta` of length `last_dim`. One pass, bitwise identical to
    /// the broadcast `mul` → `add` chain.
    pub fn scale_shift_last(&self, gamma: &Tensor, beta: &Tensor) -> Tensor {
        let m = self.shape.last_dim();
        assert_eq!(gamma.numel(), m, "gamma {} vs last dim {m}", gamma.shape());
        assert_eq!(beta.numel(), m, "beta {} vs last dim {m}", beta.shape());
        let (g, b) = (gamma.data(), beta.data());
        let mut out = Tensor::uninit(self.shape);
        let od = out.data.make_mut();
        for (dst, src) in od.chunks_exact_mut(m).zip(self.data.chunks_exact(m)) {
            for j in 0..m {
                dst[j] = src[j] * g[j] + b[j];
            }
        }
        out
    }

    /// Sums over the last dimension, dropping it.
    pub fn sum_last(&self) -> Tensor {
        let m = self.shape.last_dim().max(1);
        let rows = self.numel() / m;
        let dims = self.shape.dims();
        let mut out = Tensor::uninit(Shape::new(&dims[..dims.len().saturating_sub(1)]));
        for (o, row) in out.data.make_mut().iter_mut().zip(self.data.chunks_exact(m)) {
            *o = row.iter().sum();
        }
        debug_assert_eq!(out.numel(), rows);
        out
    }

    /// Mean over the last dimension, dropping it.
    pub fn mean_last(&self) -> Tensor {
        let m = self.shape.last_dim().max(1) as f64;
        let mut t = self.sum_last();
        t.scale_assign(1.0 / m);
        t
    }

    /// Concatenates tensors along the last dimension. All inputs must agree
    /// on every other dimension.
    pub fn concat_last(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let rank = parts[0].shape.rank();
        assert!(rank >= 1, "concat requires rank >= 1");
        let lead = &parts[0].shape.dims()[..rank - 1];
        let rows: usize = lead.iter().product();
        let widths: Vec<usize> = parts
            .iter()
            .map(|p| {
                assert_eq!(&p.shape.dims()[..rank - 1], lead, "concat leading dims");
                p.shape.last_dim()
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut out = Tensor::uninit(parts[0].shape.with_last_dim(total));
        let od = out.data.make_mut();
        for r in 0..rows {
            let mut at = r * total;
            for (p, &w) in parts.iter().zip(&widths) {
                od[at..at + w].copy_from_slice(&p.data[r * w..(r + 1) * w]);
                at += w;
            }
        }
        out
    }

    /// Takes `len` columns starting at `start` from the last dimension.
    pub fn narrow_last(&self, start: usize, len: usize) -> Tensor {
        let m = self.shape.last_dim();
        assert!(start + len <= m, "narrow [{start}, {start}+{len}) out of last dim {m}");
        let rows = self.numel() / m;
        let mut out = Tensor::uninit(self.shape.with_last_dim(len));
        let od = out.data.make_mut();
        for r in 0..rows {
            od[r * len..(r + 1) * len]
                .copy_from_slice(&self.data[r * m + start..r * m + start + len]);
        }
        out
    }

    /// Prepares this tensor as a staging buffer of `shape` and returns the
    /// writable storage: reused in place when uniquely owned with a
    /// matching element count (the steady-state case for a workspace
    /// tensor), swapped for a pooled buffer otherwise. Contents are stale
    /// and must be fully overwritten by the caller. This is the public
    /// entry point for workspaces whose row count changes per batch — the
    /// serving engine sizes its `[n, window, m]` / `[n, context, m]` input
    /// stacks through it every ragged round.
    pub fn stage(&mut self, shape: impl Into<Shape>) -> &mut [f64] {
        take_out(self, shape.into())
    }
}

/// Prepares `out` to receive a result of `shape`: reuses its storage in
/// place when it is uniquely owned and already holds `shape.numel()`
/// elements (the steady-state case for a reused workspace tensor), and
/// otherwise swaps in a pooled buffer. Returns the writable slice; contents
/// are stale and must be fully overwritten (or zeroed) by the caller.
fn take_out(out: &mut Tensor, shape: Shape) -> &mut [f64] {
    if out.numel() != shape.numel() || !out.data.is_unique() {
        *out = Tensor::uninit(shape);
    } else {
        out.shape = shape;
    }
    out.data.make_mut()
}

/// `rows x k @ k x m` against a single shared rhs: packs the rhs once (into
/// recycled [`crate::bufpool`] scratch) when [`kernels::should_pack`] says
/// the pack pass pays for itself, then drives tile-aligned row blocks —
/// serial below [`MATMUL_CUTOFF`] multiply-adds, parallel above. Chunk
/// boundaries land on [`kernels::MR`]-row tile edges, so serial and
/// parallel runs execute the identical micro-kernel sequence.
fn matmul_shared_rhs(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    rows: usize,
    k: usize,
    m: usize,
    epi: Epilogue,
) {
    if kernels::should_pack(rows, k, m) {
        kernels::with_pack_scratch(k * m, |bp| {
            kernels::pack_rhs(b, k, m, bp);
            let bp = &*bp;
            run_row_blocks(a, out, rows, k, m, &|ar, oc, rs| {
                kernels::matmul_tiled_packed(ar, bp, oc, rs, k, m, epi);
            });
        });
    } else {
        run_row_blocks(a, out, rows, k, m, &|ar, oc, rs| {
            kernels::matmul_tiled_direct(ar, b, oc, rs, k, m, epi);
        });
    }
}

/// Runs `kern(a_rows, out_chunk, rows_in_chunk)` over tile-aligned row
/// blocks of the output — one serial call below the work cutoff, parallel
/// chunks above. Each task owns rows `[r0, r1)` of `out` and reads the same
/// rows of `a`.
#[allow(clippy::type_complexity)]
fn run_row_blocks(
    a: &[f64],
    out: &mut [f64],
    rows: usize,
    k: usize,
    m: usize,
    kern: &(dyn Fn(&[f64], &mut [f64], usize) + Sync),
) {
    if rows * k * m < MATMUL_CUTOFF {
        kern(a, out, rows);
    } else {
        let grain = pool::aligned_grain((MATMUL_CUTOFF / (k * m)).max(1), kernels::MR);
        pool::parallel_chunks_mut(out, grain * m, |start, chunk| {
            let r0 = start / m;
            let rs = chunk.len() / m;
            kern(&a[r0 * k..(r0 + rs) * k], chunk, rs);
        });
    }
}

/// `[b, n, k] x [b, k, m]` with a per-batch rhs, parallel over the batch
/// dimension above the work cutoff. Each task owns one batch's output
/// plane and — when packing pays — packs its rhs plane into its *own*
/// thread-local pool scratch, so workers never share panel buffers.
#[allow(clippy::too_many_arguments)]
fn matmul_batched_rhs(
    a: &[f64],
    rhs: &[f64],
    out: &mut [f64],
    b: usize,
    n: usize,
    k: usize,
    m: usize,
    epi: Epilogue,
) {
    let plane = n * m;
    let pack = kernels::should_pack(n, k, m);
    let kernel_one = |bi: usize, dst: &mut [f64]| {
        let ap = &a[bi * n * k..(bi + 1) * n * k];
        let bp = &rhs[bi * k * m..(bi + 1) * k * m];
        if pack {
            kernels::with_pack_scratch(k * m, |scratch| {
                kernels::pack_rhs(bp, k, m, scratch);
                kernels::matmul_tiled_packed(ap, scratch, dst, n, k, m, epi);
            });
        } else {
            kernels::matmul_tiled_direct(ap, bp, dst, n, k, m, epi);
        }
    };
    if b * n * k * m < MATMUL_CUTOFF {
        for (bi, dst) in out.chunks_mut(plane).enumerate() {
            kernel_one(bi, dst);
        }
    } else {
        pool::parallel_chunks_mut(out, plane, |start, chunk| {
            kernel_one(start / plane, chunk);
        });
    }
}

/// True if `small`'s dims equal the trailing dims of `big` (and `small` has
/// at least one element), i.e. broadcasting is pure leading-axis tiling.
fn is_suffix(small: &Shape, big: &Shape) -> bool {
    let (sd, bd) = (small.dims(), big.dims());
    sd.len() <= bd.len()
        && small.numel() > 0
        && sd == &bd[bd.len() - sd.len()..]
        && big.numel().is_multiple_of(small.numel().max(1))
}

/// Strides for reading `src` as if broadcast to `target` (0-stride on
/// broadcast dimensions).
pub(crate) fn broadcast_strides(src: &Shape, target: &Shape) -> [usize; crate::shape::MAX_RANK] {
    let src_strides = src.strides();
    let offset = target.rank() - src.rank();
    let mut out = [0usize; crate::shape::MAX_RANK];
    for d in 0..src.rank() {
        out[offset + d] = if src.dim(d) == 1 { 0 } else { src_strides[d] };
    }
    out
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.numel() <= 16 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data())
        } else {
            write!(
                f,
                "Tensor({}, [{:.4}, {:.4}, ... ; n={}])",
                self.shape,
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: &[&[f64]]) -> Tensor {
        let n = rows.len();
        let m = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, [n, m])
    }

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0; 5], [2, 3]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn clone_is_shared_and_cow_detaches() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let mut b = a.clone();
        assert!(a.shares_storage(&b), "clone must share storage");
        b.data_mut()[0] = 9.0;
        assert!(!a.shares_storage(&b), "write must detach");
        assert_eq!(a.data(), &[1.0, 2.0]);
        assert_eq!(b.data(), &[9.0, 2.0]);
    }

    #[test]
    fn reshape_shares_storage() {
        let a = Tensor::from_vec((0..6).map(|v| v as f64).collect(), [2, 3]);
        let r = a.reshape([3, 2]);
        assert!(a.shares_storage(&r));
        assert_eq!(r.at(&[2, 1]), 5.0);
    }

    #[test]
    fn matmul_2d() {
        let a = t2(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t2(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_batched_shared_rhs() {
        let a = Tensor::from_vec((0..12).map(|v| v as f64).collect(), [2, 2, 3]);
        let w = Tensor::ones([3, 4]);
        let c = a.matmul(&w);
        assert_eq!(c.shape().dims(), &[2, 2, 4]);
        // first row of first batch: 0+1+2 = 3
        assert_eq!(c.at(&[0, 0, 0]), 3.0);
        assert_eq!(c.at(&[1, 1, 3]), 9.0 + 10.0 + 11.0);
    }

    #[test]
    fn matmul_batched_both() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], [2, 2, 2]);
        let b = Tensor::from_vec((1..=8).map(|v| v as f64).collect(), [2, 2, 2]);
        let c = a.matmul(&b);
        // batch 0: identity * [[1,2],[3,4]]
        assert_eq!(c.at(&[0, 0, 0]), 1.0);
        assert_eq!(c.at(&[0, 1, 1]), 4.0);
        // batch 1: 2*I * [[5,6],[7,8]]
        assert_eq!(c.at(&[1, 0, 0]), 10.0);
        assert_eq!(c.at(&[1, 1, 1]), 16.0);
    }

    #[test]
    fn matmul_propagates_nan_through_zero_rows() {
        // Regression: the old kernel skipped `a_il == 0.0`, turning
        // 0 * NaN into 0 and hiding NaNs behind masked attention weights.
        let a = t2(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let b = t2(&[&[f64::NAN, 2.0], &[3.0, 4.0]]);
        let c = a.matmul(&b);
        assert!(c.at(&[0, 0]).is_nan(), "0 * NaN must stay NaN");
        assert!(c.at(&[1, 0]).is_nan());
        assert_eq!(c.at(&[1, 1]), 0.0); // NaN-free column is untouched
        let inf = Tensor::full([2, 2], f64::INFINITY);
        let z = Tensor::zeros([2, 2]);
        assert!(z.matmul(&inf).data().iter().all(|v| v.is_nan()), "0 * inf must be NaN");
    }

    #[test]
    fn parallel_matmul_matches_serial_bitwise() {
        // Big enough to cross MATMUL_CUTOFF in both the 2-d and batched
        // paths; serial (1 thread) and parallel results must be identical.
        let a = Tensor::from_fn([80, 70], |i| ((i * 37 % 101) as f64 - 50.0) * 0.013);
        let b = Tensor::from_fn([70, 90], |i| ((i * 53 % 97) as f64 - 48.0) * 0.017);
        let serial = crate::pool::with_threads(1, || a.matmul(&b));
        assert_eq!(a.matmul(&b).data(), serial.data());

        let ba = Tensor::from_fn([6, 40, 50], |i| ((i * 29 % 89) as f64 - 44.0) * 0.011);
        let bb = Tensor::from_fn([6, 50, 45], |i| ((i * 31 % 83) as f64 - 41.0) * 0.009);
        let serial = crate::pool::with_threads(1, || ba.matmul(&bb));
        assert_eq!(ba.matmul(&bb).data(), serial.data());
    }

    #[test]
    fn parallel_elementwise_matches_serial_bitwise() {
        let t = Tensor::from_fn([600, 80], |i| ((i % 211) as f64 - 105.0) * 0.03);
        let serial = crate::pool::with_threads(1, || {
            (
                t.map(|v| v.tanh()),
                t.zip(&t, |a, b| a * b + 0.5),
                t.softmax_last(),
                t.transpose(),
            )
        });
        assert_eq!(t.map(|v| v.tanh()).data(), serial.0.data());
        assert_eq!(t.zip(&t, |a, b| a * b + 0.5).data(), serial.1.data());
        assert_eq!(t.softmax_last().data(), serial.2.data());
        assert_eq!(t.transpose().data(), serial.3.data());
    }

    #[test]
    fn matmul_bias_act_matches_unfused() {
        let x = Tensor::from_fn([3, 5, 4], |i| ((i * 13 % 23) as f64 - 11.0) * 0.21);
        let w = Tensor::from_fn([4, 6], |i| ((i * 7 % 19) as f64 - 9.0) * 0.17);
        let b = Tensor::from_fn([6], |i| i as f64 * 0.3 - 1.0);
        for act in [Act::Identity, Act::Relu, Act::Sigmoid, Act::Tanh] {
            let fused = x.matmul_bias_act(&w, Some(&b), act);
            let unfused = x.matmul(&w).broadcast_zip(&b, |p, q| p + q).map(|v| act.apply(v));
            assert_eq!(fused.data(), unfused.data(), "{act:?}");
            let fused_nb = x.matmul_bias_act(&w, None, act);
            let unfused_nb = x.matmul(&w).map(|v| act.apply(v));
            assert_eq!(fused_nb.data(), unfused_nb.data(), "{act:?} (no bias)");
        }
    }

    #[test]
    fn matmul_nt_scaled_matches_unfused() {
        let q = Tensor::from_fn([2, 5, 3], |i| ((i * 11 % 29) as f64 - 14.0) * 0.13);
        let k = Tensor::from_fn([2, 7, 3], |i| ((i * 17 % 31) as f64 - 15.0) * 0.07);
        let fused = q.matmul_nt_scaled(&k, 0.5);
        let unfused = q.matmul(&k.transpose()).map(|v| v * 0.5);
        assert_eq!(fused.data(), unfused.data());
        assert_eq!(fused.shape().dims(), &[2, 5, 7]);
        // 2-d form
        let a = t2(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t2(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul_nt_scaled(&b, 1.0).data(), a.matmul(&b.transpose()).data());
    }

    #[test]
    fn scale_shift_last_matches_unfused() {
        let x = Tensor::from_fn([4, 3], |i| i as f64 - 5.0);
        let gamma = Tensor::from_slice(&[2.0, 0.5, -1.0]);
        let beta = Tensor::from_slice(&[1.0, -1.0, 0.25]);
        let fused = x.scale_shift_last(&gamma, &beta);
        let unfused = x
            .broadcast_zip(&gamma, |a, b| a * b)
            .broadcast_zip(&beta, |a, b| a + b);
        assert_eq!(fused.data(), unfused.data());
    }

    #[test]
    fn transpose_2d() {
        let a = t2(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.at(&[0, 1]), 4.0);
        assert_eq!(t.at(&[2, 0]), 3.0);
    }

    #[test]
    fn transpose_batched() {
        let a = Tensor::from_vec((0..8).map(|v| v as f64).collect(), [2, 2, 2]);
        let t = a.transpose();
        assert_eq!(t.at(&[1, 0, 1]), a.at(&[1, 1, 0]));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t2(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = a.softmax_last();
        let row0: f64 = s.data()[0..3].iter().sum();
        let row1: f64 = s.data()[3..6].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-12);
        assert!((row1 - 1.0).abs() < 1e-12);
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_fully_masked_row_is_uniform() {
        let a = Tensor::from_vec(vec![f64::NEG_INFINITY; 4], [1, 4]);
        let s = a.softmax_last();
        for &v in s.data() {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_add_bias() {
        let a = Tensor::from_vec((0..6).map(|v| v as f64).collect(), [2, 3]);
        let bias = Tensor::from_slice(&[10.0, 20.0, 30.0]);
        let c = a.broadcast_zip(&bias, |x, y| x + y);
        assert_eq!(c.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let s = Tensor::scalar(5.0);
        let c = a.broadcast_zip(&s, |x, y| x * y);
        assert_eq!(c.data(), &[5.0, 10.0]);
    }

    #[test]
    fn broadcast_middle_one() {
        let a = Tensor::ones([2, 1, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0], [1, 2, 1]);
        let c = a.broadcast_zip(&b, |x, y| x * y);
        assert_eq!(c.shape().dims(), &[2, 2, 3]);
        assert_eq!(c.at(&[0, 1, 2]), 2.0);
        assert_eq!(c.at(&[1, 0, 0]), 1.0);
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_dims() {
        let g = Tensor::ones([2, 3]);
        let r = g.reduce_to_shape(&Shape::new([3]));
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = g.reduce_to_shape(&Shape::scalar());
        assert_eq!(r2.item(), 6.0);
    }

    #[test]
    fn reduce_to_shape_extent_one() {
        let g = Tensor::ones([2, 3, 4]);
        let r = g.reduce_to_shape(&Shape::new([2, 1, 4]));
        assert_eq!(r.shape().dims(), &[2, 1, 4]);
        assert_eq!(r.data()[0], 3.0);
    }

    #[test]
    fn concat_and_narrow_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|v| v as f64).collect(), [2, 3]);
        let b = Tensor::from_vec((10..14).map(|v| v as f64).collect(), [2, 2]);
        let c = Tensor::concat_last(&[&a, &b]);
        assert_eq!(c.shape().dims(), &[2, 5]);
        assert_eq!(c.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 3.0, 4.0, 5.0, 12.0, 13.0]);
        assert_eq!(c.narrow_last(0, 3).data(), a.data());
        assert_eq!(c.narrow_last(3, 2).data(), b.data());
    }

    #[test]
    fn sum_and_mean_last() {
        let a = t2(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.sum_last().data(), &[6.0, 15.0]);
        assert_eq!(a.mean_last().data(), &[2.0, 5.0]);
    }

    #[test]
    fn l2_norm() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn map_zip() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(a.map(f64::abs).data(), &[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 10.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 8.0]);
    }

    #[test]
    fn into_variants_match_allocating_forms_bitwise() {
        let x = Tensor::from_fn([3, 5, 4], |i| ((i * 13 % 23) as f64 - 11.0) * 0.21);
        let w = Tensor::from_fn([4, 6], |i| ((i * 7 % 19) as f64 - 9.0) * 0.17);
        let b = Tensor::from_fn([6], |i| i as f64 * 0.3 - 1.0);
        let q = Tensor::from_fn([2, 5, 3], |i| ((i * 11 % 29) as f64 - 14.0) * 0.13);
        let k = Tensor::from_fn([2, 7, 3], |i| ((i * 17 % 31) as f64 - 15.0) * 0.07);
        let gamma = Tensor::from_fn([4], |i| 0.5 + i as f64 * 0.25);
        let beta = Tensor::from_fn([4], |i| i as f64 * 0.1 - 0.2);
        let mut out = Tensor::zeros([1]);

        x.matmul_into(&w, &mut out);
        assert_eq!(out.data(), x.matmul(&w).data());
        assert_eq!(out.shape().dims(), &[3, 5, 6]);
        x.matmul_bias_act_into(&w, Some(&b), Act::Sigmoid, &mut out);
        assert_eq!(out.data(), x.matmul_bias_act(&w, Some(&b), Act::Sigmoid).data());
        q.matmul_nt_scaled_into(&k, 0.5, &mut out);
        assert_eq!(out.data(), q.matmul_nt_scaled(&k, 0.5).data());
        x.softmax_last_into(&mut out);
        assert_eq!(out.data(), x.softmax_last().data());
        x.layer_norm_affine_into(&gamma, &beta, 1e-5, &mut out);
        assert_eq!(out.data(), x.layer_norm_affine(&gamma, &beta, 1e-5).data());
    }

    #[test]
    fn layer_norm_affine_matches_unfused_chain() {
        let x = Tensor::from_fn([6, 5], |i| ((i * 19 % 37) as f64 - 18.0) * 0.11);
        let gamma = Tensor::from_fn([5], |i| 1.0 - i as f64 * 0.3);
        let beta = Tensor::from_fn([5], |i| i as f64 * 0.05);
        let fused = x.layer_norm_affine(&gamma, &beta, 1e-5);
        let unfused = x.layer_norm_parts(1e-5).0.scale_shift_last(&gamma, &beta);
        assert_eq!(fused.data(), unfused.data());
    }

    #[test]
    fn into_variants_reuse_unique_matching_storage() {
        let a = Tensor::from_fn([8, 8], |i| i as f64 * 0.01);
        let b = Tensor::from_fn([8, 8], |i| (64 - i) as f64 * 0.02);
        let mut out = Tensor::zeros([64]); // right numel, wrong shape: reused
        let ptr = out.data().as_ptr();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data().as_ptr(), ptr, "unique matching buffer must be reused");
        assert_eq!(out.shape().dims(), &[8, 8]);
        a.softmax_last_into(&mut out);
        assert_eq!(out.data().as_ptr(), ptr);

        // A shared buffer must be detached, not written through.
        let alias = out.clone();
        let before = alias.data().to_vec();
        a.matmul_nt_scaled_into(&b, 2.0, &mut out);
        assert_eq!(alias.data(), &before[..], "shared storage must not be clobbered");
        assert!(!out.shares_storage(&alias));
    }

    #[test]
    fn add_assign_aliased_storage() {
        // `x += x` through a shared handle: COW must snapshot the addend.
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let alias = a.clone();
        a.add_assign(&alias);
        assert_eq!(a.data(), &[2.0, 4.0]);
        assert_eq!(alias.data(), &[1.0, 2.0]);
    }
}

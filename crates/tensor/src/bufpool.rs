//! Step-scoped buffer pool: recycles freed tensor storage across training
//! steps so the hot path stops hitting the system allocator.
//!
//! Every tensor buffer is an `Arc<Vec<f64>>` (see [`crate::buf::Buf`]). When
//! the last handle to a buffer drops, the whole `Arc` — control block and
//! data — is parked here instead of being freed; the next tensor of a
//! similar size reuses it. Because training repeats the same op sequence
//! every step, the pool reaches a fixed point after the first step and
//! subsequent steps allocate (almost) nothing.
//!
//! Pools are thread-local: the autograd tape is single-threaded per step,
//! and the worker threads of [`crate::pool`] that build whole tensors (e.g.
//! per-chunk scoring) each keep their own free lists, so no locking is
//! needed and recycling order is deterministic.
//!
//! Buffers are bucketed by power-of-two capacity class: a request for `n`
//! elements is served from class `ceil(log2 n)`, and a freed buffer of
//! capacity `c` is filed under class `floor(log2 c)`, so anything popped
//! from class `k` is guaranteed to hold `2^k` elements without
//! reallocating. Fresh buffers are allocated with capacity rounded up to
//! the class size so they re-enter their own class when freed.
//!
//! Safety note: pooled buffers keep their previous (initialized) contents.
//! [`take`] therefore hands out *stale but initialized* memory — callers
//! must overwrite every element (or use a zeroing wrapper). No
//! never-written memory is ever exposed.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Number of capacity classes; class `k` holds buffers of capacity
/// `[2^k, 2^(k+1))`. Class 27 tops out at 1 GiB of `f64`s — anything bigger
/// is freed normally.
const CLASSES: usize = 28;

/// Maximum buffers retained per class; excess frees fall through to the
/// system allocator. A training step frees its whole tape at once — several
/// hundred buffers landing in the same class — so this must absorb a full
/// step's tape. Retention is bounded by the step's own peak live set: the
/// pool can only hold what was simultaneously allocated before being freed.
const PER_CLASS: usize = 4096;

/// Allocation-pool counters for one thread (see [`stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from the pool.
    pub hits: u64,
    /// `take` calls that fell through to a fresh allocation.
    pub misses: u64,
    /// Freed buffers parked for reuse.
    pub recycled: u64,
    /// Freed buffers dropped (class full or oversized).
    pub dropped: u64,
    /// Bytes of storage parked for reuse (capacity, not length).
    pub bytes_recycled: u64,
    /// Bytes of pool-served storage currently checked out (taken and not
    /// yet returned). Buffers created outside [`take`] are invisible to
    /// this, so it is a lower bound; arithmetic saturates at zero.
    pub live_bytes: u64,
    /// High watermark of [`PoolStats::live_bytes`] since the last
    /// [`reset_stats`] — the step's peak working set as seen by the pool.
    pub hwm_bytes: u64,
}

struct Pool {
    classes: Vec<Vec<Arc<Vec<f64>>>>,
    stats: PoolStats,
}

impl Pool {
    fn new() -> Self {
        Pool { classes: (0..CLASSES).map(|_| Vec::new()).collect(), stats: PoolStats::default() }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Global recycling switch (all threads). Disabled pools allocate fresh and
/// free normally — used to measure the pool's effect (`bench-alloc`).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns buffer recycling on or off process-wide. Disabling does not free
/// already-pooled buffers; call [`clear`] per thread for that.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Capacity class that guarantees room for `n` elements.
fn class_for(n: usize) -> usize {
    n.max(1).next_power_of_two().trailing_zeros() as usize
}

/// Takes a unique buffer of length `n`. Contents are stale-but-initialized
/// values from a previous use (or zeros where the buffer grew); the caller
/// must overwrite every element it reads.
pub fn take(n: usize) -> Arc<Vec<f64>> {
    let class = class_for(n);
    let mut arc = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let arc = match p.classes.get_mut(class).filter(|_| enabled()).and_then(Vec::pop) {
            Some(a) => {
                p.stats.hits += 1;
                a
            }
            None => {
                p.stats.misses += 1;
                Arc::new(Vec::with_capacity(1usize << class))
            }
        };
        p.stats.live_bytes += (arc.capacity() * std::mem::size_of::<f64>()) as u64;
        if p.stats.live_bytes > p.stats.hwm_bytes {
            p.stats.hwm_bytes = p.stats.live_bytes;
        }
        arc
    });
    let v = Arc::get_mut(&mut arc).expect("pooled buffer is uniquely owned");
    if v.len() < n {
        v.resize(n, 0.0); // grows within capacity — no reallocation
    } else {
        v.truncate(n);
    }
    arc
}

/// Takes a unique all-zero buffer of length `n`.
pub fn take_zeroed(n: usize) -> Arc<Vec<f64>> {
    let mut arc = take(n);
    Arc::get_mut(&mut arc).expect("pooled buffer is uniquely owned").fill(0.0);
    arc
}

/// Returns a buffer to the pool. The caller must hold the only strong
/// reference (checked); buffers that are oversized or whose class is full
/// are freed normally.
pub fn recycle(arc: Arc<Vec<f64>>) {
    debug_assert_eq!(Arc::strong_count(&arc), 1, "recycling a shared buffer");
    let cap = arc.capacity();
    if cap == 0 {
        return;
    }
    let class = cap.ilog2() as usize;
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let bytes = (cap * std::mem::size_of::<f64>()) as u64;
        p.stats.live_bytes = p.stats.live_bytes.saturating_sub(bytes);
        if enabled() && class < CLASSES && p.classes[class].len() < PER_CLASS {
            p.stats.recycled += 1;
            p.stats.bytes_recycled += bytes;
            p.classes[class].push(arc);
        } else {
            p.stats.dropped += 1;
        }
    });
}

/// This thread's pool counters since the last [`reset_stats`].
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Zeroes this thread's pool counters (buffers stay pooled).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// This thread's peak checked-out pool storage in bytes since the last
/// [`reset_stats`] (see [`PoolStats::hwm_bytes`]). Cheap enough to read
/// per step for a memory gauge.
pub fn high_watermark_bytes() -> u64 {
    POOL.with(|p| p.borrow().stats.hwm_bytes)
}

/// Emits this thread's buffer-pool counters as a `pool.buffers` event on
/// `rec` (no-op when the recorder is disabled).
pub fn record_stats(rec: &tranad_telemetry::Recorder) {
    if !rec.enabled() {
        return;
    }
    let s = stats();
    rec.emit("pool.buffers", |e| {
        e.u64("hits", s.hits)
            .u64("misses", s.misses)
            .u64("recycled", s.recycled)
            .u64("dropped", s.dropped)
            .u64("bytes_recycled", s.bytes_recycled)
            .u64("live_bytes", s.live_bytes)
            .u64("hwm_bytes", s.hwm_bytes);
    });
}

/// Frees every pooled buffer on this thread (counters stay).
pub fn clear() {
    POOL.with(|p| {
        for class in &mut p.borrow_mut().classes {
            class.clear();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_requested_length() {
        clear();
        for n in [0, 1, 2, 3, 7, 8, 9, 100, 1000] {
            let a = take(n);
            assert_eq!(a.len(), n);
            assert!(a.capacity() >= n);
        }
    }

    #[test]
    fn recycled_buffer_is_reused() {
        clear();
        reset_stats();
        let a = take(100);
        let ptr = a.as_ptr();
        recycle(a);
        let b = take(90); // same class (2^7 = 128 covers both)
        assert_eq!(b.as_ptr(), ptr, "same-class take must reuse the buffer");
        let s = stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.recycled, 1);
    }

    #[test]
    fn class_guarantees_capacity() {
        clear();
        // A buffer allocated for 65 elements lands in class 7 (128); a later
        // take(128) from that class must not need to reallocate.
        let a = take(65);
        assert!(a.capacity() >= 128);
        recycle(a);
        let b = take(128);
        assert_eq!(b.len(), 128);
    }

    #[test]
    fn grown_region_is_zeroed() {
        clear();
        let mut a = take(4);
        Arc::get_mut(&mut a).unwrap().fill(9.0);
        recycle(a);
        let b = take(100); // larger than the recycled length
        // Only a same-or-larger class buffer may be reused; whatever came
        // back, every element beyond previously written data must be 0.
        assert!(b[4..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn high_watermark_tracks_peak_live_bytes() {
        clear();
        reset_stats();
        let a = take(100); // class 7 -> 128 elements
        let b = take(100);
        let peak = stats().live_bytes;
        assert!(peak >= 2 * 128 * 8, "two checked-out buffers must both count");
        recycle(a);
        recycle(b);
        let s = stats();
        assert_eq!(s.live_bytes, 0, "returning every buffer empties the live set");
        assert_eq!(s.hwm_bytes, peak, "watermark keeps the peak after frees");
        assert_eq!(high_watermark_bytes(), peak);
        // A smaller single take must not move the watermark.
        let c = take(10);
        assert_eq!(high_watermark_bytes(), peak);
        recycle(c);
    }

    #[test]
    fn take_zeroed_is_all_zero() {
        clear();
        let mut a = take(64);
        Arc::get_mut(&mut a).unwrap().fill(f64::NAN);
        recycle(a);
        let b = take_zeroed(64);
        assert!(b.iter().all(|&v| v == 0.0));
    }
}
